"""Public API surface: everything advertised in __all__ must import."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.tensor",
    "repro.nn",
    "repro.optim",
    "repro.data",
    "repro.models",
    "repro.core",
    "repro.baselines",
    "repro.analysis",
    "repro.experiments",
    "repro.utils",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists missing '{name}'"


def test_version():
    import repro

    assert repro.__version__


def test_quickstart_docstring_names_exist():
    """The README/package quickstart imports must stay valid."""
    from repro import EDDEConfig, EDDETrainer, Ensemble, FitResult, ModelFactory
    from repro.data import make_cifar10_like
    from repro.models import ResNetCIFAR

    assert all([EDDEConfig, EDDETrainer, Ensemble, FitResult, ModelFactory,
                make_cifar10_like, ResNetCIFAR])
