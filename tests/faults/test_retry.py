"""Divergence recovery: injected NaNs trigger logged retries; exhausted
retries degrade to a skipped member instead of a dead fit."""

import numpy as np
import pytest

from repro.baselines import Bagging, BaselineConfig
from repro.core import (
    EDDEConfig,
    EDDETrainer,
    FaultTolerance,
    MemberDiverged,
    RetryPolicy,
)
from repro.core.engine import EnsembleEngine, RoundOutcome
from repro.core.trainer import TrainingConfig

from tests.faults.injection import InjectFault


def edde_config(num_models=3):
    return EDDEConfig(num_models=num_models, gamma=0.1, beta=0.6,
                      first_epochs=2, later_epochs=2, lr=0.05,
                      batch_size=32, weight_decay=0.0)


def bagging_config(num_models=3):
    return BaselineConfig(num_models=num_models, epochs_per_model=2,
                          lr=0.05, batch_size=32, weight_decay=0.0)


class TestRetryRecovers:
    def test_nan_loss_triggers_retry_and_fit_completes(
            self, tiny_image_split, mlp_factory):
        # Corrupt the round-1 member's parameters after its first batch;
        # the next optimiser step produces a non-finite loss, the engine
        # aborts the member, and the (clean) retry trains to completion.
        fault = InjectFault(1, mode="corrupt-params", epoch=0, batch=0)
        result = EDDETrainer(mlp_factory, edde_config()).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0,
            callbacks=[fault],
            fault_tolerance=FaultTolerance(retry=RetryPolicy(max_retries=2)))

        assert fault.fired == 1
        assert len(result.ensemble) == 3
        assert np.isfinite(result.final_accuracy)
        faults = result.metadata["faults"]
        assert len(faults) == 1
        assert faults[0]["event"] == "diverged"
        assert faults[0]["round"] == 1
        assert faults[0]["attempt"] == 0
        assert "non-finite" in faults[0]["reason"]

    def test_recovery_for_round_based_baseline(self, tiny_image_split,
                                               mlp_factory):
        fault = InjectFault(0, mode="corrupt-params", epoch=0, batch=0)
        result = Bagging(mlp_factory, bagging_config()).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0,
            callbacks=[fault],
            fault_tolerance=FaultTolerance(retry=RetryPolicy(max_retries=1)))
        assert len(result.ensemble) == 3
        assert [f["event"] for f in result.metadata["faults"]] == ["diverged"]


class TestRetryExhaustion:
    def test_persistent_fault_skips_member(self, tiny_image_split,
                                           mlp_factory):
        # once=False re-corrupts every attempt of round 1; after
        # max_retries the round is skipped and the fit continues with the
        # remaining members.
        fault = InjectFault(1, mode="corrupt-params", epoch=0, batch=0,
                            once=False)
        result = EDDETrainer(mlp_factory, edde_config()).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0,
            callbacks=[fault],
            fault_tolerance=FaultTolerance(retry=RetryPolicy(max_retries=1)))

        assert fault.fired == 2          # initial attempt + one retry
        assert len(result.ensemble) == 2  # rounds 0 and 2 survived
        assert np.isfinite(result.final_accuracy)
        events = [f["event"] for f in result.metadata["faults"]]
        assert events == ["diverged", "diverged", "skipped"]
        skipped = result.metadata["faults"][-1]
        assert skipped["round"] == 1
        assert skipped["attempts"] == 2

    def test_skipped_first_round_keeps_edde_alive(self, tiny_image_split,
                                                  mlp_factory):
        # Round 0 is EDDE's special round (no soft targets, fresh init);
        # skipping it must shift that role to the next successful member
        # rather than crash on an empty ensemble.
        fault = InjectFault(0, mode="corrupt-params", epoch=0, batch=0,
                            once=False)
        result = EDDETrainer(mlp_factory, edde_config()).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0,
            callbacks=[fault],
            fault_tolerance=FaultTolerance(retry=RetryPolicy(max_retries=0)))
        assert len(result.ensemble) == 2
        assert np.isfinite(result.final_accuracy)


class TestRetryPolicyMechanics:
    def test_lr_decay_and_reseeding_on_retry(self, tiny_image_split):
        # Engine-level check of the retry loop itself: the failing attempt
        # and its retry see different attempt numbers, the retry trains
        # with the decayed learning rate, and the member weights differ
        # (reseeded init through the tracked RNG stream).
        engine = EnsembleEngine("test", tiny_image_split.train,
                                tiny_image_split.test,
                                retry_policy=RetryPolicy(max_retries=1,
                                                         lr_decay=0.5))
        rng = np.random.default_rng(0)
        engine.track_rng(rng)
        seen = []

        from repro.models import MLP, ModelFactory
        input_dim = int(np.prod(tiny_image_split.train.x.shape[1:]))
        factory = ModelFactory(MLP, input_dim=input_dim,
                               num_classes=tiny_image_split.num_classes,
                               hidden=(8,))

        def round_fn(engine, index):
            model = factory.build(rng=np.random.default_rng(rng.integers(2**31)))
            config = TrainingConfig(epochs=1, lr=0.1, batch_size=32)
            logger = engine.train_member(model, tiny_image_split.train,
                                         config, rng=index)
            seen.append((engine.retry_attempt, logger.last("lr"),
                         next(iter(model.parameters())).data.copy()))
            if engine.retry_attempt == 0:
                raise MemberDiverged("synthetic fault", round_index=index)
            return RoundOutcome(model=model, alpha=1.0, epochs=1,
                                train_accuracy=1.0)

        result = engine.run(1, round_fn)

        assert [attempt for attempt, _, _ in seen] == [0, 1]
        assert seen[1][1] == pytest.approx(seen[0][1] * 0.5)
        assert not np.array_equal(seen[0][2], seen[1][2])
        assert len(result.ensemble) == 1
        assert [f["event"] for f in result.metadata["faults"]] == ["diverged"]

    def test_collapsed_accuracy_detected(self, tiny_image_split, mlp_factory):
        # An impossible accuracy floor makes every member "collapsed";
        # with no retries allowed the fit degrades to an empty ensemble
        # with every round recorded as skipped — but never raises.
        policy = RetryPolicy(max_retries=0, min_train_accuracy=1.1,
                             grace_epochs=0)
        result = Bagging(mlp_factory, bagging_config(num_models=2)).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0,
            fault_tolerance=FaultTolerance(retry=policy))
        assert len(result.ensemble) == 0
        events = [f["event"] for f in result.metadata["faults"]]
        assert events == ["diverged", "skipped", "diverged", "skipped"]
        assert all("collapsed" in f["reason"] for f in result.metadata["faults"]
                   if f["event"] == "diverged")

    def test_non_finite_alpha_counts_as_divergence(self, tiny_image_split):
        engine = EnsembleEngine("test", tiny_image_split.train,
                                retry_policy=RetryPolicy(max_retries=0))

        def round_fn(engine, index):
            from repro.models import MLP
            input_dim = int(np.prod(tiny_image_split.train.x.shape[1:]))
            model = MLP(input_dim=input_dim,
                        num_classes=tiny_image_split.num_classes, hidden=(4,))
            return RoundOutcome(model=model, alpha=float("nan"), epochs=0,
                                train_accuracy=1.0)

        result = engine.run(1, round_fn)
        assert len(result.ensemble) == 0
        reasons = [f.get("reason", "") for f in result.metadata["faults"]]
        assert any("non-finite model weight" in r for r in reasons)
