"""Kill-and-resume, end to end: a fit interrupted mid-run and resumed from
its checkpoint directory must be *bit-identical* to an uninterrupted fit
with the same seed — accuracy, alphas, curve, and member weights."""

import numpy as np
import pytest

from repro.baselines import (
    AdaBoostNC,
    AdaBoostNCConfig,
    Bagging,
    BaselineConfig,
    SnapshotEnsemble,
    SnapshotConfig,
)
from repro.core import (
    CheckpointError,
    CheckpointManager,
    EDDEConfig,
    EDDETrainer,
    FaultTolerance,
)

from tests.faults.injection import InjectFault


def fit_edde(split, factory, **kwargs):
    config = EDDEConfig(num_models=5, gamma=0.1, beta=0.6, first_epochs=2,
                        later_epochs=1, lr=0.05, batch_size=32,
                        weight_decay=0.0)
    return EDDETrainer(factory, config).fit(split.train, split.test, rng=0,
                                            **kwargs)


def fit_bagging(split, factory, **kwargs):
    config = BaselineConfig(num_models=4, epochs_per_model=2, lr=0.05,
                            batch_size=32, weight_decay=0.0)
    return Bagging(factory, config).fit(split.train, split.test, rng=0,
                                        **kwargs)


def fit_adaboost_nc(split, factory, **kwargs):
    config = AdaBoostNCConfig(num_models=4, epochs_per_model=2, lr=0.05,
                              batch_size=32, weight_decay=0.0)
    return AdaBoostNC(factory, config).fit(split.train, split.test, rng=0,
                                           **kwargs)


def assert_identical_results(resumed, reference):
    assert resumed.final_accuracy == reference.final_accuracy
    assert resumed.ensemble.alphas == reference.ensemble.alphas
    assert [(p.cumulative_epochs, p.ensemble_accuracy, p.num_models)
            for p in resumed.curve] == \
           [(p.cumulative_epochs, p.ensemble_accuracy, p.num_models)
            for p in reference.curve]
    assert len(resumed.ensemble) == len(reference.ensemble)
    for mine, theirs in zip(resumed.ensemble.models, reference.ensemble.models):
        state, expected = mine.state_dict(), theirs.state_dict()
        assert state.keys() == expected.keys()
        for name in state:
            assert np.array_equal(state[name], expected[name]), name


# Acceptance scenario from the issue: EDDE killed at round 3 of 5.  The
# two boosting-state baselines check the generic resume path (RNG stream
# only for Bagging; sample weights + previous member for AdaBoost.NC).
SCENARIOS = [
    pytest.param(fit_edde, 3, id="edde"),
    pytest.param(fit_bagging, 2, id="bagging"),
    pytest.param(fit_adaboost_nc, 2, id="adaboost-nc"),
]


class TestKillAndResume:
    @pytest.mark.parametrize("fitter,kill_round", SCENARIOS)
    def test_resume_is_bit_identical(self, fitter, kill_round, tmp_path,
                                     tiny_image_split, mlp_factory):
        reference = fitter(tiny_image_split, mlp_factory)

        directory = tmp_path / "checkpoints"
        kill = InjectFault(kill_round, mode="interrupt")
        with pytest.raises(KeyboardInterrupt):
            fitter(tiny_image_split, mlp_factory, callbacks=[kill],
                   fault_tolerance=FaultTolerance(
                       checkpoint=CheckpointManager(directory)))
        assert kill.fired == 1

        manager = CheckpointManager(directory)
        assert manager.latest_round() == kill_round
        state = manager.load(mlp_factory)
        resumed = fitter(tiny_image_split, mlp_factory,
                         fault_tolerance=FaultTolerance(
                             checkpoint=manager, resume_from=state))

        assert resumed.metadata["resumed_from_round"] == kill_round
        assert_identical_results(resumed, reference)

    def test_interrupt_mid_epoch_loses_only_current_round(
            self, tmp_path, tiny_image_split, mlp_factory):
        # A kill in the middle of round 2's training (not at the clean
        # round boundary) must still leave rounds 0-1 on disk and resume
        # bit-identically — partial work is simply redone.
        reference = fit_edde(tiny_image_split, mlp_factory)

        directory = tmp_path / "checkpoints"
        kill = InjectFault(2, mode="interrupt", epoch=0, batch=1)
        with pytest.raises(KeyboardInterrupt):
            fit_edde(tiny_image_split, mlp_factory, callbacks=[kill],
                     fault_tolerance=FaultTolerance(
                         checkpoint=CheckpointManager(directory)))

        manager = CheckpointManager(directory)
        assert manager.latest_round() == 2
        resumed = fit_edde(tiny_image_split, mlp_factory,
                           fault_tolerance=FaultTolerance(
                               checkpoint=manager,
                               resume_from=manager.load(mlp_factory)))
        assert_identical_results(resumed, reference)

    def test_resume_after_completion_trains_nothing(
            self, tmp_path, tiny_image_split, mlp_factory):
        directory = tmp_path / "checkpoints"
        reference = fit_bagging(
            tiny_image_split, mlp_factory,
            fault_tolerance=FaultTolerance(
                checkpoint=CheckpointManager(directory)))

        manager = CheckpointManager(directory)
        assert manager.latest_round() == 4
        resumed = fit_bagging(tiny_image_split, mlp_factory,
                              fault_tolerance=FaultTolerance(
                                  resume_from=manager.load(mlp_factory)))
        assert resumed.metadata["resumed_from_round"] == 4
        assert_identical_results(resumed, reference)


class TestContinuousMethodsRejectResume:
    def test_snapshot_refuses_resume(self, tmp_path, tiny_image_split,
                                     mlp_factory):
        directory = tmp_path / "checkpoints"
        fit_bagging(tiny_image_split, mlp_factory,
                    fault_tolerance=FaultTolerance(
                        checkpoint=CheckpointManager(directory)))
        state = CheckpointManager(directory).load(mlp_factory)
        config = SnapshotConfig(num_models=2, epochs_per_model=2, lr=0.05,
                                batch_size=32, weight_decay=0.0)
        with pytest.raises(CheckpointError, match="continuous"):
            SnapshotEnsemble(mlp_factory, config).fit(
                tiny_image_split.train, tiny_image_split.test, rng=0,
                fault_tolerance=FaultTolerance(resume_from=state))
