"""Deterministic fault injection for the fault-tolerance test suite.

:class:`InjectFault` is a regular engine callback (see
:mod:`repro.core.callbacks`) that sabotages training at an exact,
repeatable point — a chosen ``(round, epoch, batch)`` — in one of two
ways:

``"interrupt"``
    Raise :class:`KeyboardInterrupt`, simulating the process being killed
    mid-fit.  With ``epoch=None`` the interrupt fires at the *start* of
    the target round, i.e. after the previous round's checkpoint was
    written and before any new work — the cleanest model of a kill between
    rounds.

``"corrupt-params"``
    Overwrite the in-training member's first parameter tensor with a
    non-finite value.  The *next* optimiser step then computes a genuinely
    non-finite loss, so the engine's real detection path (the batch/epoch
    watchdogs installed by :class:`~repro.core.checkpointing.RetryPolicy`)
    is exercised rather than short-circuited.  Corrupt at a point with at
    least one optimiser step still to come, or the fault goes unnoticed.

The callback tracks the current round through ``on_round_start`` rather
than inferring it from ``len(engine.ensemble)`` — a skipped round leaves
the ensemble size behind the round index, and inferring from size would
re-fire the fault on every later round.  Retries of the same round are
detected through ``engine.retry_attempt``; with ``once=True`` (default)
the fault fires on the first attempt only, so the retry trains clean and
recovery can be asserted, while ``once=False`` re-fires on every attempt
to force retry exhaustion.
"""

from __future__ import annotations

import numpy as np

from repro.core.callbacks import Callback


class InjectFault(Callback):
    """Corrupt or interrupt training at a chosen (round, epoch, batch)."""

    MODES = ("corrupt-params", "interrupt")

    def __init__(self, round_index: int, mode: str = "corrupt-params",
                 epoch=None, batch=None, once: bool = True):
        if mode not in self.MODES:
            raise ValueError(f"unknown fault mode {mode!r}; "
                             f"choose one of {self.MODES}")
        self.round_index = round_index
        self.mode = mode
        self.epoch = epoch
        self.batch = batch
        self.once = once
        self.fired = 0
        self._round = -1
        self._attempt = 0
        self._epochs_done = 0

    # ------------------------------------------------------------------
    def on_round_start(self, engine, round_index: int) -> None:
        self._round = round_index
        self._attempt = 0
        self._epochs_done = 0
        if (self.mode == "interrupt" and round_index == self.round_index
                and self.epoch is None and self.batch is None
                and self._armed()):
            self.fired += 1
            raise KeyboardInterrupt(
                f"injected kill at start of round {round_index}")

    def on_batch_end(self, engine, model, batch_index: int,
                     loss: float) -> None:
        self._sync_attempt(engine)
        if self.batch is None or not self._at_target(engine):
            return
        if self._epochs_done == (self.epoch or 0) and batch_index == self.batch:
            self._fire(model, f"epoch {self._epochs_done} batch {batch_index}")

    def on_epoch_end(self, engine, model, epoch: int, logger) -> None:
        self._sync_attempt(engine)
        self._epochs_done = epoch + 1
        if self.batch is not None or self.epoch is None:
            return
        if self._at_target(engine) and epoch == self.epoch:
            self._fire(model, f"end of epoch {epoch}")

    # ------------------------------------------------------------------
    def _sync_attempt(self, engine) -> None:
        # A retry restarts the member's training from epoch 0.
        if engine.retry_attempt != self._attempt:
            self._attempt = engine.retry_attempt
            self._epochs_done = 0

    def _at_target(self, engine) -> bool:
        return self._round == self.round_index and self._armed()

    def _armed(self) -> bool:
        return not (self.once and self.fired)

    def _fire(self, model, where: str) -> None:
        self.fired += 1
        if self.mode == "interrupt":
            raise KeyboardInterrupt(
                f"injected kill at round {self._round}, {where}")
        param = next(iter(model.parameters()))
        param.data[...] = np.nan
