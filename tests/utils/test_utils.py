"""RNG plumbing, timer, and run logging."""

import time

import numpy as np
import pytest

from repro.utils import RunLogger, Timer, new_rng, seed_everything, spawn_rng


class TestRng:
    def test_new_rng_from_int(self):
        a, b = new_rng(5), new_rng(5)
        assert a.random() == b.random()

    def test_new_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert new_rng(rng) is rng

    def test_new_rng_none_is_entropy(self):
        assert new_rng(None).random() != new_rng(None).random()

    def test_spawn_single(self):
        child = spawn_rng(new_rng(0))
        assert isinstance(child, np.random.Generator)

    def test_spawn_many_independent(self):
        children = spawn_rng(new_rng(0), count=3)
        assert len(children) == 3
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_spawn_deterministic(self):
        a = spawn_rng(new_rng(7)).random()
        b = spawn_rng(new_rng(7)).random()
        assert a == b

    def test_seed_everything(self):
        rng = seed_everything(123)
        legacy_a = np.random.rand()
        seed_everything(123)
        legacy_b = np.random.rand()
        assert legacy_a == legacy_b
        assert isinstance(rng, np.random.Generator)


class TestTimer:
    def test_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed > first >= 0.01

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0


class TestRunLogger:
    def test_records_and_columns(self):
        logger = RunLogger()
        logger.log(epoch=0, loss=1.5)
        logger.log(epoch=1, loss=1.2, accuracy=0.6)
        assert logger.column("loss") == [1.5, 1.2]
        assert logger.column("accuracy") == [0.6]

    def test_last_with_default(self):
        logger = RunLogger()
        assert np.isnan(logger.last("loss"))
        logger.log(loss=2.0)
        logger.log(other=1.0)
        assert logger.last("loss") == 2.0
