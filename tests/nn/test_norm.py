"""BatchNorm behaviour: normalisation, running stats, eval mode, gradients."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, gradcheck

RNG = np.random.default_rng(5)


class TestBatchNorm1d:
    def test_normalises_batch(self):
        bn = nn.BatchNorm1d(4)
        data = RNG.normal(5.0, 3.0, size=(64, 4))
        out = bn(Tensor(data)).numpy()
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_gamma_beta_affect_output(self):
        bn = nn.BatchNorm1d(2)
        bn.gamma.data[...] = 2.0
        bn.beta.data[...] = 1.0
        out = bn(Tensor(RNG.normal(size=(32, 2)))).numpy()
        np.testing.assert_allclose(out.mean(axis=0), 1.0, atol=1e-7)

    def test_running_stats_update(self):
        bn = nn.BatchNorm1d(3)
        data = RNG.normal(2.0, 1.0, size=(128, 3))
        for _ in range(30):
            bn(Tensor(data))
        np.testing.assert_allclose(bn._buffers["running_mean"],
                                   data.mean(axis=0), atol=0.2)

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm1d(2)
        for _ in range(50):
            bn(Tensor(RNG.normal(3.0, 2.0, size=(64, 2))))
        bn.eval()
        # A wildly different batch must be normalised by the *running* stats.
        out = bn(Tensor(np.full((4, 2), 3.0))).numpy()
        np.testing.assert_allclose(out, 0.0, atol=0.2)

    def test_gradcheck_train_mode(self):
        bn = nn.BatchNorm1d(3)
        x = Tensor(RNG.normal(size=(6, 3)), requires_grad=True)

        def run(data, gamma, beta):
            bn.gamma = gamma if isinstance(gamma, nn.Parameter) else bn.gamma
            return bn(data)

        assert gradcheck(lambda a: bn(a), [x], atol=1e-4)

    def test_gamma_gradient_flows(self):
        bn = nn.BatchNorm1d(3)
        out = bn(Tensor(RNG.normal(size=(8, 3))))
        out.sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None


class TestBatchNorm2d:
    def test_normalises_per_channel(self):
        bn = nn.BatchNorm2d(3)
        data = RNG.normal(4.0, 2.0, size=(16, 3, 5, 5))
        out = bn(Tensor(data)).numpy()
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)

    def test_shape_preserved(self):
        bn = nn.BatchNorm2d(4)
        assert bn(Tensor(RNG.normal(size=(2, 4, 6, 6)))).shape == (2, 4, 6, 6)

    def test_gradcheck(self):
        bn = nn.BatchNorm2d(2)
        x = Tensor(RNG.normal(size=(3, 2, 3, 3)), requires_grad=True)
        assert gradcheck(lambda a: bn(a), [x], atol=1e-4)

    def test_reinitialize_resets(self):
        bn = nn.BatchNorm2d(2)
        bn(Tensor(RNG.normal(2.0, 1.0, size=(8, 2, 4, 4))))
        bn.gamma.data[...] = 5.0
        bn.reinitialize(RNG)
        np.testing.assert_allclose(bn.gamma.data, 1.0)
        np.testing.assert_allclose(bn._buffers["running_mean"], 0.0)
