"""Shape and behaviour tests for every concrete layer."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor

RNG = np.random.default_rng(3)


def x(*shape):
    return Tensor(RNG.normal(size=shape))


class TestLinear:
    def test_shape(self):
        assert nn.Linear(4, 7, rng=0)(x(5, 4)).shape == (5, 7)

    def test_no_bias(self):
        layer = nn.Linear(4, 7, bias=False, rng=0)
        assert layer.bias is None
        assert layer(x(2, 4)).shape == (2, 7)

    def test_reinitialize_changes_weights(self):
        layer = nn.Linear(4, 4, rng=0)
        before = layer.weight.data.copy()
        layer.reinitialize(np.random.default_rng(99))
        assert not np.allclose(before, layer.weight.data)


class TestConv2d:
    def test_same_padding_shape(self):
        layer = nn.Conv2d(3, 8, 3, padding=1, rng=0)
        assert layer(x(2, 3, 10, 10)).shape == (2, 8, 10, 10)

    def test_stride_halves(self):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=0)
        assert layer(x(2, 3, 10, 10)).shape == (2, 8, 5, 5)

    def test_1x1(self):
        layer = nn.Conv2d(4, 2, 1, rng=0)
        assert layer(x(2, 4, 6, 6)).shape == (2, 2, 6, 6)

    def test_channel_mismatch_raises(self):
        layer = nn.Conv2d(3, 8, 3, rng=0)
        with pytest.raises(ValueError):
            layer(x(2, 5, 10, 10))

    def test_matches_manual_convolution(self):
        layer = nn.Conv2d(1, 1, 2, bias=False, rng=0)
        layer.weight.data[...] = np.arange(4.0).reshape(1, 1, 2, 2)
        image = np.arange(9.0).reshape(1, 1, 3, 3)
        out = layer(Tensor(image)).numpy()
        # manual 2x2 valid conv at (0,0): 0*0 + 1*1 + 2*3 + 3*4 = 19
        assert out[0, 0, 0, 0] == pytest.approx(19.0)
        assert out.shape == (1, 1, 2, 2)


class TestConv1d:
    def test_shape_with_padding(self):
        layer = nn.Conv1d(4, 6, 3, padding=2, rng=0)
        assert layer(x(2, 4, 10)).shape == (2, 6, 12)

    def test_stride(self):
        layer = nn.Conv1d(2, 2, 2, stride=2, rng=0)
        assert layer(x(1, 2, 8)).shape == (1, 2, 4)


class TestEmbedding:
    def test_lookup_shape(self):
        layer = nn.Embedding(50, 8, rng=0)
        ids = RNG.integers(0, 50, size=(3, 7))
        assert layer(ids).shape == (3, 7, 8)

    def test_gradient_scatters(self):
        layer = nn.Embedding(10, 4, rng=0)
        ids = np.array([[1, 1, 2]])
        layer(ids).sum().backward()
        grad = layer.weight.grad
        np.testing.assert_allclose(grad[1], 2.0 * np.ones(4))
        np.testing.assert_allclose(grad[2], np.ones(4))
        np.testing.assert_allclose(grad[0], np.zeros(4))


class TestPooling:
    def test_max_pool(self):
        layer = nn.MaxPool2d(2)
        assert layer(x(2, 3, 8, 8)).shape == (2, 3, 4, 4)

    def test_max_pool_picks_maximum(self):
        data = np.zeros((1, 1, 2, 2))
        data[0, 0, 1, 1] = 5.0
        out = nn.MaxPool2d(2)(Tensor(data))
        assert out.numpy()[0, 0, 0, 0] == 5.0

    def test_avg_pool_value(self):
        data = np.arange(4.0).reshape(1, 1, 2, 2)
        out = nn.AvgPool2d(2)(Tensor(data))
        assert out.numpy()[0, 0, 0, 0] == pytest.approx(1.5)

    def test_global_avg_pool(self):
        out = nn.GlobalAvgPool2d()(x(2, 5, 4, 4))
        assert out.shape == (2, 5)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = nn.Dropout(0.5, rng=0)
        layer.eval()
        data = x(4, 10)
        np.testing.assert_array_equal(layer(data).numpy(), data.numpy())

    def test_train_mode_zeroes_some(self):
        layer = nn.Dropout(0.5, rng=0)
        out = layer(Tensor(np.ones((10, 100)))).numpy()
        assert (out == 0).any()
        # Inverted scaling keeps the expectation ~1.
        assert abs(out.mean() - 1.0) < 0.15

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_zero_probability_identity(self):
        layer = nn.Dropout(0.0)
        data = x(3, 3)
        np.testing.assert_array_equal(layer(data).numpy(), data.numpy())


class TestContainers:
    def test_sequential_applies_in_order(self):
        model = nn.Sequential(nn.Linear(2, 3, rng=0), nn.ReLU(),
                              nn.Linear(3, 1, rng=0))
        assert model(x(4, 2)).shape == (4, 1)
        assert len(model) == 3

    def test_flatten(self):
        assert nn.Flatten()(x(2, 3, 4)).shape == (2, 12)

    def test_relu_tanh_modules(self):
        assert nn.ReLU()(Tensor(np.array([-1.0, 1.0]))).numpy()[0] == 0.0
        assert abs(nn.Tanh()(Tensor(np.array([100.0]))).numpy()[0] - 1.0) < 1e-9
