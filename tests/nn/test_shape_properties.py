"""Hypothesis property tests for layer shape arithmetic and invariances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import functional as F
from repro.tensor import Tensor


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(5, 12),
       st.integers(1, 3), st.integers(0, 2), st.integers(1, 2))
def test_conv2d_output_shape_formula(batch, channels, size, kernel,
                                     padding, stride):
    filters = 3
    x = Tensor(np.zeros((batch, channels, size, size)))
    w = Tensor(np.zeros((filters, channels, kernel, kernel)))
    out = F.conv2d(x, w, None, stride=stride, padding=padding)
    expected = (size + 2 * padding - kernel) // stride + 1
    assert out.shape == (batch, filters, expected, expected)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 3), st.integers(1, 4), st.integers(6, 20),
       st.integers(1, 4), st.integers(0, 3))
def test_conv1d_output_shape_formula(batch, channels, length, kernel, padding):
    filters = 2
    x = Tensor(np.zeros((batch, channels, length)))
    w = Tensor(np.zeros((filters, channels, kernel)))
    out = F.conv1d(x, w, None, padding=padding)
    expected = length + 2 * padding - kernel + 1
    assert out.shape == (batch, filters, expected)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 4), st.integers(1, 3), st.integers(4, 12))
def test_pooling_shapes_consistent(batch, channels, size):
    x = Tensor(np.random.default_rng(0).normal(size=(batch, channels,
                                                     size, size)))
    out_max = F.max_pool2d(x, 2)
    out_avg = F.avg_pool2d(x, 2)
    assert out_max.shape == out_avg.shape == (batch, channels,
                                              size // 2, size // 2)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 16), st.integers(2, 6))
def test_avg_pool_global_equals_mean(batch, channels):
    data = np.random.default_rng(1).normal(size=(batch, channels, 4, 4))
    pooled = F.global_avg_pool2d(Tensor(data)).numpy()
    np.testing.assert_allclose(pooled, data.mean(axis=(2, 3)), atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 5), st.integers(2, 8))
def test_linear_eval_deterministic(batch, features):
    layer = nn.Linear(features, 3, rng=0)
    x = Tensor(np.random.default_rng(2).normal(size=(batch, features)))
    np.testing.assert_array_equal(layer(x).numpy(), layer(x).numpy())


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 12))
def test_max_pool_dominates_avg_pool(size):
    """max-pool >= avg-pool elementwise, for any input."""
    data = np.random.default_rng(3).normal(size=(1, 2, size - size % 2,
                                                 size - size % 2))
    mx = F.max_pool2d(Tensor(data), 2).numpy()
    av = F.avg_pool2d(Tensor(data), 2).numpy()
    assert np.all(mx >= av - 1e-12)
