"""Cross-entropy, distillation, and evaluation helper tests."""

import numpy as np
import pytest

from repro import nn
from repro.models import MLP
from repro.nn.losses import (
    accuracy,
    cross_entropy,
    distillation_loss,
    nll_from_probs,
    predict_probs,
)
from repro.tensor import Tensor, gradcheck

RNG = np.random.default_rng(9)


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0, 0.0], [0.0, 3.0, 0.0]]))
        labels = np.array([0, 1])
        loss = cross_entropy(logits, labels).item()
        probs = np.exp(logits.numpy())
        probs /= probs.sum(axis=1, keepdims=True)
        expected = -np.log(probs[[0, 1], [0, 1]]).mean()
        assert loss == pytest.approx(expected, rel=1e-9)

    def test_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[50.0, 0.0], [0.0, 50.0]]))
        assert cross_entropy(logits, np.array([0, 1])).item() < 1e-6

    def test_weights_scale_contributions(self):
        logits = Tensor(RNG.normal(size=(4, 3)))
        labels = np.array([0, 1, 2, 0])
        uniform = cross_entropy(logits, labels).item()
        manual = cross_entropy(logits, labels,
                               weights=np.full(4, 0.25)).item()
        assert uniform == pytest.approx(manual)

    def test_weight_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1]),
                          weights=np.ones(3))

    def test_gradcheck(self):
        logits = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        labels = np.array([1, 0, 3])
        assert gradcheck(lambda l: cross_entropy(l, labels), [logits])


class TestNLLFromProbs:
    def test_matches_cross_entropy(self):
        from repro.tensor.ops import softmax
        logits = Tensor(RNG.normal(size=(3, 4)))
        labels = np.array([2, 0, 1])
        via_probs = nll_from_probs(softmax(logits, axis=1), labels).item()
        via_logits = cross_entropy(logits, labels).item()
        assert via_probs == pytest.approx(via_logits, rel=1e-6)


class TestDistillation:
    def test_alpha_zero_is_hard_loss(self):
        logits = Tensor(RNG.normal(size=(4, 3)))
        labels = np.array([0, 1, 2, 1])
        teacher = np.full((4, 3), 1 / 3)
        soft = distillation_loss(logits, labels, teacher, alpha=0.0).item()
        hard = cross_entropy(logits, labels).item()
        assert soft == pytest.approx(hard, rel=1e-9)

    def test_matching_teacher_minimises_soft_term(self):
        labels = np.array([0, 1])
        teacher = np.array([[0.9, 0.1], [0.2, 0.8]])
        matched = Tensor(np.log(teacher))
        mismatched = Tensor(np.log(teacher[::-1].copy()))
        l_match = distillation_loss(matched, labels, teacher, alpha=1.0).item()
        l_miss = distillation_loss(mismatched, labels, teacher, alpha=1.0).item()
        assert l_match < l_miss

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            distillation_loss(Tensor(np.zeros((1, 2))), np.array([0]),
                              np.array([[0.5, 0.5]]), alpha=1.5)

    def test_gradcheck(self):
        logits = Tensor(RNG.normal(size=(3, 3)), requires_grad=True)
        labels = np.array([0, 1, 2])
        teacher = RNG.dirichlet(np.ones(3), size=3)
        assert gradcheck(
            lambda l: distillation_loss(l, labels, teacher, alpha=0.5,
                                        temperature=2.0),
            [logits])


class TestEvaluationHelpers:
    def test_accuracy(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(probs, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_predict_probs_rows_sum_to_one(self):
        model = MLP(input_dim=6, num_classes=3, hidden=(8,), rng=0)
        probs = predict_probs(model, RNG.normal(size=(10, 6)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_predict_probs_batching_consistent(self):
        model = MLP(input_dim=4, num_classes=2, hidden=(8,), rng=0)
        data = RNG.normal(size=(30, 4))
        full = predict_probs(model, data, batch_size=256)
        chunked = predict_probs(model, data, batch_size=7)
        np.testing.assert_allclose(full, chunked, atol=1e-12)

    def test_predict_probs_restores_training_mode(self):
        model = MLP(input_dim=4, num_classes=2, hidden=(8,), rng=0)
        model.train()
        predict_probs(model, RNG.normal(size=(5, 4)))
        assert model.training
