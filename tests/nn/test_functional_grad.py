"""Gradient checks for the fused conv/pool primitives."""

import numpy as np

from repro.nn import functional as F
from repro.tensor import Tensor, gradcheck
from repro.tensor.ops import pad1d, pad2d

RNG = np.random.default_rng(11)


def t(shape, scale=0.5):
    return Tensor(RNG.normal(size=shape) * scale, requires_grad=True)


class TestConv2dGrad:
    def test_basic(self):
        assert gradcheck(lambda a, w, b: F.conv2d(a, w, b),
                         [t((2, 2, 5, 5)), t((3, 2, 3, 3)), t((3,))])

    def test_with_padding(self):
        assert gradcheck(lambda a, w, b: F.conv2d(a, w, b, padding=1),
                         [t((2, 2, 4, 4)), t((3, 2, 3, 3)), t((3,))])

    def test_with_stride(self):
        assert gradcheck(lambda a, w, b: F.conv2d(a, w, b, stride=2, padding=1),
                         [t((1, 2, 6, 6)), t((2, 2, 3, 3)), t((2,))])

    def test_wide_padding(self):
        # Padding wider than half the input: every output cell touches zeros,
        # so the backward's un-pad slice is exercised across the full width.
        assert gradcheck(lambda a, w: F.conv2d(a, w, None, padding=3),
                         [t((1, 1, 3, 3)), t((2, 1, 3, 3))])

    def test_no_bias(self):
        assert gradcheck(lambda a, w: F.conv2d(a, w, None, padding=1),
                         [t((1, 3, 4, 4)), t((2, 3, 3, 3))])

    def test_1x1_kernel(self):
        assert gradcheck(lambda a, w, b: F.conv2d(a, w, b),
                         [t((2, 3, 3, 3)), t((4, 3, 1, 1)), t((4,))])


class TestConv1dGrad:
    def test_basic(self):
        assert gradcheck(lambda a, w, b: F.conv1d(a, w, b),
                         [t((2, 3, 8)), t((4, 3, 3)), t((4,))])

    def test_with_padding(self):
        assert gradcheck(lambda a, w, b: F.conv1d(a, w, b, padding=2),
                         [t((2, 2, 6)), t((3, 2, 3)), t((3,))])

    def test_with_stride(self):
        assert gradcheck(lambda a, w: F.conv1d(a, w, None, stride=2),
                         [t((1, 2, 9)), t((2, 2, 3))])

    def test_with_stride_and_padding(self):
        # stride > 1 leaves trailing padded columns unconsumed; their
        # gradient must come back exactly zero through the pad1d backward.
        assert gradcheck(lambda a, w, b: F.conv1d(a, w, b, stride=2, padding=2),
                         [t((2, 2, 7)), t((3, 2, 3)), t((3,))])

    def test_wide_padding(self):
        assert gradcheck(lambda a, w: F.conv1d(a, w, None, padding=4),
                         [t((1, 2, 3)), t((2, 2, 3))])

    def test_padding_backward_is_unpadded_slice(self):
        # Direct check of the hand-derived pad path: d(sum(conv))/dx for a
        # kernel of ones counts how many output windows each input cell
        # feeds, which for full padding is the same for every cell.
        x = Tensor(RNG.normal(size=(1, 1, 5)), requires_grad=True)
        w = Tensor(np.ones((1, 1, 3)))
        F.conv1d(x, w, padding=2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 5), 3.0))


class TestPadGrad:
    def test_pad1d(self):
        assert gradcheck(lambda a: pad1d(a, 2), [t((2, 3, 5))])

    def test_pad2d(self):
        assert gradcheck(lambda a: pad2d(a, 1), [t((2, 2, 3, 3))])

    def test_pad_zero_is_identity(self):
        x = t((1, 2, 4))
        assert pad1d(x, 0) is x
        y = t((1, 2, 4, 4))
        assert pad2d(y, 0) is y


class TestPoolingGrad:
    def test_max_pool(self):
        # Use well-separated values so the argmax is stable under eps.
        data = np.arange(32.0).reshape(1, 2, 4, 4)
        RNG.shuffle(data.reshape(-1))
        assert gradcheck(lambda a: F.max_pool2d(a, 2),
                         [Tensor(data, requires_grad=True)])

    def test_avg_pool(self):
        assert gradcheck(lambda a: F.avg_pool2d(a, 2), [t((2, 2, 4, 4))])

    def test_avg_pool_stride(self):
        assert gradcheck(lambda a: F.avg_pool2d(a, 2, stride=1),
                         [t((1, 2, 4, 4))])

    def test_global_avg_pool(self):
        assert gradcheck(lambda a: F.global_avg_pool2d(a), [t((2, 3, 4, 4))])

    def test_max_over_time(self):
        data = np.arange(24.0).reshape(2, 3, 4)
        RNG.shuffle(data.reshape(-1))
        assert gradcheck(lambda a: F.max_over_time(a),
                         [Tensor(data, requires_grad=True)])


class TestEmbeddingGrad:
    def test_lookup(self):
        weight = t((10, 4))
        ids = np.array([[0, 3, 3], [7, 1, 0]])
        assert gradcheck(lambda w: F.embedding_lookup(w, ids), [weight])
