"""Gradient checks for the fused conv/pool primitives."""

import numpy as np

from repro.nn import functional as F
from repro.tensor import Tensor, gradcheck

RNG = np.random.default_rng(11)


def t(shape, scale=0.5):
    return Tensor(RNG.normal(size=shape) * scale, requires_grad=True)


class TestConv2dGrad:
    def test_basic(self):
        assert gradcheck(lambda a, w, b: F.conv2d(a, w, b),
                         [t((2, 2, 5, 5)), t((3, 2, 3, 3)), t((3,))])

    def test_with_padding(self):
        assert gradcheck(lambda a, w, b: F.conv2d(a, w, b, padding=1),
                         [t((2, 2, 4, 4)), t((3, 2, 3, 3)), t((3,))])

    def test_with_stride(self):
        assert gradcheck(lambda a, w, b: F.conv2d(a, w, b, stride=2, padding=1),
                         [t((1, 2, 6, 6)), t((2, 2, 3, 3)), t((2,))])

    def test_no_bias(self):
        assert gradcheck(lambda a, w: F.conv2d(a, w, None, padding=1),
                         [t((1, 3, 4, 4)), t((2, 3, 3, 3))])

    def test_1x1_kernel(self):
        assert gradcheck(lambda a, w, b: F.conv2d(a, w, b),
                         [t((2, 3, 3, 3)), t((4, 3, 1, 1)), t((4,))])


class TestConv1dGrad:
    def test_basic(self):
        assert gradcheck(lambda a, w, b: F.conv1d(a, w, b),
                         [t((2, 3, 8)), t((4, 3, 3)), t((4,))])

    def test_with_padding(self):
        assert gradcheck(lambda a, w, b: F.conv1d(a, w, b, padding=2),
                         [t((2, 2, 6)), t((3, 2, 3)), t((3,))])

    def test_with_stride(self):
        assert gradcheck(lambda a, w: F.conv1d(a, w, None, stride=2),
                         [t((1, 2, 9)), t((2, 2, 3))])


class TestPoolingGrad:
    def test_max_pool(self):
        # Use well-separated values so the argmax is stable under eps.
        data = np.arange(32.0).reshape(1, 2, 4, 4)
        RNG.shuffle(data.reshape(-1))
        assert gradcheck(lambda a: F.max_pool2d(a, 2),
                         [Tensor(data, requires_grad=True)])

    def test_avg_pool(self):
        assert gradcheck(lambda a: F.avg_pool2d(a, 2), [t((2, 2, 4, 4))])

    def test_avg_pool_stride(self):
        assert gradcheck(lambda a: F.avg_pool2d(a, 2, stride=1),
                         [t((1, 2, 4, 4))])

    def test_global_avg_pool(self):
        assert gradcheck(lambda a: F.global_avg_pool2d(a), [t((2, 3, 4, 4))])

    def test_max_over_time(self):
        data = np.arange(24.0).reshape(2, 3, 4)
        RNG.shuffle(data.reshape(-1))
        assert gradcheck(lambda a: F.max_over_time(a),
                         [Tensor(data, requires_grad=True)])


class TestEmbeddingGrad:
    def test_lookup(self):
        weight = t((10, 4))
        ids = np.array([[0, 3, 3], [7, 1, 0]])
        assert gradcheck(lambda w: F.embedding_lookup(w, ids), [weight])
