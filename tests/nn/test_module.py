"""Module/Parameter registration, traversal and serialization."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


class TwoLayer(nn.Module):
    def __init__(self):
        super().__init__()
        self.first = nn.Linear(4, 8, rng=0)
        self.second = nn.Linear(8, 2, rng=1)

    def forward(self, x):
        return self.second(self.first(x).relu())


class TestRegistration:
    def test_parameters_found(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_parameters()]
        assert names == ["first.weight", "first.bias",
                         "second.weight", "second.bias"]

    def test_order_follows_construction(self):
        # beta-transfer relies on input-to-output ordering.
        model = nn.Sequential(nn.Linear(2, 3, rng=0), nn.ReLU(),
                              nn.Linear(3, 4, rng=0))
        names = [name for name, _ in model.named_parameters()]
        assert names[0].startswith("0.") and names[-1].startswith("2.")

    def test_add_module_dynamic(self):
        model = nn.Module()
        model.add_module("layer7", nn.Linear(2, 2, rng=0))
        assert any(name.startswith("layer7.") for name, _ in model.named_parameters())

    def test_num_parameters(self):
        model = nn.Linear(4, 3, rng=0)
        assert model.num_parameters() == 4 * 3 + 3

    def test_modules_iterates_children(self):
        model = TwoLayer()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds == ["TwoLayer", "Linear", "Linear"]


class TestModes:
    def test_train_eval_propagates(self):
        model = TwoLayer()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = TwoLayer()
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_round_trip(self):
        source = TwoLayer()
        target = TwoLayer()
        target.load_state_dict(source.state_dict())
        for (_, p1), (_, p2) in zip(source.named_parameters(),
                                    target.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_copies(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"][...] = 0.0
        assert not np.allclose(model.first.weight.data, 0.0)

    def test_missing_key_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["second.bias"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_includes_batchnorm_buffers(self):
        model = nn.Sequential(nn.Linear(3, 4, rng=0), nn.BatchNorm1d(4))
        model(Tensor(np.random.default_rng(0).normal(size=(8, 3))))
        state = model.state_dict()
        assert "1.running_mean" in state
        assert "1.running_var" in state

    def test_buffer_round_trip(self):
        bn1 = nn.BatchNorm1d(3)
        bn1(Tensor(np.random.default_rng(0).normal(size=(16, 3))))
        bn2 = nn.BatchNorm1d(3)
        bn2.load_state_dict(bn1.state_dict())
        np.testing.assert_array_equal(bn1._buffers["running_mean"],
                                      bn2._buffers["running_mean"])
