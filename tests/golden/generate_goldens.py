"""Regenerate ``goldens.json`` — run ONLY when numerics change on purpose.

Usage::

    PYTHONPATH=src:tests python tests/golden/generate_goldens.py

The committed ``goldens.json`` was produced by the pre-refactor op layer
(PR 2 state) and pins the bit-exact outputs the registry/fused-kernel
refactor must reproduce.  Regenerating it silently launders a numerical
regression, so only do it alongside an intentional, documented change in
training arithmetic.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _fingerprint import compute_fingerprints  # noqa: E402


def main() -> int:
    out = pathlib.Path(__file__).resolve().parent / "goldens.json"
    fingerprints = compute_fingerprints()
    out.write_text(json.dumps(fingerprints, indent=2) + "\n")
    for name, prints in fingerprints.items():
        print(f"{name}: accuracy={prints['final_accuracy']} "
              f"probs={prints['ensemble_probs'][:12]}…")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
