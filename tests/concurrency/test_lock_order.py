"""The runtime lock-order sanitizer: tracked locks, mode, boundaries."""

from __future__ import annotations

import threading

import pytest

from repro.concurrency import (
    LOCKS,
    LockOrderError,
    TrackedLock,
    check_boundary,
    held_locks,
    lock_order,
    lock_order_enabled,
    lock_order_mode,
    tracked_condition,
    tracked_lock,
    tracked_rlock,
)


class TestModel:
    def test_declared_order_is_strictly_ranked(self):
        names = lock_order()
        ranks = [LOCKS[name].rank for name in names]
        assert ranks == sorted(ranks) and len(set(ranks)) == len(ranks)

    def test_every_serving_lock_is_registered(self):
        assert {"service.swap", "service.stats", "transport.stats",
                "scheduler.cond", "breaker", "pressure"} == set(LOCKS)


class TestFactories:
    def test_raw_primitives_outside_the_mode(self):
        assert not lock_order_enabled()
        assert isinstance(tracked_lock("service.swap"), type(threading.Lock()))
        assert isinstance(tracked_condition("scheduler.cond"),
                          threading.Condition)
        # RLock has no public class; behaviourally reentrant is enough.
        rlock = tracked_rlock("breaker")
        with rlock:
            assert rlock.acquire(blocking=False)
            rlock.release()

    def test_proxies_inside_the_mode(self):
        with lock_order_mode():
            assert lock_order_enabled()
            assert isinstance(tracked_lock("service.swap"), TrackedLock)
            cond = tracked_condition("scheduler.cond")
            assert isinstance(cond._lock, TrackedLock)
        assert not lock_order_enabled()

    def test_unregistered_name_rejected(self):
        with pytest.raises(ValueError, match="unregistered lock name"):
            tracked_lock("nope")

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError, match="matching factory"):
            tracked_lock("breaker")          # registered as an RLock
        with pytest.raises(ValueError, match="matching factory"):
            tracked_condition("pressure")    # registered as a plain lock

    def test_mode_disabled_flag_is_a_noop(self):
        with lock_order_mode(enabled=False):
            assert not lock_order_enabled()


class TestOrderChecking:
    def test_declared_order_acquires_cleanly(self):
        with lock_order_mode():
            outer = tracked_lock("service.swap")
            inner = tracked_lock("service.stats")
            with outer:
                with inner:
                    assert held_locks() == ["service.swap", "service.stats"]
            assert held_locks() == []

    def test_inverted_order_raises_naming_both_locks_and_thread(self):
        with lock_order_mode():
            outer = tracked_lock("service.swap")
            inner = tracked_lock("service.stats")
            with inner:
                with pytest.raises(LockOrderError) as excinfo:
                    outer.acquire()
            violation = excinfo.value
            assert violation.acquiring == "service.swap"
            assert violation.holding == ["service.stats"]
            assert violation.thread == threading.current_thread().name
            text = str(violation)
            assert "service.swap" in text and "service.stats" in text
            assert threading.current_thread().name in text

    def test_conflicting_fixture_pair_deadlock_free(self):
        """Two threads lock in opposite orders: no deadlock, one error."""
        with lock_order_mode():
            swap = tracked_lock("service.swap")
            stats = tracked_lock("service.stats")
            errors = []
            hold = threading.Event()
            release = threading.Event()

            def forward():
                with swap:
                    hold.set()
                    release.wait(timeout=5)
                    with stats:
                        pass

            def backward():
                hold.wait(timeout=5)
                with stats:
                    try:
                        swap.acquire()
                    except LockOrderError as error:
                        errors.append(error)
                    finally:
                        release.set()

            threads = [threading.Thread(target=forward),
                       threading.Thread(target=backward)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert not any(thread.is_alive() for thread in threads)
            (error,) = errors
            assert error.acquiring == "service.swap"
            assert error.holding == ["service.stats"]

    def test_same_rank_instances_may_not_nest(self):
        with lock_order_mode():
            one = tracked_rlock("breaker")
            other = tracked_rlock("breaker")
            with one:
                with pytest.raises(LockOrderError):
                    other.acquire()

    def test_reentrant_reacquire_is_fine(self):
        with lock_order_mode():
            breaker = tracked_rlock("breaker")
            with breaker:
                with breaker:
                    assert held_locks() == ["breaker", "breaker"]
            assert held_locks() == []

    def test_self_deadlock_detected_immediately(self):
        with lock_order_mode():
            lock = tracked_lock("pressure")
            lock.acquire()
            try:
                with pytest.raises(LockOrderError, match="self-deadlock"):
                    lock.acquire()          # would hang forever untracked
            finally:
                lock.release()

    def test_nonblocking_probe_of_held_lock_declines_quietly(self):
        # Condition._is_owned probes with acquire(False); must not raise.
        with lock_order_mode():
            lock = tracked_lock("pressure")
            with lock:
                assert lock.acquire(blocking=False) is False


class TestConditionIntegration:
    def test_wait_releases_the_held_set(self):
        with lock_order_mode():
            cond = tracked_condition("scheduler.cond")
            seen = {}

            def producer():
                with cond:
                    seen["producer_held"] = held_locks()
                    cond.notify()

            with cond:
                assert held_locks() == ["scheduler.cond"]
                threading.Thread(target=producer).start()
                assert cond.wait(timeout=5)
                # Re-acquired on wake: the held set is restored.
                assert held_locks() == ["scheduler.cond"]
            assert held_locks() == []
            assert seen["producer_held"] == ["scheduler.cond"]

    def test_condition_over_lower_rank_lock_checks_order(self):
        with lock_order_mode():
            cond = tracked_condition("scheduler.cond")   # rank 60, innermost
            swap = tracked_lock("service.swap")
            with cond:
                with pytest.raises(LockOrderError):
                    swap.acquire()


class TestBoundary:
    def test_clean_boundary_passes(self):
        with lock_order_mode():
            check_boundary("MicroBatcher.process")

    def test_lock_held_across_boundary_raises(self):
        with lock_order_mode():
            lock = tracked_lock("transport.stats")
            with lock:
                with pytest.raises(LockOrderError) as excinfo:
                    check_boundary("MemberExecutor.run")
            assert excinfo.value.acquiring is None
            assert excinfo.value.holding == ["transport.stats"]
            assert "MemberExecutor.run" in str(excinfo.value)

    def test_boundary_free_outside_the_mode(self):
        check_boundary("MicroBatcher.process")   # no-op, never raises
