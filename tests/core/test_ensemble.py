"""Ensemble container: Eq. 16 combination, voting, evaluation."""

import numpy as np
import pytest

from repro.core.ensemble import Ensemble, average_probs, majority_vote
from repro.models import MLP

RNG = np.random.default_rng(10)


def make_model(seed):
    return MLP(input_dim=4, num_classes=3, hidden=(6,), rng=seed)


class TestEnsemble:
    def test_add_and_len(self):
        ensemble = Ensemble()
        ensemble.add(make_model(0), 1.0)
        ensemble.add(make_model(1), 2.0)
        assert len(ensemble) == 2

    def test_rejects_nonpositive_alpha(self):
        ensemble = Ensemble()
        with pytest.raises(ValueError):
            ensemble.add(make_model(0), 0.0)

    def test_empty_predict_raises(self):
        with pytest.raises(RuntimeError):
            Ensemble().predict_probs(RNG.normal(size=(2, 4)))

    def test_poisoned_batch_rejected(self):
        # A NaN row would flow through softmax into a well-formed-looking
        # (possibly confident) garbage distribution; the ensemble must
        # refuse the batch up front with the serving taxonomy's
        # InvalidRequest instead.
        from repro.serving.errors import InvalidRequest

        ensemble = Ensemble()
        for s in range(2):
            ensemble.add(make_model(s), 1.0)
        poisoned = RNG.normal(size=(5, 4))
        poisoned[2, 1] = np.nan
        poisoned[4, 0] = np.inf
        with pytest.raises(InvalidRequest, match="non-finite") as excinfo:
            ensemble.predict_probs(poisoned)
        assert excinfo.value.field == "values"
        with pytest.raises(InvalidRequest):
            ensemble.predict(poisoned)
        with pytest.raises(InvalidRequest):
            ensemble.evaluate(poisoned, np.zeros(5, dtype=np.int64))

    def test_predict_probs_valid_distribution(self):
        ensemble = Ensemble()
        for s in range(3):
            ensemble.add(make_model(s), s + 1.0)
        probs = ensemble.predict_probs(RNG.normal(size=(7, 4)))
        assert probs.shape == (7, 3)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_weighted_average_matches_manual(self):
        ensemble = Ensemble()
        models = [make_model(s) for s in range(2)]
        ensemble.add(models[0], 1.0)
        ensemble.add(models[1], 3.0)
        x = RNG.normal(size=(5, 4))
        member = ensemble.member_probs(x)
        expected = 0.25 * member[0] + 0.75 * member[1]
        np.testing.assert_allclose(ensemble.predict_probs(x), expected, atol=1e-12)

    def test_single_member_equals_model(self):
        ensemble = Ensemble()
        model = make_model(0)
        ensemble.add(model, 5.0)
        x = RNG.normal(size=(4, 4))
        from repro.nn import predict_probs
        np.testing.assert_allclose(ensemble.predict_probs(x),
                                   predict_probs(model, x), atol=1e-12)

    def test_evaluate_and_member_accuracies(self):
        ensemble = Ensemble()
        ensemble.add(make_model(0))
        ensemble.add(make_model(1))
        x = RNG.normal(size=(10, 4))
        y = RNG.integers(0, 3, size=10)
        acc = ensemble.evaluate(x, y)
        assert 0.0 <= acc <= 1.0
        members = ensemble.member_accuracies(x, y)
        assert len(members) == 2


class TestReplaceMember:
    def build(self, seeds=(0, 1, 2), alphas=(1.0, 2.0, 3.0)):
        ensemble = Ensemble()
        for seed, alpha in zip(seeds, alphas):
            ensemble.add(make_model(seed), alpha)
        return ensemble

    def test_swapped_ensemble_matches_fresh_construction(self):
        ensemble = self.build()
        replacement = make_model(9)
        retired = ensemble.replace_member(1, replacement, alpha=0.5)
        fresh = Ensemble()
        fresh.add(ensemble.models[0], 1.0)
        fresh.add(replacement, 0.5)
        fresh.add(ensemble.models[2], 3.0)
        x = RNG.normal(size=(6, 4))
        # Bit-identical, not just close: the swap must be exactly an
        # Eq. 16 vote over the new roster.
        np.testing.assert_array_equal(ensemble.predict_probs(x),
                                      fresh.predict_probs(x))
        assert retired is not replacement
        from repro.nn import predict_probs
        np.testing.assert_array_equal(predict_probs(retired, x),
                                      predict_probs(make_model(1), x))

    def test_negative_index_and_version_bump(self):
        ensemble = self.build()
        version = ensemble.membership_version
        ensemble.replace_member(-1, make_model(9), alpha=1.0)
        assert ensemble.membership_version == version + 1
        assert ensemble.alphas == [1.0, 2.0, 1.0]

    def test_validation_leaves_ensemble_untouched(self):
        ensemble = self.build()
        x = RNG.normal(size=(4, 4))
        before_probs = ensemble.predict_probs(x)
        version = ensemble.membership_version
        with pytest.raises(ValueError):
            ensemble.replace_member(0, make_model(9), alpha=0.0)
        with pytest.raises(ValueError):
            ensemble.replace_member(0, make_model(9), alpha=float("nan"))
        with pytest.raises(IndexError):
            ensemble.replace_member(3, make_model(9), alpha=1.0)
        assert ensemble.membership_version == version
        assert ensemble.alphas == [1.0, 2.0, 3.0]
        np.testing.assert_array_equal(ensemble.predict_probs(x),
                                      before_probs)


class TestCombiners:
    def test_majority_vote(self):
        a = np.array([[0.9, 0.1], [0.9, 0.1]])
        b = np.array([[0.8, 0.2], [0.2, 0.8]])
        c = np.array([[0.1, 0.9], [0.3, 0.7]])
        votes = majority_vote([a, b, c])
        np.testing.assert_array_equal(votes, [0, 1])

    def test_average_probs_uniform(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        np.testing.assert_allclose(average_probs([a, b]), [[0.5, 0.5]])

    def test_average_probs_weighted(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        np.testing.assert_allclose(average_probs([a, b], alphas=[3.0, 1.0]),
                                   [[0.75, 0.25]])

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            majority_vote([])
        with pytest.raises(ValueError):
            average_probs([])

    def test_alpha_mismatch(self):
        with pytest.raises(ValueError):
            average_probs([np.ones((1, 2))], alphas=[1.0, 2.0])
