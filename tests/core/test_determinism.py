"""Same seed, same result — exact, not approximate.

The engine refactor routes every method through the shared
:class:`~repro.core.engine.EnsembleEngine` and its prediction cache; these
regressions pin down that the cached aggregation is bitwise identical to
direct evaluation, so a fixed integer seed reproduces a fit exactly.
"""

import pytest

from repro.baselines import Bagging, BaselineConfig, SnapshotConfig, SnapshotEnsemble
from repro.core import EDDEConfig, EDDETrainer


def fingerprint(result):
    """Everything a FitResult promises to reproduce under a fixed seed."""
    return {
        "alphas": [m.alpha for m in result.members],
        "train_accuracies": [m.train_accuracy for m in result.members],
        "test_accuracies": [m.test_accuracy for m in result.members],
        "curve": [(p.cumulative_epochs, p.ensemble_accuracy, p.num_models)
                  for p in result.curve],
        "total_epochs": result.total_epochs,
        "final_accuracy": result.final_accuracy,
    }


def assert_identical(a, b):
    fa, fb = fingerprint(a), fingerprint(b)
    assert fa.keys() == fb.keys()
    for key in fa:
        assert fa[key] == fb[key], f"{key} differs across same-seed runs"


class TestSameSeedBitIdentical:
    def test_edde(self, tiny_image_split, mlp_factory):
        config = EDDEConfig(num_models=3, gamma=0.1, beta=0.6,
                            first_epochs=2, later_epochs=1,
                            lr=0.05, batch_size=32)
        runs = [EDDETrainer(mlp_factory, config).fit(
                    tiny_image_split.train, tiny_image_split.test, rng=123)
                for _ in range(2)]
        assert_identical(runs[0], runs[1])
        # Ensemble weights are exactly equal, not merely close.
        assert runs[0].ensemble.alphas == runs[1].ensemble.alphas
        # And the raw boosting statistics agree too (round 1 records
        # mean_similarity as nan, which never compares equal to itself).
        for m0, m1 in zip(runs[0].members, runs[1].members):
            assert m0.extras.keys() == m1.extras.keys()
            for key in m0.extras:
                a, b = m0.extras[key], m1.extras[key]
                assert a == b or (a != a and b != b), key

    def test_bagging(self, tiny_image_split, mlp_factory):
        config = BaselineConfig(num_models=3, epochs_per_model=1,
                                lr=0.05, batch_size=32)
        runs = [Bagging(mlp_factory, config).fit(
                    tiny_image_split.train, tiny_image_split.test, rng=123)
                for _ in range(2)]
        assert_identical(runs[0], runs[1])

    def test_snapshot(self, tiny_image_split, mlp_factory):
        config = SnapshotConfig(num_models=2, epochs_per_model=2,
                                lr=0.05, batch_size=32)
        runs = [SnapshotEnsemble(mlp_factory, config).fit(
                    tiny_image_split.train, tiny_image_split.test, rng=9)
                for _ in range(2)]
        assert_identical(runs[0], runs[1])

    def test_different_seeds_differ(self, tiny_image_split, mlp_factory):
        config = EDDEConfig(num_models=2, gamma=0.1, beta=0.6,
                            first_epochs=1, later_epochs=1,
                            lr=0.05, batch_size=32)
        r0 = EDDETrainer(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        r1 = EDDETrainer(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=1)
        with pytest.raises(AssertionError):
            assert_identical(r0, r1)


class TestCachedAggregationMatchesDirect:
    def test_final_accuracy_equals_direct_evaluation(self, tiny_image_split,
                                                     mlp_factory):
        """The cache-maintained ensemble accuracy must equal re-evaluating
        the fitted ensemble on the test set from scratch, bit for bit."""
        config = EDDEConfig(num_models=3, gamma=0.1, beta=0.6,
                            first_epochs=2, later_epochs=1,
                            lr=0.05, batch_size=32)
        result = EDDETrainer(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=5)
        direct = result.ensemble.evaluate(tiny_image_split.test.x,
                                          tiny_image_split.test.y)
        assert result.final_accuracy == direct
