"""Diversity measures: Eq. 1, 2, 3, 7 semantics and bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diversity import (
    ensemble_diversity,
    hard_ambiguity,
    pairwise_distance,
    pairwise_diversity,
    pairwise_similarity,
    similarity_matrix,
)

RNG = np.random.default_rng(4)


def random_probs(n=10, k=5, seed=0):
    return np.random.default_rng(seed).dirichlet(np.ones(k), size=n)


class TestPairwiseDiversity:
    def test_identical_models_zero(self):
        probs = random_probs()
        assert pairwise_diversity(probs, probs) == pytest.approx(0.0)
        assert pairwise_similarity(probs, probs) == pytest.approx(1.0)

    def test_disjoint_onehot_is_one(self):
        # maximally different distributions: distance = sqrt(2), Div = 1.
        a = np.array([[1.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0], [0.0, 1.0]])
        assert pairwise_diversity(a, b) == pytest.approx(1.0)

    def test_symmetry(self):
        a, b = random_probs(seed=1), random_probs(seed=2)
        assert pairwise_diversity(a, b) == pytest.approx(pairwise_diversity(b, a))

    def test_per_sample_distance_shape(self):
        a, b = random_probs(7), random_probs(7, seed=9)
        assert pairwise_distance(a, b).shape == (7,)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            pairwise_diversity(random_probs(3), random_probs(4))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            pairwise_diversity(np.ones(3), np.ones(3))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 8), st.integers(1, 12))
    def test_bounds_property(self, seed, k, n):
        """Paper Eq. 6: Div and Sim always lie in [0, 1]."""
        rng = np.random.default_rng(seed)
        a = rng.dirichlet(np.ones(k), size=n)
        b = rng.dirichlet(np.ones(k), size=n)
        div = pairwise_diversity(a, b)
        assert 0.0 <= div <= 1.0
        assert 0.0 <= pairwise_similarity(a, b) <= 1.0


class TestEnsembleDiversity:
    def test_matches_manual_mean(self):
        members = [random_probs(seed=s) for s in range(3)]
        manual = np.mean([pairwise_diversity(members[0], members[1]),
                          pairwise_diversity(members[0], members[2]),
                          pairwise_diversity(members[1], members[2])])
        assert ensemble_diversity(members) == pytest.approx(manual)

    def test_identical_members_zero(self):
        probs = random_probs()
        assert ensemble_diversity([probs, probs, probs]) == pytest.approx(0.0)

    def test_needs_two_members(self):
        with pytest.raises(ValueError):
            ensemble_diversity([random_probs()])

    def test_adding_a_clone_lowers_diversity(self):
        a, b = random_probs(seed=1), random_probs(seed=2)
        base = ensemble_diversity([a, b])
        with_clone = ensemble_diversity([a, b, a])
        assert with_clone < base


class TestSimilarityMatrix:
    def test_structure(self):
        members = [random_probs(seed=s) for s in range(4)]
        matrix = similarity_matrix(members)
        assert matrix.shape == (4, 4)
        np.testing.assert_allclose(np.diag(matrix), 1.0)
        np.testing.assert_allclose(matrix, matrix.T)

    def test_values_match_pairwise(self):
        members = [random_probs(seed=s) for s in range(3)]
        matrix = similarity_matrix(members)
        assert matrix[0, 2] == pytest.approx(
            pairwise_similarity(members[0], members[2]))


class TestHardAmbiguity:
    def test_unanimous_correct_is_zero(self):
        labels = np.array([0, 1, 0])
        predictions = [labels.copy(), labels.copy()]
        amb = hard_ambiguity(predictions, labels, labels, alphas=[1.0, 1.0])
        np.testing.assert_allclose(amb, 0.0)

    def test_disagreement_nonzero(self):
        labels = np.array([0, 0])
        member = [np.array([0, 1]), np.array([0, 0])]  # first model wrong on x2
        ensemble = np.array([0, 0])
        amb = hard_ambiguity(member, ensemble, labels, alphas=[1.0, 1.0])
        assert amb[0] == 0.0
        assert amb[1] == pytest.approx(1.0)  # ensemble right (+1), h1 wrong (-1)

    def test_alpha_length_checked(self):
        with pytest.raises(ValueError):
            hard_ambiguity([np.zeros(2)], np.zeros(2), np.zeros(2), alphas=[1, 2])
