"""Stacking meta-learner extension."""

import numpy as np
import pytest

from repro.core import Ensemble, StackedEnsemble
from repro.core.stacking import SoftmaxRegression
from repro.models import MLP

RNG = np.random.default_rng(17)


class TestSoftmaxRegression:
    def test_learns_separable_data(self):
        x = np.concatenate([RNG.normal(-2, 0.3, size=(40, 2)),
                            RNG.normal(2, 0.3, size=(40, 2))])
        y = np.repeat([0, 1], 40)
        model = SoftmaxRegression(2, 2, rng=0)
        model.fit(x, y, epochs=300, lr=0.5)
        predictions = model.predict_probs(x).argmax(axis=1)
        assert (predictions == y).mean() > 0.95

    def test_probs_valid(self):
        model = SoftmaxRegression(3, 4, rng=0)
        probs = model.predict_probs(RNG.normal(size=(5, 3)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)


class TestStackedEnsemble:
    def make_ensemble(self, count=3):
        ensemble = Ensemble()
        for seed in range(count):
            ensemble.add(MLP(input_dim=4, num_classes=3, hidden=(6,),
                             rng=seed), 1.0)
        return ensemble

    def test_requires_members(self):
        with pytest.raises(ValueError):
            StackedEnsemble(Ensemble())

    def test_predict_before_fit_raises(self):
        stacked = StackedEnsemble(self.make_ensemble())
        with pytest.raises(RuntimeError):
            stacked.predict_probs(RNG.normal(size=(2, 4)))

    def test_fit_and_predict_shapes(self):
        stacked = StackedEnsemble(self.make_ensemble(), rng=0)
        x = RNG.normal(size=(30, 4))
        y = RNG.integers(0, 3, size=30)
        stacked.fit(x, y, epochs=50)
        probs = stacked.predict_probs(x)
        assert probs.shape == (30, 3)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
        assert 0.0 <= stacked.evaluate(x, y) <= 1.0

    def test_stacking_at_least_matches_random(self, tiny_image_split,
                                              mlp_factory):
        """On a real task, the fitted meta-learner must beat chance."""
        from repro.core import EDDEConfig, EDDETrainer

        config = EDDEConfig(num_models=2, gamma=0.1, beta=0.8,
                            first_epochs=3, later_epochs=2, lr=0.05,
                            batch_size=32)
        result = EDDETrainer(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        stacked = StackedEnsemble(result.ensemble, rng=0)
        stacked.fit(tiny_image_split.train.x, tiny_image_split.train.y)
        acc = stacked.evaluate(tiny_image_split.test.x, tiny_image_split.test.y)
        assert acc > 1.5 / tiny_image_split.num_classes
