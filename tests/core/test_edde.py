"""EDDE end-to-end: Algorithm 1 on small fixtures."""

import numpy as np
import pytest

from repro.core import EDDEConfig, EDDETrainer
from repro.models import MLP, ModelFactory


@pytest.fixture
def quick_config():
    return EDDEConfig(num_models=3, gamma=0.1, beta=0.6,
                      first_epochs=3, later_epochs=2,
                      lr=0.05, batch_size=32, weight_decay=0.0)


class TestConfigValidation:
    def test_defaults_valid(self):
        config = EDDEConfig()
        assert config.total_epochs() == config.first_epochs + \
            (config.num_models - 1) * config.later_epochs

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            EDDEConfig(num_models=0)
        with pytest.raises(ValueError):
            EDDEConfig(gamma=-0.1)
        with pytest.raises(ValueError):
            EDDEConfig(beta=1.5)
        with pytest.raises(ValueError):
            EDDEConfig(first_epochs=0)
        with pytest.raises(ValueError):
            EDDEConfig(correlate_target="nothing")


class TestFit:
    def test_produces_requested_models(self, tiny_image_split, mlp_factory,
                                       quick_config):
        trainer = EDDETrainer(mlp_factory, quick_config)
        result = trainer.fit(tiny_image_split.train, tiny_image_split.test, rng=0)
        assert len(result.ensemble) == 3
        assert len(result.members) == 3
        assert result.total_epochs == 3 + 2 + 2
        assert 0.0 <= result.final_accuracy <= 1.0

    def test_alphas_positive(self, tiny_image_split, mlp_factory, quick_config):
        result = EDDETrainer(mlp_factory, quick_config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert all(a > 0 for a in result.ensemble.alphas)

    def test_curve_recorded_per_round(self, tiny_image_split, mlp_factory,
                                      quick_config):
        result = EDDETrainer(mlp_factory, quick_config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert [p.num_models for p in result.curve] == [1, 2, 3]
        assert [p.cumulative_epochs for p in result.curve] == [3, 5, 7]

    def test_works_without_test_set(self, tiny_image_split, mlp_factory,
                                    quick_config):
        result = EDDETrainer(mlp_factory, quick_config).fit(
            tiny_image_split.train, rng=0)
        assert np.isnan(result.final_accuracy)
        assert result.curve == []

    def test_beats_single_weak_model(self, tiny_image_split, mlp_factory,
                                     quick_config):
        """The ensemble must beat its own first (least trained) member."""
        result = EDDETrainer(mlp_factory, quick_config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert result.final_accuracy >= result.members[0].test_accuracy - 0.02

    def test_reproducible(self, tiny_image_split, mlp_factory, quick_config):
        r1 = EDDETrainer(mlp_factory, quick_config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=42)
        r2 = EDDETrainer(mlp_factory, quick_config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=42)
        assert r1.final_accuracy == r2.final_accuracy
        np.testing.assert_allclose(r1.ensemble.alphas, r2.ensemble.alphas)

    def test_single_model_degenerate(self, tiny_image_split, mlp_factory):
        config = EDDEConfig(num_models=1, first_epochs=2, later_epochs=1,
                            lr=0.05, batch_size=32)
        result = EDDETrainer(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert len(result.ensemble) == 1

    def test_gamma_zero_is_normal_loss_variant(self, tiny_image_split,
                                               mlp_factory):
        config = EDDEConfig(num_models=2, gamma=0.0, beta=0.6,
                            first_epochs=2, later_epochs=2, lr=0.05,
                            batch_size=32)
        result = EDDETrainer(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert len(result.ensemble) == 2


class TestVariants:
    def test_correlate_previous_runs(self, tiny_image_split, mlp_factory):
        config = EDDEConfig(num_models=3, gamma=0.2, beta=0.6,
                            first_epochs=2, later_epochs=2, lr=0.05,
                            batch_size=32, correlate_target="previous")
        result = EDDETrainer(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert len(result.ensemble) == 3

    def test_cumulative_weights_runs(self, tiny_image_split, mlp_factory):
        config = EDDEConfig(num_models=3, gamma=0.1, beta=0.6,
                            first_epochs=2, later_epochs=2, lr=0.05,
                            batch_size=32, update_weights_from_initial=False)
        result = EDDETrainer(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert len(result.ensemble) == 3

    def test_adaptive_beta_search(self, tiny_image_split, mlp_factory):
        config = EDDEConfig(
            num_models=2, gamma=0.1, beta=None,
            first_epochs=2, later_epochs=2, lr=0.05, batch_size=32,
            beta_search={"n_folds": 4, "betas": (1.0, 0.5),
                         "tolerance": 0.5, "teacher_epochs": 1,
                         "probe_epochs": 1},
        )
        result = EDDETrainer(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert "beta" in result.metadata
        assert 0.0 <= result.metadata["beta"] <= 1.0


class TestAlphaFloor:
    def test_floor_applies_when_eq15_non_positive(self, tiny_image_split,
                                                  mlp_factory, monkeypatch):
        """When Eq. 15 goes non-positive (weak members at tiny budgets),
        every member must stay in the ensemble at exactly alpha_floor."""
        import repro.core.edde as edde_mod

        monkeypatch.setattr(edde_mod, "model_weight",
                            lambda *a, **k: -0.25)
        monkeypatch.setattr(edde_mod, "initial_model_weight",
                            lambda *a, **k: -0.25)
        config = EDDEConfig(num_models=3, gamma=0.1, beta=0.6,
                            first_epochs=1, later_epochs=1,
                            lr=0.05, batch_size=32, alpha_floor=0.07)
        result = EDDETrainer(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert result.ensemble.alphas == [0.07, 0.07, 0.07]
        assert [m.alpha for m in result.members] == [0.07, 0.07, 0.07]
        # The raw (pre-clamp) Eq. 15 value is preserved in the extras.
        assert all(m.extras["alpha"] == -0.25 for m in result.members)

    def test_floor_inert_when_alpha_positive(self, tiny_image_split,
                                             mlp_factory, monkeypatch):
        import repro.core.edde as edde_mod

        monkeypatch.setattr(edde_mod, "model_weight", lambda *a, **k: 1.3)
        monkeypatch.setattr(edde_mod, "initial_model_weight",
                            lambda *a, **k: 1.3)
        config = EDDEConfig(num_models=2, gamma=0.1, beta=0.6,
                            first_epochs=1, later_epochs=1,
                            lr=0.05, batch_size=32, alpha_floor=0.1)
        result = EDDETrainer(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert result.ensemble.alphas == [1.3, 1.3]


class TestWeightUpdateModes:
    def test_initial_vs_cumulative_diverge(self, tiny_image_split,
                                           mlp_factory):
        """Eq. 14 rescales from the uniform W₁ each round (the paper's
        design); the AdaBoost-style ablation compounds from W_{t-1}.  Both
        must complete, and they must actually train on different weight
        trajectories."""
        def run(from_initial):
            # One epoch per round keeps members imperfect on the training
            # set; with zero misclassifications Eq. 14 leaves the weights
            # uniform and the two modes would coincide trivially.
            config = EDDEConfig(num_models=3, gamma=0.1, beta=0.6,
                                first_epochs=1, later_epochs=1, lr=0.02,
                                batch_size=32,
                                update_weights_from_initial=from_initial)
            return EDDETrainer(mlp_factory, config).fit(
                tiny_image_split.train, tiny_image_split.test, rng=3)

        paper, ablation = run(True), run(False)
        assert len(paper.ensemble) == len(ablation.ensemble) == 3
        # Round 1 is identical (same seed, weights still uniform); the
        # weight refresh first bites in round 2, so later rounds differ.
        assert paper.members[0].alpha == ablation.members[0].alpha
        assert paper.members[0].extras["weight_max"] == \
            ablation.members[0].extras["weight_max"]
        paper_spread = [m.extras["weight_max"] for m in paper.members[1:]]
        ablation_spread = [m.extras["weight_max"] for m in ablation.members[1:]]
        assert paper_spread != ablation_spread


class TestDiversityEffect:
    def test_gamma_increases_diversity(self, tiny_image_split, mlp_factory):
        """Higher gamma must produce a more diverse ensemble (the paper's
        central mechanism), measured by Eq. 7 on the test set."""
        from repro.core import ensemble_diversity

        def diversity_at(gamma):
            config = EDDEConfig(num_models=3, gamma=gamma, beta=0.8,
                                first_epochs=3, later_epochs=3, lr=0.05,
                                batch_size=32)
            result = EDDETrainer(mlp_factory, config).fit(
                tiny_image_split.train, tiny_image_split.test, rng=1)
            probs = result.ensemble.member_probs(tiny_image_split.test.x)
            return ensemble_diversity(probs)

        assert diversity_at(2.0) > diversity_at(0.0)
