"""FitResult bookkeeping helpers."""

import numpy as np
import pytest

from repro.core.ensemble import Ensemble
from repro.core.results import CurvePoint, FitResult, MemberRecord


def make_result():
    result = FitResult(method="demo", ensemble=Ensemble())
    result.members = [
        MemberRecord(index=0, alpha=1.0, epochs=5, train_accuracy=0.9,
                     test_accuracy=0.6),
        MemberRecord(index=1, alpha=1.0, epochs=5, train_accuracy=0.95,
                     test_accuracy=0.8),
    ]
    result.curve = [CurvePoint(5, 0.6, 1), CurvePoint(10, 0.85, 2)]
    result.final_accuracy = 0.85
    result.total_epochs = 10
    return result


class TestFitResult:
    def test_average_member_accuracy(self):
        assert make_result().average_member_accuracy() == pytest.approx(0.7)

    def test_increased_accuracy(self):
        assert make_result().increased_accuracy() == pytest.approx(0.15)

    def test_empty_members_nan(self):
        result = FitResult(method="x", ensemble=Ensemble())
        assert np.isnan(result.average_member_accuracy())

    def test_curve_arrays(self):
        epochs, acc = make_result().curve_arrays()
        np.testing.assert_array_equal(epochs, [5, 10])
        np.testing.assert_array_equal(acc, [0.6, 0.85])

    def test_accuracy_at_budget(self):
        result = make_result()
        assert result.accuracy_at_budget(4) is None
        assert result.accuracy_at_budget(5) == 0.6
        assert result.accuracy_at_budget(100) == 0.85
