"""The shared training loop."""

import numpy as np
import pytest

from repro.core.trainer import (
    TrainingConfig,
    default_loss,
    evaluate_model,
    train_model,
)
from repro.models import MLP


class TestTrainingConfig:
    def test_schedule_construction(self):
        assert TrainingConfig(schedule="step").build_schedule() is not None
        assert TrainingConfig(schedule="cosine").build_schedule() is not None
        assert TrainingConfig(schedule="constant").build_schedule() is not None
        snapshot = TrainingConfig(schedule="snapshot", cycle_length=5)
        assert snapshot.build_schedule().lr_at(0) == pytest.approx(0.1)

    def test_snapshot_requires_cycle_length(self):
        with pytest.raises(ValueError):
            TrainingConfig(schedule="snapshot").build_schedule()

    def test_unknown_schedule(self):
        with pytest.raises(ValueError):
            TrainingConfig(schedule="warmup-cooldown").build_schedule()


class TestTrainModel:
    def test_learns_separable_data(self, toy_dataset):
        model = MLP(input_dim=2, num_classes=3, hidden=(16,), rng=0)
        config = TrainingConfig(epochs=30, lr=0.05, batch_size=16,
                                schedule="constant", weight_decay=0.0)
        train_model(model, toy_dataset, config, rng=0)
        assert evaluate_model(model, toy_dataset) > 0.95

    def test_logger_records_every_epoch(self, toy_dataset):
        model = MLP(input_dim=2, num_classes=3, hidden=(8,), rng=0)
        logger = train_model(model, toy_dataset,
                             TrainingConfig(epochs=4, lr=0.01), rng=0)
        assert len(logger.records) == 4
        assert all("loss" in r and "lr" in r for r in logger.records)

    def test_callback_invoked(self, toy_dataset):
        model = MLP(input_dim=2, num_classes=3, hidden=(8,), rng=0)
        epochs_seen = []
        train_model(model, toy_dataset, TrainingConfig(epochs=3, lr=0.01),
                    rng=0, on_epoch_end=lambda m, e: epochs_seen.append(e))
        assert epochs_seen == [0, 1, 2]

    def test_custom_loss_receives_dataset_indices(self, toy_dataset):
        from repro.nn import cross_entropy

        model = MLP(input_dim=2, num_classes=3, hidden=(8,), rng=0)
        seen = []

        def loss_fn(logits, labels, indices):
            seen.extend(indices.tolist())
            np.testing.assert_array_equal(labels, toy_dataset.y[indices])
            return cross_entropy(logits, labels)

        train_model(model, toy_dataset, TrainingConfig(epochs=1, lr=0.01),
                    loss_fn=loss_fn, rng=0)
        assert sorted(seen) == list(range(len(toy_dataset)))

    def test_model_left_in_eval_mode(self, toy_dataset):
        model = MLP(input_dim=2, num_classes=3, hidden=(8,), rng=0)
        train_model(model, toy_dataset, TrainingConfig(epochs=1, lr=0.01), rng=0)
        assert not model.training

    def test_reproducible_given_seed(self, toy_dataset):
        results = []
        for _ in range(2):
            model = MLP(input_dim=2, num_classes=3, hidden=(8,), rng=4)
            train_model(model, toy_dataset,
                        TrainingConfig(epochs=2, lr=0.05), rng=11)
            results.append(next(model.parameters()).data.copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_lr_schedule_applied(self, toy_dataset):
        model = MLP(input_dim=2, num_classes=3, hidden=(8,), rng=0)
        logger = train_model(model, toy_dataset,
                             TrainingConfig(epochs=4, lr=0.1, schedule="step"),
                             rng=0)
        rates = logger.column("lr")
        assert rates[0] == pytest.approx(0.1)
        assert rates[-1] == pytest.approx(0.001)


class TestDefaultLoss:
    def test_uniform_weights_match_plain(self, toy_dataset):
        from repro.nn import cross_entropy
        from repro.tensor import Tensor

        n = len(toy_dataset)
        weighted = default_loss(np.full(n, 1.0 / n), n)
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 3)))
        labels = toy_dataset.y[:5]
        indices = np.arange(5)
        plain = cross_entropy(logits, labels).item()
        assert weighted(logits, labels, indices).item() == pytest.approx(plain)
