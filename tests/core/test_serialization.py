"""Ensemble save/load round-trips, format versioning, and atomicity."""

import numpy as np
import pytest

from repro.core import Ensemble, load_ensemble, save_ensemble
from repro.core.serialization import ensemble_payload
from repro.models import MLP, ModelFactory

RNG = np.random.default_rng(13)


@pytest.fixture
def factory():
    return ModelFactory(MLP, input_dim=4, num_classes=3, hidden=(6,))


def make_ensemble(factory, count=3):
    ensemble = Ensemble()
    for seed in range(count):
        ensemble.add(factory.build(rng=seed), alpha=seed + 0.5)
    return ensemble


class TestRoundTrip:
    def test_predictions_identical(self, factory, tmp_path):
        ensemble = make_ensemble(factory)
        path = tmp_path / "ensemble.npz"
        save_ensemble(ensemble, path)
        restored = load_ensemble(path, factory)
        x = RNG.normal(size=(10, 4))
        np.testing.assert_allclose(ensemble.predict_probs(x),
                                   restored.predict_probs(x), atol=1e-12)

    def test_alphas_preserved(self, factory, tmp_path):
        ensemble = make_ensemble(factory)
        path = tmp_path / "e.npz"
        save_ensemble(ensemble, path)
        restored = load_ensemble(path, factory)
        np.testing.assert_allclose(restored.alphas, ensemble.alphas)

    def test_member_count(self, factory, tmp_path):
        ensemble = make_ensemble(factory, count=5)
        path = tmp_path / "e.npz"
        save_ensemble(ensemble, path)
        assert len(load_ensemble(path, factory)) == 5

    def test_empty_ensemble_rejected(self, factory, tmp_path):
        with pytest.raises(ValueError):
            save_ensemble(Ensemble(), tmp_path / "e.npz")

    def test_wrong_architecture_rejected(self, factory, tmp_path):
        ensemble = make_ensemble(factory)
        path = tmp_path / "e.npz"
        save_ensemble(ensemble, path)
        wrong = ModelFactory(MLP, input_dim=4, num_classes=3, hidden=(9,))
        with pytest.raises(ValueError):
            load_ensemble(path, wrong)

    def test_path_without_npz_suffix(self, factory, tmp_path):
        # np.savez appends ``.npz``; both save and load must agree on the
        # real filename so the atomic rename lands where load looks.
        ensemble = make_ensemble(factory)
        save_ensemble(ensemble, tmp_path / "ensemble")
        assert (tmp_path / "ensemble.npz").is_file()
        assert len(load_ensemble(tmp_path / "ensemble", factory)) == 3

    def test_batchnorm_buffers_survive(self, tmp_path):
        from repro.models import ResNetCIFAR

        factory = ModelFactory(ResNetCIFAR, depth=8, num_classes=3,
                               base_width=4)
        model = factory.build(rng=0)
        model.train()
        model(RNG.normal(size=(8, 3, 8, 8)))  # move running stats
        ensemble = Ensemble()
        ensemble.add(model, 1.0)
        path = tmp_path / "e.npz"
        save_ensemble(ensemble, path)
        restored = load_ensemble(path, factory)
        x = RNG.normal(size=(4, 3, 8, 8))
        np.testing.assert_allclose(ensemble.predict_probs(x),
                                   restored.predict_probs(x), atol=1e-12)


class TestFormatVersioning:
    def test_archive_carries_version_and_tag(self, factory, tmp_path):
        save_ensemble(make_ensemble(factory), tmp_path / "e.npz")
        with np.load(tmp_path / "e.npz") as archive:
            assert int(archive["__format_version__"]) == 2
            assert str(archive["__arch_tag__"].item()) == "MLP"

    def test_unsupported_version_rejected(self, factory, tmp_path):
        payload = ensemble_payload(make_ensemble(factory))
        payload["__format_version__"] = np.array(99)
        np.savez(tmp_path / "e.npz", **payload)
        with pytest.raises(ValueError, match="unsupported ensemble format"):
            load_ensemble(tmp_path / "e.npz", factory)

    def test_architecture_tag_mismatch_rejected(self, factory, tmp_path):
        payload = ensemble_payload(make_ensemble(factory))
        payload["__arch_tag__"] = np.array("ResNetCIFAR")
        np.savez(tmp_path / "e.npz", **payload)
        with pytest.raises(ValueError, match="architecture mismatch"):
            load_ensemble(tmp_path / "e.npz", factory)

    def test_v1_archive_loads_with_warning(self, factory, tmp_path):
        # A v1 archive has no __arch_tag__: it must still load (backward
        # compatibility), but with an explicit warning that architecture
        # validation was skipped.
        ensemble = make_ensemble(factory)
        payload = ensemble_payload(ensemble)
        del payload["__arch_tag__"]
        payload["__format_version__"] = np.array(1)
        np.savez(tmp_path / "v1.npz", **payload)
        with pytest.warns(UserWarning, match="predates architecture tags"):
            restored = load_ensemble(tmp_path / "v1.npz", factory)
        x = RNG.normal(size=(6, 4))
        np.testing.assert_allclose(ensemble.predict_probs(x),
                                   restored.predict_probs(x), atol=1e-12)

    def test_v2_archive_without_tag_rejected(self, factory, tmp_path):
        payload = ensemble_payload(make_ensemble(factory))
        del payload["__arch_tag__"]
        np.savez(tmp_path / "e.npz", **payload)
        with pytest.raises(ValueError, match="missing the architecture tag"):
            load_ensemble(tmp_path / "e.npz", factory)


class TestErrorTaxonomy:
    def test_checkpoint_error_importable_from_both_homes(self):
        # CheckpointError moved to serialization; the historical import
        # path through checkpointing must keep working.
        from repro.core.checkpointing import CheckpointError as via_ckpt
        from repro.core.serialization import CheckpointError as via_ser

        assert via_ckpt is via_ser

    def test_missing_alphas_is_clean_checkpoint_error(self, factory,
                                                      tmp_path):
        from repro.core import CheckpointError

        payload = ensemble_payload(make_ensemble(factory))
        del payload["__alphas__"]
        np.savez(tmp_path / "e.npz", **payload)
        with pytest.raises(CheckpointError, match="'__alphas__'"):
            load_ensemble(tmp_path / "e.npz", factory)

    def test_alpha_length_mismatch_is_clean_checkpoint_error(self, factory,
                                                             tmp_path):
        # Historically this surfaced as a raw IndexError from
        # ``alphas[index]``; it must name the mismatched keys instead.
        from repro.core import CheckpointError

        payload = ensemble_payload(make_ensemble(factory))
        payload["__alphas__"] = payload["__alphas__"][:2]
        np.savez(tmp_path / "e.npz", **payload)
        with pytest.raises(CheckpointError,
                           match="__num_models__.*__alphas__"):
            load_ensemble(tmp_path / "e.npz", factory)


class TestAtomicity:
    def test_tmp_file_fsynced_before_replace(self, factory, tmp_path,
                                             monkeypatch):
        # Durability ordering: without an fsync of the temp file *before*
        # os.replace, a crash can atomically rename a torn archive into
        # place — the exact failure strict=False loading then eats.
        import os

        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(os, "fsync",
                            lambda fd: events.append("fsync") or
                            real_fsync(fd))
        monkeypatch.setattr(os, "replace",
                            lambda src, dst: events.append("replace") or
                            real_replace(src, dst))
        save_ensemble(make_ensemble(factory), tmp_path / "e.npz")
        assert "fsync" in events and "replace" in events
        assert events.index("fsync") < events.index("replace")

    def test_directory_fsync_failure_is_tolerated(self, factory, tmp_path,
                                                  monkeypatch):
        # Directory fsync is best-effort: a filesystem that refuses to
        # open directories costs durability, never the save itself.
        import os

        monkeypatch.setattr(
            os, "open",
            lambda *a, **k: (_ for _ in ()).throw(OSError("no dir fds")))
        path = tmp_path / "e.npz"
        save_ensemble(make_ensemble(factory), path)
        assert len(load_ensemble(path, factory)) == 3

    def test_no_temporary_files_after_save(self, factory, tmp_path):
        save_ensemble(make_ensemble(factory), tmp_path / "e.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["e.npz"]

    def test_failed_save_preserves_previous_archive(self, factory, tmp_path,
                                                    monkeypatch):
        # A crash mid-write must neither clobber the existing archive nor
        # leave a temporary file behind.
        path = tmp_path / "e.npz"
        save_ensemble(make_ensemble(factory), path)
        before = path.read_bytes()

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", explode)
        with pytest.raises(OSError, match="disk full"):
            save_ensemble(make_ensemble(factory, count=2), path)
        assert path.read_bytes() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == ["e.npz"]
