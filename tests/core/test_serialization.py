"""Ensemble save/load round-trips."""

import numpy as np
import pytest

from repro.core import Ensemble, load_ensemble, save_ensemble
from repro.models import MLP, ModelFactory

RNG = np.random.default_rng(13)


@pytest.fixture
def factory():
    return ModelFactory(MLP, input_dim=4, num_classes=3, hidden=(6,))


def make_ensemble(factory, count=3):
    ensemble = Ensemble()
    for seed in range(count):
        ensemble.add(factory.build(rng=seed), alpha=seed + 0.5)
    return ensemble


class TestRoundTrip:
    def test_predictions_identical(self, factory, tmp_path):
        ensemble = make_ensemble(factory)
        path = tmp_path / "ensemble.npz"
        save_ensemble(ensemble, path)
        restored = load_ensemble(path, factory)
        x = RNG.normal(size=(10, 4))
        np.testing.assert_allclose(ensemble.predict_probs(x),
                                   restored.predict_probs(x), atol=1e-12)

    def test_alphas_preserved(self, factory, tmp_path):
        ensemble = make_ensemble(factory)
        path = tmp_path / "e.npz"
        save_ensemble(ensemble, path)
        restored = load_ensemble(path, factory)
        np.testing.assert_allclose(restored.alphas, ensemble.alphas)

    def test_member_count(self, factory, tmp_path):
        ensemble = make_ensemble(factory, count=5)
        path = tmp_path / "e.npz"
        save_ensemble(ensemble, path)
        assert len(load_ensemble(path, factory)) == 5

    def test_empty_ensemble_rejected(self, factory, tmp_path):
        with pytest.raises(ValueError):
            save_ensemble(Ensemble(), tmp_path / "e.npz")

    def test_wrong_architecture_rejected(self, factory, tmp_path):
        ensemble = make_ensemble(factory)
        path = tmp_path / "e.npz"
        save_ensemble(ensemble, path)
        wrong = ModelFactory(MLP, input_dim=4, num_classes=3, hidden=(9,))
        with pytest.raises(ValueError):
            load_ensemble(path, wrong)

    def test_batchnorm_buffers_survive(self, tmp_path):
        from repro.models import ResNetCIFAR

        factory = ModelFactory(ResNetCIFAR, depth=8, num_classes=3,
                               base_width=4)
        model = factory.build(rng=0)
        model.train()
        model(RNG.normal(size=(8, 3, 8, 8)))  # move running stats
        ensemble = Ensemble()
        ensemble.add(model, 1.0)
        path = tmp_path / "e.npz"
        save_ensemble(ensemble, path)
        restored = load_ensemble(path, factory)
        x = RNG.normal(size=(4, 3, 8, 8))
        np.testing.assert_allclose(ensemble.predict_probs(x),
                                   restored.predict_probs(x), atol=1e-12)
