"""Knowledge transfer: β-prefix copying and the adaptive β search."""

import numpy as np
import pytest

from repro.core.transfer import (
    leaf_modules,
    select_beta,
    transfer_fraction_possible,
    transfer_parameters,
)
from repro.models import MLP, ModelFactory, ResNetCIFAR


def make_pair(seed_a=0, seed_b=1):
    teacher = MLP(input_dim=6, num_classes=3, hidden=(8, 8), rng=seed_a)
    student = MLP(input_dim=6, num_classes=3, hidden=(8, 8), rng=seed_b)
    return teacher, student


class TestTransferParameters:
    def test_beta_one_copies_everything(self):
        teacher, student = make_pair()
        transferred = transfer_parameters(teacher, student, 1.0, rng=0)
        assert transferred == teacher.num_parameters()
        for (_, p1), (_, p2) in zip(teacher.named_parameters(),
                                    student.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_beta_zero_copies_nothing(self):
        teacher, student = make_pair()
        before = {n: p.data.copy() for n, p in teacher.named_parameters()}
        transferred = transfer_parameters(teacher, student, 0.0, rng=99)
        assert transferred == 0
        first_name = next(iter(before))
        student_params = dict(student.named_parameters())
        assert not np.allclose(before[first_name],
                               student_params[first_name].data)

    def test_prefix_exactly_transferred(self):
        teacher, student = make_pair()
        fractions = transfer_fraction_possible(teacher)
        # pick beta exactly at the first module boundary
        beta = fractions[0] + 1e-6
        transfer_parameters(teacher, student, beta, rng=0)
        teacher_leaves = leaf_modules(teacher)
        student_leaves = leaf_modules(student)
        # first leaf equal, last leaf different
        np.testing.assert_array_equal(
            next(iter(teacher_leaves[0]._parameters.values())).data,
            next(iter(student_leaves[0]._parameters.values())).data)
        assert not np.allclose(
            next(iter(teacher_leaves[-1]._parameters.values())).data,
            next(iter(student_leaves[-1]._parameters.values())).data)

    def test_upper_layers_reinitialised_from_rng(self):
        teacher, _ = make_pair()
        student_a = MLP(input_dim=6, num_classes=3, hidden=(8, 8), rng=5)
        student_b = MLP(input_dim=6, num_classes=3, hidden=(8, 8), rng=5)
        transfer_parameters(teacher, student_a, 0.5, rng=7)
        transfer_parameters(teacher, student_b, 0.5, rng=7)
        for (_, p1), (_, p2) in zip(student_a.named_parameters(),
                                    student_b.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_invalid_beta(self):
        teacher, student = make_pair()
        with pytest.raises(ValueError):
            transfer_parameters(teacher, student, 1.5)

    def test_architecture_mismatch(self):
        teacher = MLP(input_dim=6, num_classes=3, hidden=(8,), rng=0)
        student = MLP(input_dim=6, num_classes=3, hidden=(8, 8), rng=0)
        with pytest.raises(ValueError):
            transfer_parameters(teacher, student, 0.5)

    def test_batchnorm_buffers_travel_with_module(self):
        teacher = ResNetCIFAR(depth=8, num_classes=3, base_width=4, rng=0)
        from repro.tensor import Tensor
        teacher.train()
        teacher(np.random.default_rng(0).normal(size=(8, 3, 8, 8)))
        student = ResNetCIFAR(depth=8, num_classes=3, base_width=4, rng=1)
        transfer_parameters(teacher, student, 1.0, rng=0)
        teacher_bn = [m for m in teacher.modules() if hasattr(m, "_buffers")][0]
        student_bn = [m for m in student.modules() if hasattr(m, "_buffers")][0]
        np.testing.assert_array_equal(teacher_bn._buffers["running_mean"],
                                      student_bn._buffers["running_mean"])

    def test_monotone_in_beta(self):
        teacher, _ = make_pair()
        counts = []
        for beta in (0.0, 0.3, 0.6, 1.0):
            _, student = make_pair()
            counts.append(transfer_parameters(teacher, student, beta, rng=0))
        assert counts == sorted(counts)


class TestTransferFractions:
    def test_cumulative_ends_at_one(self):
        model = MLP(input_dim=4, num_classes=2, hidden=(5, 5), rng=0)
        fractions = transfer_fraction_possible(model)
        assert fractions[-1] == pytest.approx(1.0)
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))


class TestSelectBeta:
    def test_runs_and_returns_valid_beta(self, tiny_image_split, mlp_factory):
        selection = select_beta(
            mlp_factory, tiny_image_split.train, n_folds=4,
            betas=(1.0, 0.5), tolerance=0.5,  # generous: picks quickly
            teacher_epochs=1, probe_epochs=1, lr=0.05, batch_size=32, rng=0)
        assert 0.0 <= selection.beta <= 1.0
        assert len(selection.probes) >= 1
        probe = selection.probes[0]
        assert 0.0 <= probe.accuracy_seen_fold <= 1.0
        assert 0.0 <= probe.accuracy_unseen_fold <= 1.0

    def test_gap_definition(self):
        from repro.core.transfer import BetaProbeResult
        probe = BetaProbeResult(beta=0.5, accuracy_seen_fold=0.8,
                                accuracy_unseen_fold=0.7)
        assert probe.gap == pytest.approx(0.1)
