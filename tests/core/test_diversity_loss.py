"""Diversity-driven loss: Eq. 10 semantics and the Eq. 11 gradient."""

import numpy as np
import pytest

from repro.core.losses import diversity_driven_loss, diversity_loss_grad_reference
from repro.nn import cross_entropy
from repro.tensor import Tensor, gradcheck
from repro.tensor.ops import softmax

RNG = np.random.default_rng(8)


def setup_batch(batch=4, k=5, seed=0):
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(batch, k)), requires_grad=True)
    labels = rng.integers(0, k, size=batch)
    ensemble = rng.dirichlet(np.ones(k), size=batch)
    return logits, labels, ensemble


class TestLossValue:
    def test_gamma_zero_equals_cross_entropy(self):
        logits, labels, ensemble = setup_batch()
        with_div = diversity_driven_loss(logits, labels, ensemble, gamma=0.0).item()
        plain = cross_entropy(logits, labels).item()
        assert with_div == pytest.approx(plain, rel=1e-9)

    def test_no_ensemble_equals_cross_entropy(self):
        logits, labels, _ = setup_batch()
        loss = diversity_driven_loss(logits, labels, None, gamma=0.5).item()
        assert loss == pytest.approx(cross_entropy(logits, labels).item(), rel=1e-9)

    def test_penalty_reduces_loss(self):
        logits, labels, ensemble = setup_batch()
        base = diversity_driven_loss(logits, labels, ensemble, gamma=0.0).item()
        with_penalty = diversity_driven_loss(logits, labels, ensemble, gamma=0.5).item()
        assert with_penalty < base  # the diversity term is subtracted

    def test_matches_manual_computation(self):
        logits, labels, ensemble = setup_batch(batch=3, k=4, seed=3)
        gamma = 0.2
        probs = softmax(logits, axis=1).numpy()
        ce = -np.log(probs[np.arange(3), labels] + 1e-12)
        penalty = np.sqrt(((probs - ensemble) ** 2).sum(axis=1) + 1e-12)
        expected = (ce - gamma * penalty).mean()
        actual = diversity_driven_loss(logits, labels, ensemble, gamma).item()
        assert actual == pytest.approx(expected, rel=1e-6)

    def test_sample_weights_scale(self):
        logits, labels, ensemble = setup_batch(batch=2)
        weights = np.array([2.0, 0.0])
        weighted = diversity_driven_loss(logits, labels, ensemble, 0.1,
                                         sample_weights=weights).item()
        only_first = diversity_driven_loss(
            Tensor(logits.data[:1]), labels[:1], ensemble[:1], 0.1).item()
        assert weighted == pytest.approx(only_first, rel=1e-6)

    def test_shape_validation(self):
        logits, labels, ensemble = setup_batch()
        with pytest.raises(ValueError):
            diversity_driven_loss(logits, labels, ensemble[:2], 0.1)
        with pytest.raises(ValueError):
            diversity_driven_loss(logits, labels, ensemble, 0.1,
                                  sample_weights=np.ones(99))


class TestGradient:
    def test_gradcheck_full_loss(self):
        logits, labels, ensemble = setup_batch(seed=5)
        weights = np.random.default_rng(5).random(4) + 0.5
        assert gradcheck(
            lambda l: diversity_driven_loss(l, labels, ensemble, 0.3,
                                            sample_weights=weights),
            [logits])

    def test_eq11_reference_matches_autograd(self):
        """The paper's closed-form Eq. 11 must equal the autograd gradient
        of Eq. 10 taken w.r.t. the softmax output."""
        rng = np.random.default_rng(12)
        batch, k = 5, 4
        probs_data = rng.dirichlet(np.ones(k), size=batch)
        labels = rng.integers(0, k, size=batch)
        ensemble = rng.dirichlet(np.ones(k), size=batch)
        weights = rng.random(batch) + 0.5
        gamma = 0.25

        # Autograd path: treat the probabilities themselves as the leaf.
        probs = Tensor(probs_data, requires_grad=True)
        picked = probs[np.arange(batch), labels] + 1e-12
        from repro.tensor.ops import l2norm
        penalty = l2norm(probs - Tensor(ensemble), axis=1)
        loss = ((-picked.log() - penalty * gamma)
                * Tensor(weights)).sum() * (1.0 / batch)
        loss.backward()

        reference = diversity_loss_grad_reference(probs_data, labels, ensemble,
                                                  gamma, sample_weights=weights)
        np.testing.assert_allclose(probs.grad, reference, atol=1e-8)

    def test_gradient_pushes_away_from_ensemble(self):
        """On non-label coordinates the gradient must push the model output
        away from the ensemble's soft target (negative correlation)."""
        probs = np.array([[0.5, 0.3, 0.2]])
        labels = np.array([0])
        ensemble = np.array([[0.5, 0.5, 0.0]])
        grad = diversity_loss_grad_reference(probs, labels, ensemble, gamma=1.0)
        # Coordinate 1: model (0.3) below ensemble (0.5) -> difference < 0 ->
        # gradient positive -> gradient *descent* lowers it further away.
        assert grad[0, 1] > 0
        # Coordinate 2: model above ensemble -> descent pushes it up, away.
        assert grad[0, 2] < 0
