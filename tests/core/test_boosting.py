"""Boosting framework: Eq. 12-15 semantics and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boosting import (
    bias_per_sample,
    initial_model_weight,
    model_weight,
    similarity_per_sample,
    update_sample_weights,
)

RNG = np.random.default_rng(6)


def dirichlet(n, k, seed=0):
    return np.random.default_rng(seed).dirichlet(np.ones(k), size=n)


class TestSimilarity:
    def test_identical_is_one(self):
        probs = dirichlet(5, 3)
        np.testing.assert_allclose(similarity_per_sample(probs, probs), 1.0)

    def test_opposite_onehot_is_zero(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        assert similarity_per_sample(a, b)[0] == pytest.approx(0.0)

    def test_range(self):
        sims = similarity_per_sample(dirichlet(20, 4, 1), dirichlet(20, 4, 2))
        assert np.all(sims >= 0.0) and np.all(sims <= 1.0)


class TestBias:
    def test_perfect_prediction_zero(self):
        probs = np.array([[1.0, 0.0, 0.0]])
        assert bias_per_sample(probs, np.array([0]), 3)[0] == pytest.approx(0.0)

    def test_confident_wrong_is_one(self):
        probs = np.array([[1.0, 0.0]])
        assert bias_per_sample(probs, np.array([1]), 2)[0] == pytest.approx(1.0)

    def test_range(self):
        probs = dirichlet(30, 5, 3)
        labels = RNG.integers(0, 5, 30)
        bias = bias_per_sample(probs, labels, 5)
        assert np.all(bias >= 0.0) and np.all(bias <= 1.0)


class TestWeightUpdate:
    def test_normalised(self):
        n = 10
        initial = np.full(n, 1.0 / n)
        sim = RNG.random(n)
        bias = RNG.random(n)
        mis = RNG.random(n) > 0.5
        weights = update_sample_weights(initial, sim, bias, mis)
        assert weights.sum() == pytest.approx(1.0)

    def test_misclassified_gain_weight(self):
        n = 4
        initial = np.full(n, 0.25)
        sim = np.full(n, 0.5)
        bias = np.full(n, 0.5)
        mis = np.array([True, False, False, False])
        weights = update_sample_weights(initial, sim, bias, mis)
        assert weights[0] > weights[1]
        assert weights[1] == weights[2] == weights[3]

    def test_correct_samples_unboosted(self):
        n = 5
        initial = np.full(n, 0.2)
        weights = update_sample_weights(initial, np.ones(n), np.ones(n),
                                        np.zeros(n, dtype=bool))
        np.testing.assert_allclose(weights, initial)

    def test_higher_similarity_boosts_more(self):
        """Paper Sec. IV-E: if h_t agrees with H_{t-1} on a misclassified
        sample, that sample needs more attention."""
        initial = np.full(3, 1 / 3)
        sim = np.array([0.9, 0.1, 0.5])
        bias = np.full(3, 0.5)
        mis = np.array([True, True, False])
        weights = update_sample_weights(initial, sim, bias, mis)
        assert weights[0] > weights[1] > weights[2]

    def test_restarts_from_initial_not_compound(self):
        """Eq. 14 rescales from W1; feeding the same inputs twice must give
        the same result (no compounding)."""
        initial = np.full(4, 0.25)
        sim, bias = np.full(4, 0.5), np.full(4, 0.5)
        mis = np.array([True, False, True, False])
        once = update_sample_weights(initial, sim, bias, mis)
        twice = update_sample_weights(initial, sim, bias, mis)
        np.testing.assert_allclose(once, twice)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 30))
    def test_property_valid_distribution(self, seed, n):
        rng = np.random.default_rng(seed)
        weights = update_sample_weights(
            np.full(n, 1.0 / n), rng.random(n), rng.random(n),
            rng.random(n) > 0.5)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights > 0)


class TestModelWeight:
    def test_better_model_higher_alpha(self):
        n = 100
        weights = np.full(n, 1.0 / n)
        sim = np.full(n, 0.8)
        good = np.zeros(n, dtype=bool); good[:90] = True
        weak = np.zeros(n, dtype=bool); weak[:60] = True
        assert model_weight(sim, weights, good) > model_weight(sim, weights, weak)

    def test_all_correct_finite(self):
        n = 50
        alpha = model_weight(np.ones(n), np.full(n, 1 / n),
                             np.ones(n, dtype=bool))
        assert np.isfinite(alpha)
        assert alpha <= 10.0

    def test_laplace_smoothing_bounds(self):
        n = 100
        alpha = model_weight(np.ones(n), np.full(n, 1 / n),
                             np.ones(n, dtype=bool))
        assert alpha <= 0.5 * np.log(n + 1) + 0.1

    def test_chance_model_near_zero(self):
        n = 1000
        correct = np.zeros(n, dtype=bool)
        correct[:500] = True
        alpha = model_weight(np.ones(n), np.full(n, 1 / n), correct)
        assert abs(alpha) < 0.01


class TestInitialModelWeight:
    def test_commensurate_with_later_rounds(self):
        """alpha_1 must be computed under the same exp-boosted weighting as
        Eq. 15, so a mediocre first model cannot dominate the ensemble."""
        n = 100
        weights = np.full(n, 1.0 / n)
        correct = np.zeros(n, dtype=bool)
        correct[:75] = True  # 75% training accuracy
        bias = np.where(correct, 0.2, 0.9)
        alpha1 = initial_model_weight(correct, weights, bias)
        # Under exp-boosting, wrong mass = 0.25 * e^{1.9} ~ 1.67 > 0.75.
        assert alpha1 < 0.1

    def test_strong_first_model_positive(self):
        n = 100
        weights = np.full(n, 1.0 / n)
        correct = np.ones(n, dtype=bool)
        correct[:2] = False
        bias = np.where(correct, 0.1, 0.9)
        assert initial_model_weight(correct, weights, bias) > 0.5
