"""The unified engine: prediction cache, callback pipeline, O(T) evals."""

import numpy as np
import pytest

from repro.core import (
    Callback,
    EDDEConfig,
    EDDETrainer,
    Ensemble,
    EnsembleEngine,
    PredictionCache,
    RoundOutcome,
)
from repro.core.trainer import TrainingConfig


class _CountingProbs:
    """Wraps ``predict_probs`` and counts calls per (model id, input id)."""

    def __init__(self, real):
        self.real = real
        self.calls = []

    def __call__(self, model, x, batch_size=256):
        self.calls.append((id(model), id(x)))
        return self.real(model, x, batch_size=batch_size)


class TestPredictionCache:
    def _models(self, mlp_factory, n=3):
        return [mlp_factory.build(rng=i) for i in range(n)]

    def test_matches_ensemble_predict_probs(self, tiny_image_split, mlp_factory):
        """The cached aggregate must be bit-identical to Eq. 16 evaluated
        directly — this is what keeps fixed-seed results unchanged."""
        test = tiny_image_split.test
        cache = PredictionCache()
        cache.add_split("test", test.x, test.y)
        ensemble = Ensemble()
        for model, alpha in zip(self._models(mlp_factory), (0.5, 1.5, 1.0)):
            cache.add_member(model, alpha)
            ensemble.add(model, alpha)
            np.testing.assert_array_equal(cache.ensemble_probs("test"),
                                          ensemble.predict_probs(test.x))
            assert cache.ensemble_accuracy("test") == \
                ensemble.evaluate(test.x, test.y)

    def test_one_evaluation_per_member(self, tiny_image_split, mlp_factory,
                                       monkeypatch):
        import repro.core.engine as engine_mod

        counter = _CountingProbs(engine_mod.predict_probs)
        monkeypatch.setattr(engine_mod, "predict_probs", counter)
        test = tiny_image_split.test
        cache = PredictionCache()
        cache.add_split("test", test.x, test.y)
        models = self._models(mlp_factory)
        for model in models:
            cache.add_member(model, 1.0)
            cache.ensemble_probs("test")
            cache.ensemble_accuracy("test")
            cache.member_accuracy("test")
        assert len(counter.calls) == len(models)
        assert len(set(counter.calls)) == len(models)

    def test_precomputed_outputs_not_recomputed(self, tiny_image_split,
                                                mlp_factory, monkeypatch):
        import repro.core.engine as engine_mod

        counter = _CountingProbs(engine_mod.predict_probs)
        monkeypatch.setattr(engine_mod, "predict_probs", counter)
        train = tiny_image_split.train
        cache = PredictionCache()
        cache.add_split("train", train.x, train.y)
        model = mlp_factory.build(rng=0)
        probs = engine_mod.predict_probs(model, train.x)
        counter.calls.clear()
        cache.add_member(model, 1.0, precomputed={"train": probs})
        assert counter.calls == []
        assert cache.member_probs("train") is probs

    def test_missing_split_is_nan(self, tiny_image_split, mlp_factory):
        cache = PredictionCache()
        cache.add_split("train", tiny_image_split.train.x,
                        tiny_image_split.train.y)
        cache.add_member(mlp_factory.build(rng=0), 1.0)
        assert np.isnan(cache.ensemble_accuracy("test"))
        assert np.isnan(cache.member_accuracy("test"))

    def test_empty_cache(self, tiny_image_split):
        cache = PredictionCache()
        cache.add_split("test", tiny_image_split.test.x,
                        tiny_image_split.test.y)
        assert np.isnan(cache.ensemble_accuracy("test"))
        with pytest.raises(RuntimeError):
            cache.ensemble_probs("test")

    def test_no_split_registration_after_members(self, tiny_image_split,
                                                 mlp_factory):
        cache = PredictionCache()
        cache.add_split("train", tiny_image_split.train.x,
                        tiny_image_split.train.y)
        cache.add_member(mlp_factory.build(rng=0), 1.0)
        with pytest.raises(RuntimeError):
            cache.add_split("test", tiny_image_split.test.x,
                            tiny_image_split.test.y)


class TestEDDEEvaluationCount:
    def test_one_train_set_eval_per_round(self, tiny_image_split, mlp_factory,
                                          monkeypatch):
        """Acceptance: round t evaluates only the new member on the training
        set — never the prior members (the old loop was O(T²) here)."""
        import repro.core.edde as edde_mod
        import repro.core.engine as engine_mod

        train_x = tiny_image_split.train.x
        counters = []
        for mod in (edde_mod, engine_mod):
            counter = _CountingProbs(mod.predict_probs)
            monkeypatch.setattr(mod, "predict_probs", counter)
            counters.append(counter)

        config = EDDEConfig(num_models=4, gamma=0.1, beta=0.6,
                            first_epochs=1, later_epochs=1,
                            lr=0.05, batch_size=32)
        EDDETrainer(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)

        train_calls = [call for counter in counters for call in counter.calls
                       if call[1] == id(train_x)]
        # Exactly one full-train-set evaluation per round, each for a
        # distinct (new) model.
        assert len(train_calls) == config.num_models
        assert len({model_id for model_id, _ in train_calls}) == config.num_models


class TestEngineLoop:
    def _round_fn(self, factory, train_set, config):
        def round_fn(engine, index):
            model = factory.build(rng=index)
            logger = engine.train_member(model, train_set, config, rng=index)
            return RoundOutcome(model=model, alpha=1.0, epochs=config.epochs,
                                train_accuracy=logger.last("train_accuracy"))
        return round_fn

    def test_round_timing_in_metadata(self, tiny_image_split, mlp_factory):
        config = TrainingConfig(epochs=1, lr=0.05, batch_size=32)
        engine = EnsembleEngine("test", tiny_image_split.train,
                                tiny_image_split.test)
        result = engine.run(3, self._round_fn(mlp_factory,
                                              tiny_image_split.train, config))
        seconds = result.metadata["round_seconds"]
        assert len(seconds) == 3
        assert all(s >= 0.0 for s in seconds)

    def test_counts_epochs_and_curve(self, tiny_image_split, mlp_factory):
        config = TrainingConfig(epochs=2, lr=0.05, batch_size=32)
        engine = EnsembleEngine("test", tiny_image_split.train,
                                tiny_image_split.test)
        result = engine.run(3, self._round_fn(mlp_factory,
                                              tiny_image_split.train, config))
        assert result.total_epochs == 6
        assert [p.cumulative_epochs for p in result.curve] == [2, 4, 6]
        assert [p.num_models for p in result.curve] == [1, 2, 3]
        assert len(result.members) == 3
        assert result.final_accuracy == result.curve[-1].ensemble_accuracy

    def test_no_test_set(self, tiny_image_split, mlp_factory):
        config = TrainingConfig(epochs=1, lr=0.05, batch_size=32)
        engine = EnsembleEngine("test", tiny_image_split.train)
        result = engine.run(2, self._round_fn(mlp_factory,
                                              tiny_image_split.train, config))
        assert result.curve == []
        assert np.isnan(result.final_accuracy)
        assert all(np.isnan(m.test_accuracy) for m in result.members)

    def test_custom_callback_sees_all_events(self, tiny_image_split,
                                             mlp_factory):
        events = []

        class Recorder(Callback):
            def on_fit_start(self, engine):
                events.append("fit_start")

            def on_round_start(self, engine, round_index):
                events.append(f"round_start:{round_index}")

            def on_epoch_end(self, engine, model, epoch, logger):
                events.append(f"epoch_end:{epoch}")

            def on_batch_end(self, engine, model, batch_index, loss):
                events.append("batch_end")

            def on_round_end(self, engine, outcome):
                events.append(f"round_end:{outcome.index}")

            def on_fit_end(self, engine):
                events.append("fit_end")

        config = TrainingConfig(epochs=1, lr=0.05, batch_size=128)
        engine = EnsembleEngine("test", tiny_image_split.train,
                                tiny_image_split.test, callbacks=[Recorder()])
        engine.run(2, self._round_fn(mlp_factory, tiny_image_split.train,
                                     config))
        assert events[0] == "fit_start"
        assert events[-1] == "fit_end"
        assert events.count("round_start:0") == events.count("round_end:0") == 1
        assert events.count("round_start:1") == events.count("round_end:1") == 1
        # 160 train samples / batch 128 -> 2 optimiser steps per epoch.
        assert events.count("batch_end") == 4
        assert events.count("epoch_end:0") == 2

    def test_callbacks_via_trainer_fit(self, tiny_image_split, mlp_factory):
        rounds = []

        class RoundCounter(Callback):
            def on_round_end(self, engine, outcome):
                rounds.append(outcome.index)

        config = EDDEConfig(num_models=2, gamma=0.1, beta=0.6,
                            first_epochs=1, later_epochs=1,
                            lr=0.05, batch_size=32)
        result = EDDETrainer(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0,
            callbacks=[RoundCounter()])
        assert rounds == [0, 1]
        assert len(result.metadata["round_seconds"]) == 2
