"""CheckpointManager unit tests: layout, retention, atomicity, errors."""

import json

import numpy as np
import pytest

from repro.baselines import Bagging, BaselineConfig
from repro.core import CheckpointError, CheckpointManager, FaultTolerance


@pytest.fixture
def fitted_directory(tmp_path, tiny_image_split, mlp_factory):
    """A checkpoint directory left behind by a completed 3-round fit."""
    directory = tmp_path / "checkpoints"
    config = BaselineConfig(num_models=3, epochs_per_model=1, lr=0.05,
                            batch_size=32, weight_decay=0.0)
    result = Bagging(mlp_factory, config).fit(
        tiny_image_split.train, tiny_image_split.test, rng=0,
        fault_tolerance=FaultTolerance(
            checkpoint=CheckpointManager(directory)))
    return directory, result


class TestLayout:
    def test_manifest_and_round_files(self, fitted_directory):
        directory, _ = fitted_directory
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["method"] == "Bagging"
        assert manifest["keep_last"] == 3
        assert [e["round"] for e in manifest["rounds"]] == [1, 2, 3]
        for entry in manifest["rounds"]:
            assert (directory / entry["file"]).is_file()

    def test_no_temporary_files_left_behind(self, fitted_directory):
        directory, _ = fitted_directory
        leftovers = [p.name for p in directory.iterdir()
                     if "tmp" in p.name]
        assert leftovers == []

    def test_round_archive_is_self_contained(self, fitted_directory,
                                             mlp_factory):
        directory, result = fitted_directory
        manager = CheckpointManager(directory)
        state = manager.load(mlp_factory, round_index=3)
        assert state.round == 3
        assert state.method == "Bagging"
        assert len(state.ensemble) == 3
        assert [m.index for m in state.members] == [0, 1, 2]
        assert state.cumulative_epochs == 3
        assert state.rng_state is not None
        # The checkpointed members are the fitted members, bit for bit.
        for mine, theirs in zip(state.ensemble.models, result.ensemble.models):
            for name, value in mine.state_dict().items():
                assert np.array_equal(value, theirs.state_dict()[name])

    def test_query_helpers(self, fitted_directory):
        directory, _ = fitted_directory
        manager = CheckpointManager(directory)
        assert manager.latest_round() == 3
        assert manager.available_rounds() == [1, 2, 3]
        empty = CheckpointManager(directory / "nope")
        assert empty.latest_round() is None
        assert empty.available_rounds() == []


class TestRetention:
    def test_keep_last_prunes_old_rounds(self, tmp_path, tiny_image_split,
                                         mlp_factory):
        directory = tmp_path / "checkpoints"
        config = BaselineConfig(num_models=4, epochs_per_model=1, lr=0.05,
                                batch_size=32, weight_decay=0.0)
        Bagging(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0,
            fault_tolerance=FaultTolerance(
                checkpoint=CheckpointManager(directory, keep_last=2)))
        manager = CheckpointManager(directory)
        assert manager.available_rounds() == [3, 4]
        archives = sorted(p.name for p in directory.glob("round_*.npz"))
        assert archives == ["round_0003.npz", "round_0004.npz"]

    def test_keep_last_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            CheckpointManager(tmp_path, keep_last=0)

    def test_rerun_drops_abandoned_timeline(self, fitted_directory,
                                            tiny_image_split, mlp_factory):
        # Re-running from scratch over an old directory: rounds from the
        # previous timeline must not mix with the new one.
        directory, _ = fitted_directory
        config = BaselineConfig(num_models=2, epochs_per_model=1, lr=0.05,
                                batch_size=32, weight_decay=0.0)
        Bagging(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=1,
            fault_tolerance=FaultTolerance(
                checkpoint=CheckpointManager(directory)))
        assert CheckpointManager(directory).available_rounds() == [1, 2]


class TestLoadErrors:
    def test_missing_directory(self, tmp_path, mlp_factory):
        with pytest.raises(CheckpointError, match="does not exist"):
            CheckpointManager(tmp_path / "absent").load(mlp_factory)

    def test_missing_manifest(self, tmp_path, mlp_factory):
        with pytest.raises(CheckpointError, match="no checkpoint manifest"):
            CheckpointManager(tmp_path).load(mlp_factory)

    def test_corrupt_manifest(self, fitted_directory, mlp_factory):
        directory, _ = fitted_directory
        (directory / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt checkpoint manifest"):
            CheckpointManager(directory).load(mlp_factory)

    def test_manifest_without_rounds_key(self, fitted_directory, mlp_factory):
        directory, _ = fitted_directory
        (directory / "manifest.json").write_text(json.dumps({"method": "x"}))
        with pytest.raises(CheckpointError, match="missing 'rounds'"):
            CheckpointManager(directory).load(mlp_factory)

    def test_unknown_round(self, fitted_directory, mlp_factory):
        directory, _ = fitted_directory
        with pytest.raises(CheckpointError, match="round 9 is not in"):
            CheckpointManager(directory).load(mlp_factory, round_index=9)

    def test_corrupt_archive(self, fitted_directory, mlp_factory):
        directory, _ = fitted_directory
        (directory / "round_0003.npz").write_bytes(b"garbage")
        with pytest.raises(CheckpointError, match="corrupt checkpoint archive"):
            CheckpointManager(directory).load(mlp_factory, round_index=3)

    def test_wrong_architecture(self, fitted_directory, tiny_image_split):
        from repro.models import MLP, ModelFactory

        directory, _ = fitted_directory
        input_dim = int(np.prod(tiny_image_split.train.x.shape[1:]))
        wrong = ModelFactory(MLP, input_dim=input_dim,
                             num_classes=tiny_image_split.num_classes,
                             hidden=(5, 5))
        with pytest.raises(CheckpointError, match="corrupt checkpoint archive"):
            CheckpointManager(directory).load(wrong)


class TestSnapshotEnsemble:
    """snapshot_ensemble: the repair loop's engine-free checkpoint path."""

    def snapshot(self, tmp_path, mlp_factory, rounds=(1,)):
        from repro.core import Ensemble

        directory = tmp_path / "repairs"
        manager = CheckpointManager(directory)
        ensemble = Ensemble()
        for seed in range(3):
            ensemble.add(mlp_factory.build(rng=seed), alpha=seed + 1.0)
        for index in rounds:
            manager.snapshot_ensemble(ensemble, round_index=index,
                                      metadata={"worst_member": 2,
                                                "beta": 0.5})
        return directory, manager, ensemble

    def test_round_trips_through_load(self, tmp_path, mlp_factory,
                                      tiny_image_split):
        directory, manager, ensemble = self.snapshot(tmp_path, mlp_factory)
        state = manager.load(mlp_factory)
        assert state.round == 1
        assert state.method == "repair"
        assert state.metadata == {"worst_member": 2, "beta": 0.5}
        assert len(state.ensemble) == 3
        assert state.ensemble.alphas == ensemble.alphas
        x = tiny_image_split.test.x[:8]
        np.testing.assert_array_equal(state.ensemble.predict_probs(x),
                                      ensemble.predict_probs(x))

    def test_uses_the_manifest_and_retention(self, tmp_path, mlp_factory):
        directory, manager, _ = self.snapshot(tmp_path, mlp_factory,
                                              rounds=(1, 2, 3, 4))
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["method"] == "repair"
        assert manager.available_rounds() == [2, 3, 4]  # keep_last=3
        archives = sorted(p.name for p in directory.glob("round_*.npz"))
        assert archives == ["round_0002.npz", "round_0003.npz",
                            "round_0004.npz"]
