"""Thread safety of the pooled im2col workspaces.

The conv kernels acquire scratch buffers from the workspace pool; before
the pool went thread-local, two threads could pop the *same* buffer and
overwrite each other's patch matrices mid-GEMM.  The regression test
hammers ``predict_probs`` on a conv model from 8 threads and demands
bit-identical outputs vs the serial run — corruption would show up as a
numeric mismatch with near certainty.
"""

import threading

import numpy as np

from repro.models import ResNetCIFAR
from repro.nn import predict_probs
from repro.ops import workspace


class TestThreadLocalPools:
    def test_pools_are_per_thread(self):
        workspace.clear()
        buffer = workspace.acquire((16, 16), np.float32)
        workspace.release(buffer)
        assert workspace.pooled_bytes() > 0

        seen = {}

        def worker():
            seen["bytes"] = workspace.pooled_bytes()
            other = workspace.acquire((16, 16), np.float32)
            seen["reused_cross_thread"] = other is buffer

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["bytes"] == 0                 # fresh pool per thread
        assert not seen["reused_cross_thread"]    # never hands out another
        workspace.clear()                         # thread's buffer

    def test_release_then_acquire_reuses_in_thread(self):
        workspace.clear()
        first = workspace.acquire((4, 4), np.float64)
        workspace.release(first)
        assert workspace.acquire((4, 4), np.float64) is first
        workspace.clear()


class TestConcurrentConvParity:
    def test_eight_threads_bitwise_match_serial(self):
        model = ResNetCIFAR(depth=8, num_classes=4, base_width=4, rng=0)
        rng = np.random.default_rng(11)
        batches = [rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
                   for _ in range(8)]
        serial = [predict_probs(model, x) for x in batches]

        results = [None] * len(batches)
        barrier = threading.Barrier(len(batches))

        def worker(i):
            barrier.wait()      # maximise overlap inside the conv kernels
            for _ in range(3):
                results[i] = predict_probs(model, batches[i])

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(batches))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for got, expected in zip(results, serial):
            assert np.array_equal(got, expected)
