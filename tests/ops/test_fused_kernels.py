"""Fused loss kernels: bit-identical to the unfused chains, correct grads.

``softmax_cross_entropy`` and ``edde_loss`` (paper Eq. 10 forward /
Eq. 11 backward) collapse multi-node autograd chains into one registry
op.  The contract is *bitwise* equality with the chains they replace —
the golden-run fingerprints depend on it — so these tests compare exact
bits, not tolerances, and then gradcheck the fused paths directly.
"""

import numpy as np

from repro.core.losses import diversity_driven_loss
from repro.nn.losses import cross_entropy
from repro.ops.fused import fused_enabled, use_fused
from repro.tensor import Tensor, gradcheck

RNG = np.random.default_rng(17)


def _batch(batch=6, classes=5):
    logits = RNG.normal(size=(batch, classes)) * 2.0
    labels = RNG.integers(0, classes, size=batch)
    weights = RNG.uniform(0.5, 1.5, size=batch)
    raw = RNG.uniform(0.05, 1.0, size=(batch, classes))
    ensemble_probs = raw / raw.sum(axis=1, keepdims=True)
    return logits, labels, weights, ensemble_probs


def _loss_and_grad(fn, logits_data):
    logits = Tensor(logits_data.copy(), requires_grad=True)
    loss = fn(logits)
    loss.backward()
    return loss.data.copy(), logits.grad.copy()


class TestToggle:
    def test_fused_is_the_default(self):
        assert fused_enabled()

    def test_use_fused_restores(self):
        with use_fused(False):
            assert not fused_enabled()
            with use_fused(True):
                assert fused_enabled()
            assert not fused_enabled()
        assert fused_enabled()


class TestSoftmaxCrossEntropy:
    def test_bitwise_matches_unfused_chain(self):
        logits, labels, weights, _ = _batch()
        for w in (None, weights):
            with use_fused(True):
                fused_loss, fused_grad = _loss_and_grad(
                    lambda lg: cross_entropy(lg, labels, w), logits)
            with use_fused(False):
                chain_loss, chain_grad = _loss_and_grad(
                    lambda lg: cross_entropy(lg, labels, w), logits)
            assert np.array_equal(fused_loss, chain_loss)
            assert np.array_equal(fused_grad, chain_grad)

    def test_gradcheck(self):
        logits, labels, weights, _ = _batch(batch=4, classes=3)
        with use_fused(True):
            assert gradcheck(
                lambda lg: cross_entropy(lg, labels, weights),
                [Tensor(logits, requires_grad=True)])


class TestEddeLoss:
    def test_bitwise_matches_unfused_chain(self):
        logits, labels, weights, ensemble_probs = _batch()
        cases = [
            (ensemble_probs, 0.2, weights),   # full Eq. 10
            (ensemble_probs, 0.2, None),      # uniform boosting weights
            (None, 0.2, weights),             # first round: plain CE
            (ensemble_probs, 0.0, weights),   # gamma ablation
        ]
        for probs, gamma, w in cases:
            with use_fused(True):
                fused_loss, fused_grad = _loss_and_grad(
                    lambda lg: diversity_driven_loss(lg, labels, probs,
                                                     gamma, w), logits)
            with use_fused(False):
                chain_loss, chain_grad = _loss_and_grad(
                    lambda lg: diversity_driven_loss(lg, labels, probs,
                                                     gamma, w), logits)
            assert np.array_equal(fused_loss, chain_loss)
            assert np.array_equal(fused_grad, chain_grad)

    def test_gradcheck_full_loss(self):
        logits, labels, weights, ensemble_probs = _batch(batch=4, classes=3)
        with use_fused(True):
            assert gradcheck(
                lambda lg: diversity_driven_loss(lg, labels, ensemble_probs,
                                                 0.2, weights),
                [Tensor(logits, requires_grad=True)])

    def test_gradcheck_first_round(self):
        logits, labels, weights, _ = _batch(batch=4, classes=3)
        with use_fused(True):
            assert gradcheck(
                lambda lg: diversity_driven_loss(lg, labels, None,
                                                 0.2, weights),
                [Tensor(logits, requires_grad=True)])

    def test_is_a_single_graph_node(self):
        logits, labels, weights, ensemble_probs = _batch()
        loss = diversity_driven_loss(Tensor(logits, requires_grad=True),
                                     labels, ensemble_probs, 0.2, weights)
        assert loss._op == "edde_loss"
        assert len(loss._parents) == 1
