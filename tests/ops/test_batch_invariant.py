"""Batch-invariant GEMM blocking (repro.ops.batching).

BLAS selects its GEMM kernel from the full problem shape, so
``(A @ B)[:m]`` and ``A[:m] @ B`` are *not* bitwise equal in general —
the exact failure the micro-batching serving pipeline must never expose.
These tests pin the contract of the fix: under a declared batch cell,
every stacked matmul is computed block-by-block at the cell's row count,
so each block is bit-identical to the solo GEMM of that block.
"""

import threading

import numpy as np
import pytest

from repro.models import MLP
from repro.nn import predict_probs
from repro.ops.batching import batch_cell, batch_cell_rows, blocked_matmul

RNG = np.random.default_rng(7)


class TestBlockedMatmul:
    @pytest.mark.parametrize("cell,blocks,k,n", [
        (1, 7, 5, 3), (4, 4, 16, 8), (8, 16, 33, 10), (16, 3, 64, 64),
    ])
    def test_each_block_bitwise_equals_solo(self, cell, blocks, k, n):
        x = RNG.normal(size=(cell * blocks, k)).astype(np.float32)
        y = RNG.normal(size=(k, n)).astype(np.float32)
        out = blocked_matmul(x, y, cell)
        for start in range(0, len(x), cell):
            solo = x[start:start + cell] @ y
            assert np.array_equal(out[start:start + cell], solo)

    def test_ragged_tail_equals_smaller_solo(self):
        x = RNG.normal(size=(10, 6)).astype(np.float32)   # 3 blocks of 4,4,2
        y = RNG.normal(size=(6, 5)).astype(np.float32)
        out = blocked_matmul(x, y, 4)
        assert np.array_equal(out[8:], x[8:] @ y)

    def test_small_input_passes_through(self):
        x = RNG.normal(size=(3, 4))
        y = RNG.normal(size=(4, 2))
        assert np.array_equal(blocked_matmul(x, y, 8), x @ y)


class TestBatchCellContext:
    def test_nests_and_restores(self):
        assert batch_cell_rows() is None
        with batch_cell(8):
            assert batch_cell_rows() == 8
            with batch_cell(2):
                assert batch_cell_rows() == 2
            assert batch_cell_rows() == 8
        assert batch_cell_rows() is None

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match=">= 1"):
            with batch_cell(0):
                pass

    def test_thread_local(self):
        seen = {}

        def worker():
            seen["inner"] = batch_cell_rows()

        with batch_cell(4):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["inner"] is None


class TestStackedForwardParity:
    """The end-to-end property the serving pipeline relies on."""

    def test_stacked_rows_bitwise_equal_solo_rows(self):
        model = MLP(input_dim=12, num_classes=5, hidden=(16, 9), rng=3)
        rows = 8
        requests = [RNG.normal(size=(rows, 12)).astype(np.float32)
                    for _ in range(6)]
        solo = [predict_probs(model, x) for x in requests]
        stacked = np.concatenate(requests, axis=0)
        with batch_cell(rows):
            batched = predict_probs(model, stacked,
                                    batch_size=len(stacked))
        for i, answer in enumerate(solo):
            assert np.array_equal(batched[i * rows:(i + 1) * rows], answer)

    def test_without_cell_stacking_may_drift_but_shape_holds(self):
        # No bitwise claim without the cell — just the sanity that the
        # hook leaves plain matmuls alone.
        model = MLP(input_dim=12, num_classes=5, hidden=(16,), rng=3)
        x = RNG.normal(size=(24, 12)).astype(np.float32)
        probs = predict_probs(model, x)
        assert probs.shape == (24, 5)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-5)
