"""The op registry, the per-op profiler, and the dispatcher contract."""

import numpy as np
import pytest

from repro.ops import (
    get_op,
    profile_ops,
    register,
    registered_ops,
)
from repro.ops.registry import OpContext
from repro.tensor import Tensor, apply, no_grad


class TestRegistry:
    def test_core_ops_are_registered(self):
        names = registered_ops()
        for name in ("add", "mul", "matmul", "relu", "softmax", "sum",
                     "conv2d", "conv1d", "max_pool2d", "dropout",
                     "softmax_cross_entropy", "edde_loss"):
            assert name in names, name

    def test_unknown_op_raises_with_listing(self):
        with pytest.raises(KeyError, match="unknown op 'no_such_op'"):
            get_op("no_such_op")

    def test_fused_kernels_are_tagged(self):
        assert "fused" in get_op("softmax_cross_entropy").tags
        assert "fused" in get_op("edde_loss").tags

    def test_custom_op_dispatches_through_apply(self):
        def forward(ctx, x):
            ctx.x = x
            return x * x

        def backward(ctx, grad):
            return (2.0 * ctx.x * grad,)

        register("test_square", forward, backward)
        try:
            x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
            out = apply("test_square", (x,))
            np.testing.assert_allclose(out.data, [1.0, 4.0, 9.0])
            out.sum().backward()
            np.testing.assert_allclose(x.grad, [2.0, -4.0, 6.0])
        finally:
            from repro.ops.registry import _OPS
            _OPS.pop("test_square", None)

    def test_needs_reflects_requires_grad(self):
        seen = {}

        def forward(ctx, a, b):
            seen["needs"] = ctx.needs
            return a + b

        register("test_needs", forward, lambda ctx, grad: (grad, grad))
        try:
            a = Tensor(np.ones(2), requires_grad=True)
            b = Tensor(np.ones(2))
            apply("test_needs", (a, b))
            assert seen["needs"] == (True, False)
        finally:
            from repro.ops.registry import _OPS
            _OPS.pop("test_needs", None)


class TestProfiler:
    def test_records_forward_and_backward(self):
        x = Tensor(np.ones((3, 3)), requires_grad=True)
        with profile_ops() as prof:
            ((x * 2.0).relu().sum()).backward()
        summary = prof.summary()
        assert summary["mul"]["forward_calls"] == 1
        assert summary["mul"]["backward_calls"] == 1
        assert summary["relu"]["forward_calls"] == 1
        assert summary["mul"]["output_bytes"] == x.data.nbytes
        assert prof.total_seconds() >= 0.0

    def test_no_grad_forwards_still_counted(self):
        x = Tensor(np.ones(4))
        with profile_ops() as prof:
            with no_grad():
                (x + x).exp()
        summary = prof.summary()
        assert summary["add"]["forward_calls"] == 1
        assert summary["add"]["backward_calls"] == 0

    def test_inactive_by_default(self):
        from repro.ops import profiler

        assert profiler.current_profiler() is None
        with profile_ops() as prof:
            assert profiler.current_profiler() is prof
        assert profiler.current_profiler() is None

    def test_format_table_renders(self):
        x = Tensor(np.ones(4), requires_grad=True)
        with profile_ops() as prof:
            (x * x).sum().backward()
        table = prof.format_table(top=5)
        assert "mul" in table and "fwd calls" in table


class TestOpContext:
    def test_defaults(self):
        ctx = OpContext()
        assert ctx.needs == ()
        assert ctx.workspaces == ()

    def test_is_an_attribute_bag(self):
        ctx = OpContext()
        ctx.anything = [1, 2, 3]
        assert ctx.anything == [1, 2, 3]
