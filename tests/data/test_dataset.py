"""Dataset container invariants."""

import numpy as np
import pytest

from repro.data import Dataset


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4), num_classes=2)

    def test_labels_out_of_range(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.array([0, 5]), num_classes=2)

    def test_num_classes_minimum(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.zeros(2, dtype=int), num_classes=1)


class TestOperations:
    def setup_method(self):
        self.dataset = Dataset(np.arange(12.0).reshape(6, 2),
                               np.array([0, 1, 2, 0, 1, 2]),
                               num_classes=3, name="demo")

    def test_len(self):
        assert len(self.dataset) == 6

    def test_subset_values(self):
        sub = self.dataset.subset([0, 3])
        np.testing.assert_array_equal(sub.y, [0, 0])
        np.testing.assert_array_equal(sub.x, [[0.0, 1.0], [6.0, 7.0]])
        assert sub.num_classes == 3

    def test_subset_allows_duplicates(self):
        sub = self.dataset.subset([1, 1, 1])
        assert len(sub) == 3
        assert set(sub.y) == {1}

    def test_one_hot(self):
        encoded = self.dataset.one_hot()
        assert encoded.shape == (6, 3)
        np.testing.assert_array_equal(encoded.sum(axis=1), np.ones(6))
        assert encoded[0, 0] == 1.0

    def test_class_counts(self):
        np.testing.assert_array_equal(self.dataset.class_counts(), [2, 2, 2])
