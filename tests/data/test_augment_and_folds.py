"""Augmentation and fold-splitting invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Dataset,
    cifar_augment,
    merge_folds,
    random_crop,
    random_flip,
    split_folds,
    train_validation_split,
)


def images(n=6, size=8):
    return np.random.default_rng(0).normal(size=(n, 3, size, size))


class TestAugment:
    def test_crop_preserves_shape(self):
        x = images()
        out = random_crop(x, 2, np.random.default_rng(0))
        assert out.shape == x.shape

    def test_crop_zero_padding_identity(self):
        x = images()
        np.testing.assert_array_equal(random_crop(x, 0, np.random.default_rng(0)), x)

    def test_flip_preserves_shape_and_values(self):
        x = images()
        out = random_flip(x, np.random.default_rng(0))
        assert out.shape == x.shape
        # each image is either identical or exactly mirrored
        for original, maybe_flipped in zip(x, out):
            same = np.array_equal(original, maybe_flipped)
            mirrored = np.array_equal(original[:, :, ::-1], maybe_flipped)
            assert same or mirrored

    def test_flip_probability_one(self):
        x = images()
        out = random_flip(x, np.random.default_rng(0), probability=1.0)
        np.testing.assert_array_equal(out, x[:, :, :, ::-1])

    def test_flip_does_not_mutate_input(self):
        x = images()
        copy = x.copy()
        random_flip(x, np.random.default_rng(0), probability=1.0)
        np.testing.assert_array_equal(x, copy)

    def test_cifar_augment_closure(self):
        augment = cifar_augment(padding=2)
        out = augment(images(), np.random.default_rng(0))
        assert out.shape == (6, 3, 8, 8)


def make_dataset(n=20):
    rng = np.random.default_rng(1)
    return Dataset(rng.normal(size=(n, 4)), rng.integers(0, 3, n), num_classes=3)


class TestFolds:
    def test_partition_covers_everything(self):
        dataset = make_dataset(23)
        folds = split_folds(dataset, 5, rng=0)
        total = sum(len(f) for f in folds)
        assert total == 23
        all_x = np.concatenate([f.x for f in folds])
        assert sorted(map(tuple, all_x)) == sorted(map(tuple, dataset.x))

    def test_folds_near_equal(self):
        folds = split_folds(make_dataset(23), 5, rng=0)
        sizes = [len(f) for f in folds]
        assert max(sizes) - min(sizes) <= 1

    def test_merge_restores_size(self):
        dataset = make_dataset(20)
        folds = split_folds(dataset, 4, rng=0)
        merged = merge_folds(folds)
        assert len(merged) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            split_folds(make_dataset(5), 1)
        with pytest.raises(ValueError):
            split_folds(make_dataset(3), 10)
        with pytest.raises(ValueError):
            merge_folds([])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 8), st.integers(10, 60))
    def test_property_partition(self, n_folds, n_samples):
        dataset = make_dataset(n_samples)
        folds = split_folds(dataset, n_folds, rng=0)
        assert len(folds) == n_folds
        assert sum(len(f) for f in folds) == n_samples


class TestTrainValidationSplit:
    def test_sizes(self):
        train, val = train_validation_split(make_dataset(20), 0.25, rng=0)
        assert len(train) == 15
        assert len(val) == 5

    def test_disjoint(self):
        dataset = make_dataset(20)
        train, val = train_validation_split(dataset, 0.3, rng=0)
        train_rows = set(map(tuple, train.x))
        val_rows = set(map(tuple, val.x))
        assert not train_rows & val_rows

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_validation_split(make_dataset(10), 1.5)
