"""Drift schedules and streams: validation, determinism, actual drift."""

import numpy as np
import pytest

from repro.data import (
    DriftPhase,
    DriftSchedule,
    DriftStream,
    ImageConfig,
    build_prototypes,
    make_drift_stream,
    rotate_prototypes,
)

CONFIG = ImageConfig(num_classes=4, image_size=6, prototypes_per_class=2,
                     train_size=32, test_size=16, noise_std=0.2,
                     jitter=1, occlusion_prob=0.1, mix_prob=0.1,
                     label_noise=0.0, name="drift-test")


def step_schedule(**overrides):
    kwargs = dict(pre_batches=3, drift_batches=4, covariate=0.8,
                  batch_size=8)
    kwargs.update(overrides)
    return DriftSchedule.step(**kwargs)


# ---------------------------------------------------------------- phases

class TestSchedule:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            DriftPhase(batches=0)
        with pytest.raises(ValueError):
            DriftPhase(batches=1, covariate=1.5)
        with pytest.raises(ValueError):
            DriftPhase(batches=1, label_skew=-0.1)

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            DriftSchedule(phases=[])
        with pytest.raises(ValueError):
            DriftSchedule(phases=[{"batches": 1}], batch_size=0)
        with pytest.raises(ValueError):
            DriftSchedule(phases=[{"batches": 1}], interval=0.0)

    def test_phase_at_walks_segments(self):
        schedule = step_schedule()
        assert schedule.total_batches == 7
        assert schedule.phase_at(0).covariate == 0.0
        assert schedule.phase_at(2).covariate == 0.0
        assert schedule.phase_at(3).covariate == 0.8
        assert schedule.phase_at(6).covariate == 0.8
        with pytest.raises(IndexError):
            schedule.phase_at(7)

    def test_drift_onset(self):
        assert step_schedule().drift_onset() == 3
        stationary = DriftSchedule(phases=[{"batches": 5}])
        assert stationary.drift_onset() is None
        jitter_only = DriftSchedule(phases=[{"batches": 2},
                                            {"batches": 2, "jitter": 3}])
        assert jitter_only.drift_onset() == 2

    def test_payload_round_trip(self):
        schedule = DriftSchedule(phases=[
            {"batches": 2},
            {"batches": 3, "covariate": 0.6, "label_skew": 0.5, "jitter": 2},
        ], batch_size=16, interval=2.0)
        clone = DriftSchedule.from_payload(schedule.to_payload())
        assert clone == schedule

    def test_from_payload_rejects_garbage(self):
        with pytest.raises(ValueError):
            DriftSchedule.from_payload({"batch_size": 8})

    def test_dict_phases_coerced(self):
        schedule = DriftSchedule(phases=[{"batches": 2, "covariate": 0.3}])
        assert isinstance(schedule.phases[0], DriftPhase)


# ---------------------------------------------------------------- stream

class TestStream:
    def test_batches_follow_the_schedule(self):
        schedule = step_schedule()
        stream = make_drift_stream(CONFIG, schedule, rng=0)
        batches = list(stream)
        assert len(batches) == schedule.total_batches
        assert [b.index for b in batches] == list(range(7))
        assert [b.covariate for b in batches] == [0.0] * 3 + [0.8] * 4
        assert all(b.timestamp == b.index * schedule.interval
                   for b in batches)
        for batch in batches:
            assert batch.x.shape == (8, CONFIG.channels, 6, 6)
            assert batch.y.shape == (8,)
            assert set(np.unique(batch.y)) <= set(range(CONFIG.num_classes))

    def test_deterministic_replay(self):
        schedule = step_schedule()
        first = list(make_drift_stream(CONFIG, schedule, rng=7))
        second = list(make_drift_stream(CONFIG, schedule, rng=7))
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.x, b.x)
            np.testing.assert_array_equal(a.y, b.y)

    def test_seed_changes_stream(self):
        schedule = step_schedule()
        a = make_drift_stream(CONFIG, schedule, rng=0).next_batch()
        b = make_drift_stream(CONFIG, schedule, rng=1).next_batch()
        assert not np.array_equal(a.x, b.x)

    def test_baseline_then_batches_is_the_contract(self):
        schedule = step_schedule()
        stream = make_drift_stream(CONFIG, schedule, rng=3)
        baseline = stream.baseline_dataset(24)
        assert len(baseline) == 24
        assert baseline.num_classes == CONFIG.num_classes
        replay = make_drift_stream(CONFIG, schedule, rng=3)
        np.testing.assert_array_equal(replay.baseline_dataset(24).x,
                                      baseline.x)
        np.testing.assert_array_equal(next(iter(replay)).x,
                                      stream.next_batch().x)

    def test_covariate_drift_moves_inputs(self):
        """Same rng, drifted schedule: the drifted phase must differ."""
        stationary = DriftSchedule(phases=[{"batches": 4}], batch_size=8)
        drifted = DriftSchedule(phases=[{"batches": 2},
                                        {"batches": 2, "covariate": 1.0}],
                                batch_size=8)
        a = list(make_drift_stream(CONFIG, stationary, rng=5))
        b = list(make_drift_stream(CONFIG, drifted, rng=5))
        np.testing.assert_array_equal(a[0].x, b[0].x)  # both stationary
        assert not np.array_equal(a[2].x, b[2].x)      # b has drifted

    def test_label_skew_tilts_priors(self):
        stream = make_drift_stream(CONFIG, step_schedule(), rng=0)
        uniform = stream.priors(0.0)
        np.testing.assert_allclose(uniform, 1.0 / CONFIG.num_classes)
        skewed = stream.priors(2.0)
        assert skewed.max() > 0.5
        np.testing.assert_allclose(skewed.sum(), 1.0)

    def test_skewed_phase_draws_skewed_labels(self):
        schedule = DriftSchedule(phases=[{"batches": 30, "label_skew": 3.0}],
                                 batch_size=16)
        stream = make_drift_stream(CONFIG, schedule, rng=0)
        labels = np.concatenate([b.y for b in stream])
        counts = np.bincount(labels, minlength=CONFIG.num_classes)
        head = stream.class_order[0]
        assert counts[head] == counts.max()
        assert counts[head] > len(labels) / 2


# ------------------------------------------------------------ prototypes

class TestPrototypes:
    def test_rotation_preserves_shape_and_content(self):
        rng = np.random.default_rng(0)
        bank = build_prototypes(CONFIG, rng)
        rotated = rotate_prototypes(bank)
        assert rotated.shape == bank.shape
        np.testing.assert_array_equal(rotate_prototypes(rotated, 3), bank)
        np.testing.assert_allclose(np.sort(rotated.ravel()),
                                   np.sort(bank.ravel()))

    def test_build_prototypes_matches_dataset_path(self):
        """make_image_dataset renders from the same bank (same rng)."""
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        np.testing.assert_array_equal(build_prototypes(CONFIG, rng_a),
                                      build_prototypes(CONFIG, rng_b))
