"""DataLoader, bootstrap and weighted sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import DataLoader, Dataset, bootstrap_sample, weighted_sample


def make_dataset(n=20, features=3, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(rng.normal(size=(n, features)),
                   rng.integers(0, classes, size=n), num_classes=classes)


class TestDataLoader:
    def test_covers_every_sample_once(self):
        dataset = make_dataset(23)
        loader = DataLoader(dataset, batch_size=5, rng=0)
        seen = np.concatenate([idx for _, _, idx in loader])
        assert sorted(seen.tolist()) == list(range(23))

    def test_len(self):
        dataset = make_dataset(23)
        assert len(DataLoader(dataset, batch_size=5)) == 5
        assert len(DataLoader(dataset, batch_size=5, drop_last=True)) == 4
        assert len(DataLoader(make_dataset(20), batch_size=5)) == 4

    def test_drop_last(self):
        loader = DataLoader(make_dataset(23), batch_size=5, drop_last=True, rng=0)
        sizes = [len(y) for _, y, _ in loader]
        assert sizes == [5, 5, 5, 5]

    def test_no_shuffle_is_ordered(self):
        loader = DataLoader(make_dataset(10), batch_size=4, shuffle=False)
        indices = np.concatenate([idx for _, _, idx in loader])
        np.testing.assert_array_equal(indices, np.arange(10))

    def test_labels_align_with_indices(self):
        dataset = make_dataset(30)
        loader = DataLoader(dataset, batch_size=7, rng=1)
        for _, y, idx in loader:
            np.testing.assert_array_equal(y, dataset.y[idx])

    def test_seeded_shuffle_reproducible(self):
        dataset = make_dataset(15)
        order1 = np.concatenate([i for _, _, i in DataLoader(dataset, 4, rng=5)])
        order2 = np.concatenate([i for _, _, i in DataLoader(dataset, 4, rng=5)])
        np.testing.assert_array_equal(order1, order2)

    def test_reshuffles_between_epochs(self):
        dataset = make_dataset(50)
        loader = DataLoader(dataset, batch_size=50, rng=3)
        first = next(iter(loader))[2]
        second = next(iter(loader))[2]
        assert not np.array_equal(first, second)

    def test_augment_applied(self):
        dataset = make_dataset(8)
        loader = DataLoader(dataset, batch_size=4, rng=0,
                            augment=lambda x, rng: x + 100.0)
        x, _, _ = next(iter(loader))
        assert x.min() > 50.0
        # Original dataset untouched.
        assert dataset.x.min() < 50.0

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(), batch_size=0)


class TestBootstrap:
    def test_size_preserved(self):
        sample = bootstrap_sample(make_dataset(40), rng=0)
        assert len(sample) == 40

    def test_contains_duplicates_with_high_probability(self):
        dataset = make_dataset(100)
        sample = bootstrap_sample(dataset, rng=0)
        # A bootstrap of n items has ~63% unique entries.
        unique_fraction = len(np.unique(sample.x, axis=0)) / 100
        assert unique_fraction < 0.9


class TestWeightedSample:
    def test_concentrates_on_heavy_samples(self):
        dataset = make_dataset(10)
        weights = np.zeros(10)
        weights[3] = 1.0
        sample = weighted_sample(dataset, weights, rng=0)
        np.testing.assert_allclose(sample.x,
                                   np.repeat(dataset.x[3:4], 10, axis=0))

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            weighted_sample(make_dataset(5), np.array([1, 1, -1, 1, 1.0]))

    def test_rejects_misaligned_weights(self):
        with pytest.raises(ValueError):
            weighted_sample(make_dataset(5), np.ones(3))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_sampled_labels_valid(self, seed):
        dataset = make_dataset(12)
        weights = np.random.default_rng(seed).random(12) + 0.01
        sample = weighted_sample(dataset, weights, rng=seed)
        assert sample.y.min() >= 0
        assert sample.y.max() < dataset.num_classes
