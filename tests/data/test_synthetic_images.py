"""Synthetic image generator: shapes, determinism, difficulty structure."""

import numpy as np
import pytest

from repro.data.synthetic_images import (
    ImageConfig,
    make_cifar10_like,
    make_cifar100_like,
    make_image_dataset,
)


class TestShapes:
    def test_split_shapes(self):
        config = ImageConfig(num_classes=5, image_size=8, train_size=50,
                             test_size=20, label_noise=0.0)
        split = make_image_dataset(config, rng=0)
        assert split.train.x.shape == (50, 3, 8, 8)
        assert split.test.x.shape == (20, 3, 8, 8)
        assert split.num_classes == 5

    def test_cifar10_like_defaults(self):
        split = make_cifar10_like(rng=0, train_size=40, test_size=20)
        assert split.num_classes == 10
        assert split.train.x.shape[1] == 3

    def test_cifar100_like_class_count(self):
        split = make_cifar100_like(rng=0, train_size=40, test_size=20)
        assert split.num_classes == 20


class TestStatistics:
    def test_train_normalised(self):
        split = make_cifar10_like(rng=0, train_size=200, test_size=50)
        means = split.train.x.mean(axis=(0, 2, 3))
        stds = split.train.x.std(axis=(0, 2, 3))
        np.testing.assert_allclose(means, 0.0, atol=1e-8)
        np.testing.assert_allclose(stds, 1.0, atol=1e-6)

    def test_labels_balanced(self):
        split = make_cifar10_like(rng=0, train_size=200, test_size=100)
        counts = split.train.class_counts()
        assert counts.min() >= 15  # 10 classes x 20 each, minus label noise

    def test_deterministic_given_seed(self):
        a = make_cifar10_like(rng=123, train_size=30, test_size=10)
        b = make_cifar10_like(rng=123, train_size=30, test_size=10)
        np.testing.assert_array_equal(a.train.x, b.train.x)
        np.testing.assert_array_equal(a.train.y, b.train.y)

    def test_different_seeds_differ(self):
        a = make_cifar10_like(rng=1, train_size=30, test_size=10)
        b = make_cifar10_like(rng=2, train_size=30, test_size=10)
        assert not np.array_equal(a.train.x, b.train.x)


class TestLabelNoise:
    def test_fraction_flipped(self):
        config = ImageConfig(num_classes=10, train_size=2000, test_size=10,
                             label_noise=0.3)
        clean = ImageConfig(num_classes=10, train_size=2000, test_size=10,
                            label_noise=0.0)
        noisy_split = make_image_dataset(config, rng=5)
        clean_split = make_image_dataset(clean, rng=5)
        flipped = (noisy_split.train.y != clean_split.train.y).mean()
        assert 0.2 < flipped < 0.4

    def test_test_labels_stay_clean(self):
        config = ImageConfig(num_classes=10, train_size=50, test_size=500,
                             label_noise=0.5)
        clean = ImageConfig(num_classes=10, train_size=50, test_size=500,
                            label_noise=0.0)
        np.testing.assert_array_equal(make_image_dataset(config, rng=3).test.y,
                                      make_image_dataset(clean, rng=3).test.y)


class TestSuperclassStructure:
    def test_sibling_classes_more_similar(self):
        """Classes sharing a superclass must be closer than unrelated ones."""
        config = ImageConfig(num_classes=8, superclasses=4, train_size=800,
                             test_size=10, noise_std=0.0, jitter=0,
                             occlusion_prob=0.0, mix_prob=0.0,
                             label_noise=0.0, prototypes_per_class=1)
        split = make_image_dataset(config, rng=0)
        means = np.stack([split.train.x[split.train.y == c].mean(axis=0)
                          for c in range(8)])
        # class c and c+4 share a base (c % superclasses); c and c+1 do not.
        sibling = np.linalg.norm(means[0] - means[4])
        unrelated = np.linalg.norm(means[0] - means[1])
        assert sibling < unrelated


class TestLearnability:
    def test_mlp_beats_chance(self, tiny_image_split):
        from repro.core.trainer import TrainingConfig, train_model, evaluate_model
        from repro.models import MLP

        train = tiny_image_split.train
        model = MLP(input_dim=int(np.prod(train.x.shape[1:])),
                    num_classes=train.num_classes, hidden=(32,), rng=0)
        train_model(model, train, TrainingConfig(epochs=5, lr=0.05,
                                                 schedule="constant"), rng=0)
        accuracy = evaluate_model(model, tiny_image_split.test)
        assert accuracy > 2.0 / train.num_classes
