"""Synthetic text generator: ids, lengths, polarity structure."""

import numpy as np
import pytest

from repro.data.synthetic_text import (
    OOV_ID,
    PAD_ID,
    TextConfig,
    make_imdb_like,
    make_mr_like,
    make_text_dataset,
)


class TestShapesAndIds:
    def test_split_shapes(self):
        split = make_imdb_like(rng=0, train_size=60, test_size=30)
        assert split.train.x.shape == (60, 120)
        assert split.vocab_size == 5000
        assert split.num_classes == 2

    def test_ids_in_vocab(self):
        split = make_imdb_like(rng=0, train_size=60, test_size=30)
        assert split.train.x.min() >= 0
        assert split.train.x.max() < split.vocab_size

    def test_padding_at_tail(self):
        config = TextConfig(vocab_size=500, max_length=30, min_length=5,
                            train_size=40, test_size=10)
        split = make_text_dataset(config, rng=1)
        for row in split.train.x:
            content = np.flatnonzero(row != PAD_ID)
            if len(content) < len(row):
                # once padding starts, it continues to the end
                assert row[content.max() + 1:].max(initial=PAD_ID) == PAD_ID

    def test_mr_is_shorter(self):
        imdb = make_imdb_like(rng=0, train_size=20, test_size=10)
        mr = make_mr_like(rng=0, train_size=20, test_size=10)
        assert mr.train.x.shape[1] < imdb.train.x.shape[1]

    def test_labels_binary_and_balanced(self):
        split = make_imdb_like(rng=0, train_size=100, test_size=10)
        counts = split.train.class_counts()
        assert counts.sum() == 100
        assert abs(counts[0] - counts[1]) <= 1

    def test_deterministic(self):
        a = make_mr_like(rng=9, train_size=25, test_size=10)
        b = make_mr_like(rng=9, train_size=25, test_size=10)
        np.testing.assert_array_equal(a.train.x, b.train.x)

    def test_vocab_too_small_raises(self):
        with pytest.raises(ValueError):
            make_text_dataset(TextConfig(vocab_size=100, polar_vocab=60),
                              rng=0)


class TestPolarityStructure:
    def test_polar_tokens_predict_label(self):
        """Positive docs must contain more positive-range tokens."""
        config = TextConfig(vocab_size=500, max_length=40, min_length=20,
                            polar_vocab=40, train_size=200, test_size=10)
        split = make_text_dataset(config, rng=2)
        pos_lo, pos_hi = 2, 2 + config.polar_vocab
        neg_lo, neg_hi = pos_hi, pos_hi + config.polar_vocab
        x, y = split.train.x, split.train.y
        pos_counts = ((x >= pos_lo) & (x < pos_hi)).sum(axis=1)
        neg_counts = ((x >= neg_lo) & (x < neg_hi)).sum(axis=1)
        signal = np.where(pos_counts > neg_counts, 1, 0)
        agreement = (signal == y).mean()
        assert agreement > 0.8

    def test_textcnn_learns_it(self, tiny_text_split):
        from repro.core.trainer import TrainingConfig, train_model, evaluate_model
        from repro.models import TextCNN

        model = TextCNN(vocab_size=300, num_classes=2, embedding_dim=8,
                        filters_per_width=4, dropout=0.2, rng=0)
        train_model(model, tiny_text_split.train,
                    TrainingConfig(epochs=6, lr=0.1, batch_size=32,
                                   schedule="constant"), rng=0)
        accuracy = evaluate_model(model, tiny_text_split.test)
        assert accuracy > 0.65
