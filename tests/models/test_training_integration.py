"""Each architecture must be able to overfit a tiny batch end-to-end.

The classic 'can it learn at all' smoke test: if an architecture plus the
optimizer and losses can't drive training accuracy to ~1.0 on a handful of
samples, something is broken in the gradient path.
"""

import numpy as np
import pytest

from repro.core.trainer import TrainingConfig, train_model
from repro.data import Dataset
from repro.models import MLP, DenseNetCIFAR, ResNetCIFAR, TextCNN
from repro.nn import accuracy, predict_probs

RNG = np.random.default_rng(21)


def overfit(model, x, y, num_classes, epochs=40, lr=0.05):
    dataset = Dataset(x, y, num_classes=num_classes)
    config = TrainingConfig(epochs=epochs, lr=lr, batch_size=len(y),
                            schedule="constant", weight_decay=0.0)
    train_model(model, dataset, config, rng=0)
    return accuracy(predict_probs(model, x), y)


class TestOverfitTinyBatch:
    def test_mlp(self):
        x = RNG.normal(size=(16, 10))
        y = RNG.integers(0, 4, size=16)
        model = MLP(input_dim=10, num_classes=4, hidden=(32,), rng=0)
        assert overfit(model, x, y, 4) == 1.0

    def test_resnet(self):
        x = RNG.normal(size=(12, 3, 8, 8))
        y = RNG.integers(0, 3, size=12)
        model = ResNetCIFAR(depth=8, num_classes=3, base_width=4, rng=0)
        assert overfit(model, x, y, 3, epochs=60, lr=0.02) >= 0.9

    def test_densenet(self):
        x = RNG.normal(size=(12, 3, 8, 8))
        y = RNG.integers(0, 3, size=12)
        model = DenseNetCIFAR(depth=10, num_classes=3, growth=4, rng=0)
        assert overfit(model, x, y, 3, epochs=60, lr=0.02) >= 0.9

    def test_textcnn(self):
        x = RNG.integers(0, 50, size=(16, 12))
        y = RNG.integers(0, 2, size=16)
        model = TextCNN(vocab_size=50, num_classes=2, embedding_dim=8,
                        filters_per_width=4, dropout=0.0, rng=0)
        assert overfit(model, x, y, 2, epochs=60, lr=0.05) >= 0.9
