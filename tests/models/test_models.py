"""Model zoo: forward shapes, depth rules, factory/registry."""

import numpy as np
import pytest

from repro.models import (
    MLP,
    DenseNetCIFAR,
    ModelFactory,
    ResNetCIFAR,
    TextCNN,
    available_models,
    get_model_builder,
    textcnn_conv_beta,
)
from repro.nn import cross_entropy

RNG = np.random.default_rng(2)


class TestMLP:
    def test_forward_shape(self):
        model = MLP(input_dim=12, num_classes=3, hidden=(8, 8), rng=0)
        assert model(RNG.normal(size=(5, 12))).shape == (5, 3)

    def test_flattens_images(self):
        model = MLP(input_dim=3 * 4 * 4, num_classes=2, rng=0)
        assert model(RNG.normal(size=(2, 3, 4, 4))).shape == (2, 2)

    def test_no_hidden(self):
        model = MLP(input_dim=5, num_classes=2, hidden=(), rng=0)
        assert model(RNG.normal(size=(3, 5))).shape == (3, 2)


class TestResNet:
    def test_forward_shape(self):
        model = ResNetCIFAR(depth=8, num_classes=7, base_width=4, rng=0)
        assert model(RNG.normal(size=(2, 3, 10, 10))).shape == (2, 7)

    def test_depth_rule(self):
        with pytest.raises(ValueError):
            ResNetCIFAR(depth=9)

    def test_deeper_has_more_params(self):
        small = ResNetCIFAR(depth=8, base_width=4, rng=0)
        big = ResNetCIFAR(depth=14, base_width=4, rng=0)
        assert big.num_parameters() > small.num_parameters()

    def test_backward_runs(self):
        model = ResNetCIFAR(depth=8, num_classes=4, base_width=4, rng=0)
        loss = cross_entropy(model(RNG.normal(size=(3, 3, 8, 8))),
                             np.array([0, 1, 2]))
        loss.backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_stride_downsampling(self):
        # 3 stages: input 12x12 -> 12, 6, 3 spatial; head still works.
        model = ResNetCIFAR(depth=8, num_classes=2, base_width=4, rng=0)
        assert model(RNG.normal(size=(1, 3, 12, 12))).shape == (1, 2)


class TestDenseNet:
    def test_forward_shape(self):
        model = DenseNetCIFAR(depth=10, num_classes=6, growth=4, rng=0)
        assert model(RNG.normal(size=(2, 3, 8, 8))).shape == (2, 6)

    def test_depth_rule(self):
        with pytest.raises(ValueError):
            DenseNetCIFAR(depth=11)

    def test_growth_increases_channels(self):
        narrow = DenseNetCIFAR(depth=10, growth=4, rng=0)
        wide = DenseNetCIFAR(depth=10, growth=8, rng=0)
        assert wide.num_parameters() > narrow.num_parameters()

    def test_backward_runs(self):
        model = DenseNetCIFAR(depth=10, num_classes=3, growth=4, rng=0)
        loss = cross_entropy(model(RNG.normal(size=(2, 3, 8, 8))),
                             np.array([0, 2]))
        loss.backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_compression(self):
        compressed = DenseNetCIFAR(depth=10, growth=6, compression=0.5, rng=0)
        full = DenseNetCIFAR(depth=10, growth=6, compression=1.0, rng=0)
        assert compressed.num_parameters() < full.num_parameters()


class TestTextCNN:
    def test_forward_shape(self):
        model = TextCNN(vocab_size=100, num_classes=2, embedding_dim=8,
                        filters_per_width=4, rng=0)
        ids = RNG.integers(0, 100, size=(5, 20))
        assert model(ids).shape == (5, 2)

    def test_handles_short_sequences(self):
        # padding = width-1 makes even length-1 inputs valid for width-5 filters
        model = TextCNN(vocab_size=50, filter_widths=(3, 5), rng=0)
        ids = RNG.integers(0, 50, size=(2, 5))
        assert model(ids).shape == (2, 2)

    def test_conv_beta_excludes_head_only(self):
        model = TextCNN(vocab_size=100, rng=0)
        beta = textcnn_conv_beta(model)
        head = sum(p.size for _, p in model.head.named_parameters())
        assert beta == pytest.approx(1.0 - head / model.num_parameters())
        assert 0.5 < beta < 1.0

    def test_dropout_only_in_training(self):
        model = TextCNN(vocab_size=60, dropout=0.9, rng=0)
        ids = RNG.integers(0, 60, size=(4, 10))
        model.eval()
        a = model(ids).numpy()
        b = model(ids).numpy()
        np.testing.assert_array_equal(a, b)


class TestFactory:
    def test_build_with_seed_reproducible(self):
        factory = ModelFactory(MLP, input_dim=4, num_classes=2, hidden=(6,))
        m1, m2 = factory.build(rng=3), factory.build(rng=3)
        np.testing.assert_array_equal(m1.body._layers[0].weight.data,
                                      m2.body._layers[0].weight.data)

    def test_build_different_seeds_differ(self):
        factory = ModelFactory(MLP, input_dim=4, num_classes=2, hidden=(6,))
        m1, m2 = factory.build(rng=1), factory.build(rng=2)
        assert not np.array_equal(m1.body._layers[0].weight.data,
                                  m2.body._layers[0].weight.data)

    def test_registry(self):
        assert set(available_models()) >= {"mlp", "resnet", "densenet", "textcnn"}
        assert get_model_builder("resnet") is ResNetCIFAR

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model_builder("transformer-9000")

    def test_from_name(self):
        factory = ModelFactory.from_name("mlp", input_dim=3, num_classes=2)
        assert isinstance(factory.build(rng=0), MLP)
