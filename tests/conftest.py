"""Shared fixtures: tiny datasets and factories that keep tests fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset, TrainTestSplit
from repro.data.synthetic_images import ImageConfig, make_image_dataset
from repro.data.synthetic_text import TextConfig, make_text_dataset
from repro.models import MLP, ModelFactory
from repro.tensor import set_default_dtype

# The library default is float32 (see repro.tensor.dtypes); the test suite
# pins float64 so finite-difference gradient checks stay tight and the
# golden-run fingerprints (tests/golden/) remain byte-stable.  Pinned at
# import time — before any session fixture materialises data — and
# re-asserted per test in case one switches dtypes and leaks.
set_default_dtype(np.float64)


@pytest.fixture(autouse=True)
def _float64_default_dtype():
    previous = set_default_dtype(np.float64)
    try:
        yield
    finally:
        set_default_dtype(previous)


@pytest.fixture(scope="session")
def tiny_image_split() -> TrainTestSplit:
    """A small, easy image task an MLP can learn in a couple of epochs."""
    config = ImageConfig(num_classes=4, image_size=8, train_size=160,
                         test_size=80, noise_std=0.2, jitter=1,
                         occlusion_prob=0.1, mix_prob=0.0, label_noise=0.0,
                         prototypes_per_class=1, name="tiny-images")
    return make_image_dataset(config, rng=7)


@pytest.fixture(scope="session")
def tiny_text_split() -> TrainTestSplit:
    """A small binary-sentiment task for TextCNN-path tests."""
    config = TextConfig(vocab_size=300, max_length=24, min_length=12,
                        train_size=240, test_size=80, polar_vocab=20,
                        polar_rate=0.35, opposite_rate=0.03,
                        name="tiny-text")
    return make_text_dataset(config, rng=7)


@pytest.fixture
def mlp_factory(tiny_image_split) -> ModelFactory:
    input_dim = int(np.prod(tiny_image_split.train.x.shape[1:]))
    return ModelFactory(MLP, input_dim=input_dim,
                        num_classes=tiny_image_split.num_classes,
                        hidden=(24,))


@pytest.fixture
def toy_dataset() -> Dataset:
    """A deterministic, linearly separable 3-class dataset."""
    rng = np.random.default_rng(0)
    centers = np.array([[2.0, 0.0], [-2.0, 1.5], [0.0, -2.5]])
    x = np.concatenate([rng.normal(c, 0.4, size=(30, 2)) for c in centers])
    y = np.repeat(np.arange(3), 30)
    return Dataset(x, y, num_classes=3, name="toy")
