"""Regression tests: ``backward()`` frees the tape it consumes.

The dispatcher tapes every op (parents, context, saved activations,
pooled workspaces).  Backward must release all of it node-by-node so a
training step's peak memory is bounded by the live graph, not by the
whole history of the step.
"""

import gc
import weakref

import numpy as np

from repro.nn import functional as F
from repro.ops import workspace
from repro.tensor import Tensor, inference_mode

RNG = np.random.default_rng(3)


def t(shape, scale=0.5):
    return Tensor(RNG.normal(size=shape) * scale, requires_grad=True)


class TestTapeFreeing:
    def test_backward_clears_graph_links(self):
        x = t((4, 4))
        y = (x * 2.0).tanh()
        z = y.sum()
        assert z._parents and z._ctx is not None
        z.backward()
        for node in (y, z):
            assert node._parents == ()
            assert node._ctx is None
            assert node._opref is None

    def test_intermediates_collectable_after_backward(self):
        x = t((8, 8))
        y = (x @ x).relu()
        z = y.sum()
        ref = weakref.ref(y)
        del y
        gc.collect()
        # Before backward the tape (z -> parents) pins the activation.
        assert ref() is not None
        z.backward()
        gc.collect()
        # After backward the tape is gone; only `ref` knew about y.
        assert ref() is None

    def test_gradients_survive_tape_freeing(self):
        x = t((3, 3))
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((3, 3), 3.0))

    def test_leaf_grads_accumulate_across_fresh_graphs(self):
        x = t((2, 2))
        (x * 1.0).sum().backward()
        (x * 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 2), 2.0))


class TestWorkspaceReturn:
    def test_conv_workspace_returned_after_backward(self):
        workspace.clear()
        x = t((2, 2, 6, 6))
        w = t((3, 2, 3, 3))
        out = F.conv2d(x, w, None)
        # The im2col buffer is checked out while the graph is alive...
        assert workspace.pooled_bytes() == 0
        out.sum().backward()
        # ...and back in the pool once backward has consumed it.
        assert workspace.pooled_bytes() > 0
        workspace.clear()

    def test_inference_mode_returns_workspace_immediately(self):
        workspace.clear()
        x = Tensor(RNG.normal(size=(2, 2, 6, 6)))
        w = Tensor(RNG.normal(size=(3, 2, 3, 3)) * 0.5)
        with inference_mode():
            F.conv2d(x, w, None)
        assert workspace.pooled_bytes() > 0
        workspace.clear()

    def test_pool_reuses_buffers_across_calls(self):
        workspace.clear()
        first = workspace.acquire((4, 4), np.float64)
        workspace.release(first)
        second = workspace.acquire((4, 4), np.float64)
        assert second is first
        workspace.clear()
