"""Behavioural tests for the Tensor class: taping, accumulation, modes."""

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad


class TestConstruction:
    def test_wraps_array(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64
        assert not t.requires_grad

    def test_scalar_item(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_ensure_passthrough(self):
        t = Tensor([1.0])
        assert Tensor.ensure(t) is t

    def test_ensure_wraps(self):
        t = Tensor.ensure([1.0, 2.0])
        assert isinstance(t, Tensor)
        assert t.shape == (2,)


class TestBackward:
    def test_scalar_backward_default_grad(self):
        x = Tensor(2.0, requires_grad=True)
        (x * x).backward()
        assert x.grad == pytest.approx(4.0)

    def test_backward_requires_grad(self):
        x = Tensor(1.0)
        with pytest.raises(RuntimeError):
            x.backward()

    def test_nonscalar_backward_needs_grad_argument(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()

    def test_gradient_accumulates_across_uses(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * 2.0 + x * 5.0  # x used twice
        y.backward()
        assert x.grad == pytest.approx(7.0)

    def test_gradient_accumulates_across_backward_calls(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2.0).backward()
        (x * 3.0).backward()
        assert x.grad == pytest.approx(5.0)

    def test_zero_grad(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # x -> a, b -> c: both paths must contribute exactly once.
        x = Tensor(2.0, requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        c = a * b  # c = 12 x^2, dc/dx = 24x = 48
        c.backward()
        assert x.grad == pytest.approx(48.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 0.001
        y.backward()
        assert x.grad == pytest.approx(1.0)


class TestNoGrad:
    def test_disables_taping(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()

    def test_detach_cuts_tape(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * 3.0).detach()
        assert not y.requires_grad
        z = y * 5.0
        assert not z.requires_grad


class TestBroadcasting:
    def test_add_broadcast_grad_shapes(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3.0 * np.ones(4))

    def test_mul_broadcast_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.full((2, 1), 2.0), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 1), 3.0))

    def test_scalar_broadcast(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        (a * 2.0 + 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 2.0))


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.reshape(3, 2).sum().backward()
        assert x.grad.shape == (2, 3)

    def test_reshape_minus_one(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.reshape(2, -1).shape == (2, 12)

    def test_transpose_default_reverses(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)

    def test_transpose_axes_grad(self):
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4)),
                   requires_grad=True)
        y = x.transpose(1, 0, 2)
        (y * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3, 4), 2.0))

    def test_getitem_fancy_index_accumulates(self):
        x = Tensor(np.zeros(4), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        s = x.sum(axis=1)
        assert s.shape == (2,)
        s.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_value(self):
        x = Tensor(np.array([[1.0, 3.0], [5.0, 7.0]]))
        assert x.mean().item() == pytest.approx(4.0)
        np.testing.assert_allclose(x.mean(axis=0).numpy(), [3.0, 5.0])

    def test_max_with_ties_splits_gradient(self):
        x = Tensor(np.array([[2.0, 2.0, 1.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_sum_keepdims(self):
        x = Tensor(np.ones((2, 3)))
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)


class TestElementwise:
    def test_relu_zero_grad_at_negatives(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_clip_masks_gradient(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_exp_log_inverse(self):
        x = Tensor(np.array([0.5, 1.5]))
        np.testing.assert_allclose(x.exp().log().numpy(), x.numpy())

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor(2.0) ** Tensor(2.0)

    def test_division_by_tensor(self):
        a = Tensor(6.0, requires_grad=True)
        b = Tensor(2.0, requires_grad=True)
        (a / b).backward()
        assert a.grad == pytest.approx(0.5)
        assert b.grad == pytest.approx(-1.5)

    def test_rsub_rdiv(self):
        x = Tensor(2.0)
        assert (10.0 - x).item() == pytest.approx(8.0)
        assert (10.0 / x).item() == pytest.approx(5.0)
