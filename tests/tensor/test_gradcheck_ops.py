"""Finite-difference verification of every differentiable op."""

import numpy as np
import pytest

from repro.tensor import Tensor, gradcheck
from repro.tensor.ops import (
    concatenate,
    l2norm,
    log_softmax,
    pad2d,
    softmax,
    stack,
    where,
)

RNG = np.random.default_rng(42)


def t(shape, scale=1.0, positive=False):
    data = RNG.normal(size=shape) * scale
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


class TestArithmeticGrads:
    def test_add(self):
        assert gradcheck(lambda a, b: a + b, [t((3, 4)), t((3, 4))])

    def test_add_broadcast(self):
        assert gradcheck(lambda a, b: a + b, [t((3, 4)), t((4,))])

    def test_sub(self):
        assert gradcheck(lambda a, b: a - b, [t((2, 3)), t((2, 3))])

    def test_mul(self):
        assert gradcheck(lambda a, b: a * b, [t((3, 2)), t((3, 2))])

    def test_mul_broadcast(self):
        assert gradcheck(lambda a, b: a * b, [t((3, 4)), t((3, 1))])

    def test_div(self):
        assert gradcheck(lambda a, b: a / b, [t((2, 2)), t((2, 2), positive=True)])

    def test_neg(self):
        assert gradcheck(lambda a: -a, [t((5,))])

    def test_pow(self):
        assert gradcheck(lambda a: a ** 3, [t((4,))])

    def test_sqrt(self):
        assert gradcheck(lambda a: a.sqrt(), [t((4,), positive=True)])

    def test_matmul(self):
        assert gradcheck(lambda a, b: a @ b, [t((3, 4)), t((4, 2))])

    def test_matmul_batched(self):
        assert gradcheck(lambda a, b: a @ b, [t((2, 3, 4)), t((2, 4, 2))])


class TestNonlinearityGrads:
    def test_exp(self):
        assert gradcheck(lambda a: a.exp(), [t((3,), scale=0.5)])

    def test_log(self):
        assert gradcheck(lambda a: a.log(), [t((3,), positive=True)])

    def test_tanh(self):
        assert gradcheck(lambda a: a.tanh(), [t((4,))])

    def test_sigmoid(self):
        assert gradcheck(lambda a: a.sigmoid(), [t((4,))])

    def test_relu_away_from_kink(self):
        data = RNG.normal(size=(10,))
        data[np.abs(data) < 0.1] = 0.5
        assert gradcheck(lambda a: a.relu(), [Tensor(data, requires_grad=True)])


class TestReductionGrads:
    def test_sum_all(self):
        assert gradcheck(lambda a: a.sum(), [t((3, 4))])

    def test_sum_axis(self):
        assert gradcheck(lambda a: a.sum(axis=0), [t((3, 4))])

    def test_sum_negative_axis(self):
        assert gradcheck(lambda a: a.sum(axis=-1), [t((3, 4))])

    def test_mean(self):
        assert gradcheck(lambda a: a.mean(axis=1), [t((3, 4))])

    def test_max(self):
        # Distinct values so the max is differentiable.
        data = np.arange(12.0).reshape(3, 4)
        RNG.shuffle(data.reshape(-1))
        assert gradcheck(lambda a: a.max(axis=1),
                         [Tensor(data, requires_grad=True)])


class TestStructuralGrads:
    def test_reshape(self):
        assert gradcheck(lambda a: a.reshape(6, 2), [t((3, 4))])

    def test_transpose(self):
        assert gradcheck(lambda a: a.transpose(1, 0), [t((3, 4))])

    def test_getitem_slice(self):
        assert gradcheck(lambda a: a[1:3], [t((5, 2))])

    def test_concatenate(self):
        assert gradcheck(lambda a, b: concatenate([a, b], axis=1),
                         [t((2, 3)), t((2, 2))])

    def test_stack(self):
        assert gradcheck(lambda a, b: stack([a, b], axis=0),
                         [t((2, 3)), t((2, 3))])

    def test_pad2d(self):
        assert gradcheck(lambda a: pad2d(a, 2), [t((1, 2, 3, 3))])

    def test_where(self):
        condition = RNG.random((3, 3)) > 0.5
        assert gradcheck(lambda a, b: where(condition, a, b),
                         [t((3, 3)), t((3, 3))])


class TestSoftmaxFamilyGrads:
    def test_softmax(self):
        assert gradcheck(lambda a: softmax(a, axis=1), [t((3, 5))])

    def test_softmax_axis0(self):
        assert gradcheck(lambda a: softmax(a, axis=0), [t((4, 2))])

    def test_log_softmax(self):
        assert gradcheck(lambda a: log_softmax(a, axis=1), [t((3, 5))])

    def test_l2norm(self):
        assert gradcheck(lambda a: l2norm(a, axis=1), [t((4, 6))])

    def test_l2norm_finite_gradient_at_zero(self):
        x = Tensor(np.zeros((2, 3)), requires_grad=True)
        l2norm(x, axis=1).sum().backward()
        assert np.all(np.isfinite(x.grad))


class TestCompositeGrads:
    def test_mlp_like_composition(self):
        w1, w2 = t((4, 8), scale=0.5), t((8, 3), scale=0.5)
        x = t((5, 4))

        def network(x_in, a, b):
            return softmax((x_in @ a).relu() @ b, axis=1)

        assert gradcheck(network, [x, w1, w2])

    def test_residual_composition(self):
        x = t((3, 4))
        w = t((4, 4), scale=0.3)
        assert gradcheck(lambda a, b: ((a @ b).relu() + a).sum(axis=1), [x, w])
