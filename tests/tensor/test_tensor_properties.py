"""Hypothesis property tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import Tensor
from repro.tensor.ops import l2norm, log_softmax, softmax

finite_floats = st.floats(min_value=-10.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False)


def matrices(min_rows=1, max_rows=5, min_cols=2, max_cols=6):
    shapes = st.tuples(st.integers(min_rows, max_rows),
                       st.integers(min_cols, max_cols))
    return shapes.flatmap(lambda s: arrays(np.float64, s, elements=finite_floats))


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_softmax_rows_are_distributions(data):
    probs = softmax(Tensor(data), axis=1).numpy()
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_log_softmax_matches_log_of_softmax(data):
    a = log_softmax(Tensor(data), axis=1).numpy()
    b = np.log(softmax(Tensor(data), axis=1).numpy() + 1e-300)
    np.testing.assert_allclose(a, b, atol=1e-8)


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_softmax_shift_invariance(data):
    a = softmax(Tensor(data), axis=1).numpy()
    b = softmax(Tensor(data + 100.0), axis=1).numpy()
    np.testing.assert_allclose(a, b, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_l2norm_nonnegative_and_bounded_by_l1(data):
    norms = l2norm(Tensor(data), axis=1).numpy()
    l1 = np.abs(data).sum(axis=1)
    assert np.all(norms >= 0)
    assert np.all(norms <= l1 + 1e-6)


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_addition_commutes(data):
    a = Tensor(data)
    b = Tensor(data[::-1].copy())
    np.testing.assert_allclose((a + b).numpy(), (b + a).numpy())


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_sum_then_backward_gives_ones(data):
    x = Tensor(data, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))


@settings(max_examples=60, deadline=None)
@given(matrices(), finite_floats)
def test_linearity_of_gradients(data, scale):
    x1 = Tensor(data, requires_grad=True)
    (x1 * scale).sum().backward()
    np.testing.assert_allclose(x1.grad, np.full_like(data, scale), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(matrices(min_cols=2, max_cols=4))
def test_reshape_preserves_grad_mass(data):
    x = Tensor(data, requires_grad=True)
    x.reshape(-1).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))
