"""Tensor construction rejects non-numeric payloads with a clear error.

Mirrors MyGrad's ``_check_valid_dtype``: an object/str/complex array
fails *at the Tensor boundary* with a message naming the offending
dtype, instead of ten kernels later with a numpy cast error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, check_valid_dtype, default_dtype


class TestInvalidPayloads:
    @pytest.mark.parametrize("payload", [
        np.array(["a", "b"]),
        np.array([object(), object()], dtype=object),
        np.array([1 + 2j, 3 - 1j]),
        ["x", "y"],
        [{"nested": 1}],
    ])
    def test_rejected_with_clear_message(self, payload):
        with pytest.raises(TypeError, match="real-numeric"):
            Tensor(payload)

    def test_explicit_invalid_dtype_rejected(self):
        with pytest.raises(TypeError, match="real-numeric"):
            Tensor([1.0, 2.0], dtype=object)

    def test_message_names_the_dtype(self):
        with pytest.raises(TypeError, match="complex"):
            Tensor(np.zeros(2, dtype=np.complex128))


class TestValidPayloads:
    def test_bool_arrays_are_valid(self):
        mask = Tensor(np.array([True, False]))
        assert mask.data.dtype == default_dtype()  # non-float -> default

    def test_int_arrays_convert_to_default(self):
        t = Tensor(np.arange(4))
        assert t.data.dtype == default_dtype()

    def test_float_arrays_keep_dtype(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.data.dtype == np.float32

    def test_explicit_dtype_honoured(self):
        t = Tensor([1, 2, 3], dtype=np.float32)
        assert t.data.dtype == np.float32


class TestCheckValidDtype:
    def test_returns_resolved_dtype(self):
        assert check_valid_dtype("float32") == np.dtype(np.float32)
        assert check_valid_dtype(np.int64) == np.dtype(np.int64)

    def test_context_appears_in_message(self):
        with pytest.raises(TypeError, match="gradient payload"):
            check_valid_dtype(object, context="gradient payload")
