"""The single-dtype policy: float32 library default, float64 under tests.

``repro.tensor.dtypes`` holds the policy; ``_as_array`` applies it: data
without a float dtype takes the default, existing float arrays keep
theirs.  These tests run real float32 forward/backward passes to catch
silent float64 upcasts (python scalars, init draws, normalisation
buffers) that the float64-pinned rest of the suite cannot see.
"""

import numpy as np
import pytest

from repro.models import MLP
from repro.nn.losses import cross_entropy
from repro.tensor import Tensor, default_dtype, dtype_scope, set_default_dtype


class TestPolicy:
    def test_suite_pins_float64(self):
        # tests/conftest.py pins float64 for tight gradchecks and the
        # golden fingerprints; this is the policy's test-suite face.
        assert default_dtype() == np.float64

    def test_scope_switches_and_restores(self):
        with dtype_scope(np.float32):
            assert default_dtype() == np.float32
        assert default_dtype() == np.float64

    def test_set_default_dtype_rejects_non_float(self):
        with pytest.raises((TypeError, ValueError)):
            set_default_dtype(np.int32)

    def test_python_data_takes_default(self):
        with dtype_scope(np.float32):
            assert Tensor([1.0, 2.0]).data.dtype == np.float32
            assert Tensor(3.0).data.dtype == np.float32
            assert Tensor([1, 2, 3]).data.dtype == np.float32

    def test_existing_float_arrays_keep_their_dtype(self):
        with dtype_scope(np.float32):
            kept = Tensor(np.zeros(3, dtype=np.float64))
            assert kept.data.dtype == np.float64
        assert Tensor(np.zeros(3, dtype=np.float32)).data.dtype == np.float32


class TestFloat32EndToEnd:
    def test_forward_backward_stays_float32(self):
        with dtype_scope(np.float32):
            rng = np.random.default_rng(0)
            model = MLP(input_dim=6, num_classes=3, hidden=(8,), rng=rng)
            for param in model.parameters():
                assert param.data.dtype == np.float32

            x = rng.normal(size=(5, 6))  # float64 input: model casts it
            labels = rng.integers(0, 3, size=5)
            logits = model(x)
            assert logits.data.dtype == np.float32

            loss = cross_entropy(logits, labels)
            assert loss.data.dtype == np.float32
            loss.backward()
            for param in model.parameters():
                assert param.grad.dtype == np.float32

    def test_scalar_ops_do_not_upcast(self):
        with dtype_scope(np.float32):
            x = Tensor(np.ones((4, 3), dtype=np.float32), requires_grad=True)
            out = ((x * 2.0 + 1.0) / 3.0).mean(axis=1)
            assert out.data.dtype == np.float32
            out.sum().backward()
            assert x.grad.dtype == np.float32

    def test_softmax_chain_stays_float32(self):
        from repro.tensor.ops import log_softmax, softmax

        with dtype_scope(np.float32):
            data = np.random.default_rng(1).normal(size=(4, 5))
            x = Tensor(data.astype(np.float32), requires_grad=True)
            assert softmax(x, axis=1).data.dtype == np.float32
            assert log_softmax(x, axis=1).data.dtype == np.float32
