"""Runtime numerics sanitizer: catches NaN/Inf, dtype drift and bad
shapes at the dispatch choke point, and costs nothing when off.

The failure tests register stub kernels that *deliberately* violate an
invariant mid-graph, then assert the resulting :class:`SanitizerError`
names the offending op and the shapes involved — the whole point is that
a NaN born deep in a network points at its kernel, not at the loss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ops import registry
from repro.ops.profiler import profile_ops
from repro.tensor import (
    SanitizerError,
    Tensor,
    apply,
    sanitize_enabled,
    sanitize_mode,
)


@pytest.fixture
def stub_op():
    """Register throwaway kernels, removed again after the test."""
    names = []

    def make(name, forward, backward=None, tags=()):
        registry.register(name, forward, backward, tags=tags)
        names.append(name)
        return name

    yield make
    for name in names:
        registry._OPS.pop(name, None)


def _passthrough_fwd(ctx, x):
    ctx.shape = x.shape
    return x * 1.0


class TestForwardChecks:
    def test_nan_injected_mid_graph_names_op_and_shapes(self, stub_op):
        def poison(ctx, x):
            out = x * 1.0
            out.flat[0] = np.nan
            return out

        stub_op("test_poison", poison, lambda ctx, grad: (grad,))
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        hidden = x * 2.0  # the NaN is born one op *after* a healthy one
        with sanitize_mode():
            with pytest.raises(SanitizerError) as excinfo:
                apply("test_poison", (hidden,))
        error = excinfo.value
        assert error.op_name == "test_poison"
        assert error.check == "non-finite"
        assert "1 NaN/Inf value(s)" in str(error)
        assert "(3, 4)" in str(error)  # input shape in the message

    def test_output_dtype_drift_detected(self, stub_op):
        stub_op("test_upcast", lambda ctx, x: x.astype(np.float64),
                lambda ctx, grad: (grad,))
        x = Tensor(np.ones(3, dtype=np.float32))
        with sanitize_mode():
            with pytest.raises(SanitizerError) as excinfo:
                apply("test_upcast", (x,))
        assert excinfo.value.check == "dtype-drift"
        assert "float64" in str(excinfo.value)
        assert "float32" in str(excinfo.value)

    def test_disagreeing_input_dtypes_detected(self, stub_op):
        stub_op("test_mix", lambda ctx, a, b: a * 1.0,
                lambda ctx, grad: (grad, None))
        a = Tensor(np.ones(3, dtype=np.float32))
        b = Tensor(np.ones(3, dtype=np.float64))
        with sanitize_mode():
            with pytest.raises(SanitizerError, match="float inputs disagree"):
                apply("test_mix", (a, b))

    def test_elementwise_shape_contract(self, stub_op):
        stub_op("test_truncate", lambda ctx, x: (x * 1.0)[:2],
                lambda ctx, grad: (grad,), tags=("elementwise",))
        x = Tensor(np.ones(5))
        with sanitize_mode():
            with pytest.raises(SanitizerError) as excinfo:
                apply("test_truncate", (x,))
        assert excinfo.value.check == "shape"
        assert "(2,)" in str(excinfo.value) and "(5,)" in str(excinfo.value)

    def test_non_array_output_rejected(self, stub_op):
        stub_op("test_listy", lambda ctx, x: list(x),
                lambda ctx, grad: (grad,))
        x = Tensor(np.ones(3))
        with sanitize_mode():
            with pytest.raises(SanitizerError, match="not an ndarray"):
                apply("test_listy", (x,))


class TestBackwardChecks:
    def test_nan_gradient_names_index_and_parent_shape(self, stub_op):
        def bad_bwd(ctx, grad):
            poisoned = np.full(ctx.shape, np.inf)
            return (poisoned,)

        stub_op("test_bad_grad", _passthrough_fwd, bad_bwd)
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        y = apply("test_bad_grad", (x,))
        with sanitize_mode():
            with pytest.raises(SanitizerError) as excinfo:
                y.sum().backward()
        error = excinfo.value
        assert error.op_name == "test_bad_grad"
        assert "gradient #0" in str(error)
        assert "(2, 3)" in str(error)


class TestOffPath:
    def test_poisoned_op_passes_when_sanitizer_off(self, stub_op):
        stub_op("test_quiet_nan", lambda ctx, x: x * np.nan,
                lambda ctx, grad: (grad,))
        x = Tensor(np.ones(3))
        out = apply("test_quiet_nan", (x,))  # no sanitize_mode: no raise
        assert np.isnan(out.data).all()

    def test_dispatch_counts_and_results_identical(self):
        # The sanitizer must not dispatch ops of its own (raw numpy
        # checks only), or golden-run parity would break: same graph,
        # same per-op call counts, bit-identical numbers either way.
        def run():
            x = Tensor(np.linspace(-1.0, 1.0, 12).reshape(3, 4),
                       requires_grad=True)
            y = ((x * x + x).tanh()).mean()
            y.backward()
            return x, y

        with profile_ops() as plain:
            x0, y0 = run()
        with profile_ops() as sanitized:
            with sanitize_mode():
                x1, y1 = run()

        def counts(profiler):
            return {name: (row["forward_calls"], row["backward_calls"])
                    for name, row in profiler.summary().items()}

        assert counts(plain) == counts(sanitized)
        assert y0.data.tobytes() == y1.data.tobytes()
        assert x0.grad.tobytes() == x1.grad.tobytes()


class TestModeFlag:
    def test_nesting_and_restore(self):
        assert not sanitize_enabled()
        with sanitize_mode():
            assert sanitize_enabled()
            with sanitize_mode(False):
                assert not sanitize_enabled()
            assert sanitize_enabled()
        assert not sanitize_enabled()

    def test_clean_graph_is_untouched(self):
        x = Tensor(np.ones((4, 2)), requires_grad=True)
        with sanitize_mode():
            y = (x * 3.0 + 1.0).sum()
            y.backward()
        assert y.data == pytest.approx(32.0)
        assert x.grad == pytest.approx(np.full((4, 2), 3.0))
