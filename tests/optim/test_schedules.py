"""Learning-rate schedule tests, including the paper's protocols."""

import math

import pytest

from repro.optim import ConstantLR, CosineAnnealingLR, SnapshotCyclicLR, StepLR


class TestStepLR:
    def test_paper_protocol(self):
        # "divide by 10 at 50% and 75% of total epochs" (Sec. V-A).
        schedule = StepLR(0.1, total_epochs=100)
        assert schedule.lr_at(0) == pytest.approx(0.1)
        assert schedule.lr_at(49) == pytest.approx(0.1)
        assert schedule.lr_at(50) == pytest.approx(0.01)
        assert schedule.lr_at(74) == pytest.approx(0.01)
        assert schedule.lr_at(75) == pytest.approx(0.001)
        assert schedule.lr_at(99) == pytest.approx(0.001)

    def test_custom_milestones(self):
        schedule = StepLR(1.0, total_epochs=10, milestones=(0.2,), factor=2.0)
        assert schedule.lr_at(1) == pytest.approx(1.0)
        assert schedule.lr_at(2) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(0.1, total_epochs=0)


class TestCosineAnnealing:
    def test_endpoints(self):
        schedule = CosineAnnealingLR(0.1, total_epochs=50)
        assert schedule.lr_at(0) == pytest.approx(0.1)
        assert schedule.lr_at(49) == pytest.approx(0.0, abs=1e-9)

    def test_monotone_decreasing(self):
        schedule = CosineAnnealingLR(0.1, total_epochs=20)
        rates = [schedule.lr_at(e) for e in range(20)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_min_lr(self):
        schedule = CosineAnnealingLR(0.1, total_epochs=10, min_lr=0.01)
        assert schedule.lr_at(9) == pytest.approx(0.01)

    def test_single_epoch(self):
        assert CosineAnnealingLR(0.1, total_epochs=1).lr_at(0) == pytest.approx(0.1)


class TestSnapshotCyclic:
    def test_loshchilov_hutter_formula(self):
        schedule = SnapshotCyclicLR(0.2, cycle_length=10)
        for epoch in range(30):
            expected = 0.1 * (math.cos(math.pi * (epoch % 10) / 10) + 1.0)
            assert schedule.lr_at(epoch) == pytest.approx(expected)

    def test_restarts_at_cycle_boundary(self):
        schedule = SnapshotCyclicLR(0.1, cycle_length=5)
        assert schedule.lr_at(5) == pytest.approx(0.1)
        assert schedule.lr_at(4) < 0.02

    def test_cycle_end_detection(self):
        schedule = SnapshotCyclicLR(0.1, cycle_length=5)
        ends = [e for e in range(15) if schedule.is_cycle_end(e)]
        assert ends == [4, 9, 14]

    def test_validation(self):
        with pytest.raises(ValueError):
            SnapshotCyclicLR(0.1, cycle_length=0)


class TestConstant:
    def test_constant(self):
        schedule = ConstantLR(0.05)
        assert schedule.lr_at(0) == schedule.lr_at(1000) == 0.05
