"""SGD / Adam behaviour on analytic objectives."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, Adam


def quadratic_step(optimizer, param, target=3.0):
    """One gradient step on f(w) = (w - target)^2 / 2."""
    param.zero_grad()
    param.grad = param.data - target
    optimizer.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        w = Parameter(np.array([10.0]))
        opt = SGD([w], lr=0.1, momentum=0.0)
        for _ in range(200):
            quadratic_step(opt, w)
        assert w.data[0] == pytest.approx(3.0, abs=1e-6)

    def test_momentum_accelerates(self):
        def distance_after(momentum, steps=15):
            w = Parameter(np.array([10.0]))
            opt = SGD([w], lr=0.02, momentum=momentum)
            for _ in range(steps):
                quadratic_step(opt, w)
            return abs(w.data[0] - 3.0)

        assert distance_after(0.9) < distance_after(0.0)

    def test_weight_decay_shrinks(self):
        w = Parameter(np.array([5.0]))
        opt = SGD([w], lr=0.1, momentum=0.0, weight_decay=1.0)
        w.grad = np.zeros(1)
        opt.step()
        assert w.data[0] < 5.0

    def test_nesterov_runs(self):
        w = Parameter(np.array([10.0]))
        opt = SGD([w], lr=0.05, momentum=0.9, nesterov=True)
        for _ in range(100):
            quadratic_step(opt, w)
        assert abs(w.data[0] - 3.0) < 0.5

    def test_skips_none_grads(self):
        w = Parameter(np.array([1.0]))
        opt = SGD([w], lr=0.1)
        opt.step()  # no grad set: must be a no-op, not a crash
        assert w.data[0] == 1.0

    def test_set_lr(self):
        w = Parameter(np.array([1.0]))
        opt = SGD([w], lr=0.1)
        opt.set_lr(0.01)
        assert opt.lr == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)

    def test_zero_grad_clears(self):
        w = Parameter(np.array([1.0]))
        opt = SGD([w], lr=0.1)
        w.grad = np.ones(1)
        opt.zero_grad()
        assert w.grad is None


class TestAdam:
    def test_converges_on_quadratic(self):
        w = Parameter(np.array([10.0]))
        opt = Adam([w], lr=0.3)
        for _ in range(300):
            quadratic_step(opt, w)
        assert w.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, |first step| ~= lr regardless of grad scale.
        w = Parameter(np.array([0.0]))
        opt = Adam([w], lr=0.1)
        w.grad = np.array([1000.0])
        opt.step()
        assert abs(w.data[0]) == pytest.approx(0.1, rel=1e-3)

    def test_weight_decay(self):
        w = Parameter(np.array([5.0]))
        opt = Adam([w], lr=0.1, weight_decay=1.0)
        w.grad = np.zeros(1)
        opt.step()
        assert w.data[0] < 5.0
