"""The serving stack under ``lock_order_mode`` + scheduler race regressions."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.concurrency import lock_order_mode
from repro.experiments.serve_chaos import ChaosConfig, run_chaos_suite
from repro.serving.scheduler import MicroBatcher


def _ledger(payload):
    """The cross-run comparable slice of a chaos payload."""
    return [{key: run[key] for key in ("seed", "arrivals", "submitted",
                                       "admitted", "shed", "completed",
                                       "failed", "member_deaths",
                                       "brownout_batches")}
            for run in payload["runs"]]


class TestChaosUnderSanitizer:
    @pytest.fixture(scope="class")
    def config(self):
        # 20 seeded schedules, shortened horizon: the smoke bar the
        # issue sets, at test-suite latency.
        return ChaosConfig(schedules=20, horizon_s=0.5, events=4)

    def test_twenty_schedules_zero_violations(self, config):
        payload = run_chaos_suite(config, lock_sanitizer=True)
        assert payload["lock_sanitizer"] is True
        assert payload["lock_order_violations"] == 0
        assert payload["ok"], payload["failed_seeds"]
        assert all(run["invariants"]["lock_order"] for run in payload["runs"])

    def test_sanitized_ledger_bit_identical_to_unsanitized(self, config):
        plain = run_chaos_suite(config, lock_sanitizer=False)
        sanitized = run_chaos_suite(config, lock_sanitizer=True)
        # The sanitizer observes; it must not perturb a single count.
        assert _ledger(plain) == _ledger(sanitized)


class TestSchedulerRaceRegressions:
    """The two real RL006 findings this pass fixed, as living tests."""

    def test_batch_counters_bump_under_the_queue_lock(self):
        # Pre-fix, _dispatch bumped batches_formed/requests_batched
        # outside the lock; concurrent pumps could tear the counters.
        # Post-fix they move inside _form_batch (lock held), so many
        # concurrent pump_once calls must account for every request.
        processed = []
        batcher = MicroBatcher(
            process=lambda stacked, batch: processed.append(len(batch)),
            max_batch_rows=4, max_wait_ms=0.0, queue_depth=512)
        rows = np.zeros((1, 3), dtype=np.float32)
        for index in range(200):
            batcher.submit(rows, ticket=index)

        workers = [threading.Thread(target=lambda: [batcher.pump_once()
                                                    for _ in range(40)])
                   for _ in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        while batcher.pump_once():
            pass
        assert batcher.requests_batched == 200
        assert batcher.batches_formed == len(processed)
        assert sum(processed) == 200

    def test_concurrent_stop_joins_the_pump_exactly_once(self):
        # Pre-fix, stop() read/cleared self._pump outside the lock; two
        # racing stop() calls could both join (or one could miss the
        # clear and join a half-torn handle).  Post-fix the handle is
        # claimed under the lock, so double-stop is safe and idempotent.
        batcher = MicroBatcher(process=lambda stacked, batch: None,
                               max_batch_rows=4, max_wait_ms=0.5)
        batcher.start()
        stoppers = [threading.Thread(target=batcher.stop)
                    for _ in range(4)]
        for thread in stoppers:
            thread.start()
        for thread in stoppers:
            thread.join(timeout=10)
        assert not any(thread.is_alive() for thread in stoppers)
        assert batcher._pump is None
        with pytest.raises(Exception):
            batcher.submit(np.zeros((1, 3), dtype=np.float32), ticket=0)
