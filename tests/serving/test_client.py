"""The retrying client: backoff, retry_after, budgets, hedging.

Everything runs against a scripted fake pipeline on a
:class:`ManualClock` — the client's clock and sleep are injected, so
every retry and hedge decision is exact virtual-time arithmetic, not a
wall-clock race.
"""

import numpy as np
import pytest

from repro.serving import InvalidRequest, Overloaded, QueueFull, \
    ServiceUnavailable
from repro.serving.client import ClientStats, RetryConfig, RetryingClient
from repro.serving.faults import ManualClock

X = np.zeros((2, 4), dtype=np.float32)


class FakePrediction:
    def __init__(self, tag):
        self.tag = tag


class FakeTicket:
    """Completes at an absolute clock time; honours wait() semantics."""

    def __init__(self, clock, ready_at, prediction=None, error=None):
        self.clock = clock
        self.ready_at = float(ready_at)
        self.prediction = prediction
        self.error = error

    @property
    def done(self):
        return self.clock.now >= self.ready_at

    @property
    def failed(self):
        return self.done and self.error is not None

    def wait(self, timeout=None):
        if not self.done:
            if timeout is not None and \
                    self.clock.now + timeout < self.ready_at:
                self.clock.advance(timeout)
                raise TimeoutError(f"not ready within {timeout}")
            self.clock.now = self.ready_at
        if self.error is not None:
            raise self.error
        return self.prediction


class FakePipeline:
    """Pops one scripted outcome per submit().

    Script entries: an exception instance (submit raises it), a float
    (a ticket completing that many seconds from now) or a tuple
    ``(delay, error)`` (a ticket failing after ``delay``).
    """

    def __init__(self, clock, script):
        self.clock = clock
        self.script = list(script)
        self.submissions = 0

    def submit(self, x, deadline=None):
        self.submissions += 1
        entry = self.script.pop(0)
        if isinstance(entry, BaseException):
            raise entry
        if isinstance(entry, tuple):
            delay, error = entry
            return FakeTicket(self.clock, self.clock.now + delay,
                              error=error)
        return FakeTicket(self.clock, self.clock.now + float(entry),
                          prediction=FakePrediction(self.submissions))


def make_client(script, clock=None, **config):
    clock = clock or ManualClock()
    pipeline = FakePipeline(clock, script)
    client = RetryingClient(pipeline, RetryConfig(**config),
                            clock=clock, sleep=clock.advance)
    return client, pipeline, clock


# ----------------------------------------------------------------------
class TestRetries:
    def test_first_attempt_success_makes_no_retry(self):
        client, pipeline, _ = make_client([0.01])
        prediction = client.predict(X)
        assert prediction.tag == 1
        assert client.stats.attempts == 1 and client.stats.retries == 0
        assert client.stats.failures == 0

    def test_retry_after_is_a_floor_on_the_backoff(self):
        client, _, clock = make_client(
            [Overloaded("shed", retry_after=0.3), 0.01],
            base_delay=0.001, max_delay=0.002)
        client.predict(X)
        assert client.stats.retries == 1
        assert client.stats.shed_seen == 1
        assert client.stats.slept >= 0.3            # jitter clamped up
        assert clock.now >= 0.3

    def test_queue_full_counts_as_shed_and_is_retried(self):
        client, _, _ = make_client(
            [QueueFull("full", retry_after=0.05), 0.01])
        client.predict(X)
        assert client.stats.shed_seen == 1
        assert client.stats.errors_seen == {"queue-full": 1}

    def test_invalid_request_is_never_retried(self):
        client, pipeline, _ = make_client(
            [InvalidRequest("bad payload"), 0.01])
        with pytest.raises(InvalidRequest):
            client.predict(X)
        assert pipeline.submissions == 1
        assert client.stats.failures == 1
        assert client.stats.retries == 0

    def test_exhaustion_reraises_the_last_error(self):
        errors = [Overloaded(f"shed {n}", retry_after=0.01)
                  for n in range(3)]
        client, pipeline, _ = make_client(errors, max_attempts=3)
        with pytest.raises(Overloaded) as caught:
            client.predict(X)
        assert "shed 2" in str(caught.value)
        assert pipeline.submissions == 3
        assert client.stats.failures == 1

    def test_jitter_is_bounded_and_seeded(self):
        script = [ServiceUnavailable("down")] * 3 + [0.0]
        slept = []
        for _ in range(2):
            client, _, _ = make_client(
                list(script), base_delay=0.05, max_delay=0.1, seed=9,
                max_attempts=4)
            client.predict(X)
            assert client.stats.slept <= 0.05 + 0.1 + 0.1   # sum of caps
            slept.append(client.stats.slept)
        assert slept[0] == slept[1]                 # same seed, same jitter

    def test_budget_stops_retrying_early(self):
        client, pipeline, _ = make_client(
            [Overloaded("shed", retry_after=5.0)] * 4,
            max_attempts=4, budget=1.0)
        with pytest.raises(Overloaded):
            client.predict(X)
        assert pipeline.submissions == 1            # sleep would blow it
        assert client.stats.slept == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RetryConfig(max_attempts=0)
        with pytest.raises(ValueError):
            RetryConfig(base_delay=0.5, max_delay=0.1)
        with pytest.raises(ValueError):
            RetryConfig(budget=0.0)


# ----------------------------------------------------------------------
class TestHedging:
    def test_hedge_wins_a_slow_primary(self):
        client, pipeline, _ = make_client(
            [1.0, 0.01], hedge=True, hedge_delay=0.05)
        prediction = client.predict(X)
        assert prediction.tag == 2                  # the hedge answered
        assert client.stats.hedges == 1
        assert client.stats.hedge_wins == 1
        assert pipeline.submissions == 2

    def test_fast_primary_never_hedges(self):
        client, pipeline, _ = make_client(
            [0.01], hedge=True, hedge_delay=0.05)
        client.predict(X)
        assert client.stats.hedges == 0
        assert pipeline.submissions == 1

    def test_shed_hedge_is_dropped_not_retried(self):
        client, pipeline, _ = make_client(
            [0.2, Overloaded("shed", retry_after=9.0)],
            hedge=True, hedge_delay=0.05)
        prediction = client.predict(X)
        assert prediction.tag == 1                  # primary still answers
        assert client.stats.hedges == 1
        assert client.stats.hedge_wins == 0
        assert client.stats.shed_seen == 1
        assert client.stats.retries == 0            # hedge shed != retry
        assert pipeline.submissions == 2

    def test_failed_hedge_falls_back_to_primary(self):
        client, _, _ = make_client(
            [0.2, (0.01, ServiceUnavailable("member loss"))],
            hedge=True, hedge_delay=0.05)
        prediction = client.predict(X)
        assert prediction.tag == 1
        assert client.stats.hedge_wins == 0

    def test_both_failing_reraises_the_primary_error(self):
        primary_error = ServiceUnavailable("primary down")
        client, _, _ = make_client(
            [(0.2, primary_error),
             (0.01, ServiceUnavailable("hedge down"))] +
            [Overloaded("shed")] * 3,
            hedge=True, hedge_delay=0.05, max_attempts=2)
        with pytest.raises(ServiceUnavailable):
            client.predict(X)
        # The primary's failure is what was recorded and retried.
        assert client.stats.errors_seen.get("service-unavailable", 0) >= 1

    def test_hedging_disabled_until_p95_data_exists(self):
        client, pipeline, _ = make_client(
            [0.01] * 3 + [5.0], hedge=True, hedge_delay=None,
            hedge_min_samples=3)
        assert client._hedge_delay() is None        # no bootstrap, no data
        for _ in range(3):
            client.predict(X)
        expected = float(np.percentile(
            np.asarray(client._latencies), 95))
        assert client._hedge_delay() == pytest.approx(expected)

    def test_latency_window_is_bounded(self):
        client, _, _ = make_client([0.01] * 6, latency_window=4)
        for _ in range(6):
            client.predict(X)
        assert len(client._latencies) == 4


class TestStatsShape:
    def test_stats_start_zeroed(self):
        stats = ClientStats()
        assert stats.calls == 0 and stats.errors_seen == {}
