"""Shared serving fixtures: a small saved ensemble and request batches.

Everything here is MLP-sized so the whole serving suite runs in seconds;
the trained-method coverage (EDDE + a baseline through the real engine)
lives in ``test_loading.py`` and reuses the session-scoped tiny split
from the root conftest.
"""

import numpy as np
import pytest

from repro.core import Ensemble, save_ensemble
from repro.models import MLP, ModelFactory

RNG = np.random.default_rng(23)


@pytest.fixture
def factory():
    return ModelFactory(MLP, input_dim=4, num_classes=3, hidden=(6,))


@pytest.fixture
def ensemble(factory):
    """Four members with distinct α so renormalisation is observable."""
    ensemble = Ensemble()
    for seed in range(4):
        ensemble.add(factory.build(rng=seed), alpha=seed + 0.5)
    return ensemble


@pytest.fixture
def saved(ensemble, tmp_path):
    path = tmp_path / "ensemble.npz"
    save_ensemble(ensemble, path)
    return path


@pytest.fixture
def request_batch():
    return RNG.normal(size=(10, 4))


def sub_ensemble(ensemble, indices):
    """A fresh ensemble of the chosen members, α preserved."""
    subset = Ensemble()
    for index in indices:
        subset.add(ensemble.models[index], ensemble.alphas[index])
    return subset
