"""Chaos testing: seeded fault schedules, invariants, fault containment.

The chaos harness's job is to prove *correctness under compound
failure*: whatever a schedule throws at the pipeline (arrival storms,
pump stalls, slow bursts, executor-task deaths), every admitted ticket
resolves, no batch tears, and the overload ledger balances.  These
tests drive both the primitives (the fault wrappers, the executor's
thread-death firewall) and the full seeded replay.
"""

import numpy as np
import pytest

from repro.experiments.serve_chaos import (
    ChaosConfig,
    chaos_arrivals,
    run_chaos_schedule,
    run_chaos_suite,
)
from repro.experiments.serve_overload import (
    OverloadConfig,
    _payloads,
    _pipeline,
    build_overload_service,
    replay,
)
from repro.serving.executor import MemberExecutor
from repro.serving.faults import (
    BurstySlowMember,
    ChaosEvent,
    ChaosSchedule,
    DyingMember,
    InjectedThreadDeath,
    ManualClock,
)
from repro.serving.transport import PipelineConfig, ServingPipeline

from tests.serving.test_pipeline import make_service

RNG = np.random.default_rng(53)


def small_service_config():
    return OverloadConfig(ensemble_size=4, input_dim=8, num_classes=4,
                          hidden=(8,), rows=4, member_seconds=0.002,
                          max_batch_rows=16, queue_depth=16,
                          horizon_s=1.0)


# ----------------------------------------------------------------------
class TestFaultPrimitives:
    def test_dying_member_dies_on_scheduled_calls(self, factory):
        model = DyingMember(factory.build(rng=0), on_calls=(1,))
        x = RNG.normal(size=(2, 4)).astype(np.float32)
        model(x)
        with pytest.raises(InjectedThreadDeath):
            model(x)
        model(x)
        assert model.calls == 3 and model.deaths == 1

    def test_dying_member_dies_inside_clock_windows(self, factory):
        clock = ManualClock()
        model = DyingMember(factory.build(rng=0),
                            windows=[(1.0, 2.0)], clock=clock)
        x = RNG.normal(size=(2, 4)).astype(np.float32)
        model(x)                                   # t=0: alive
        clock.now = 1.5
        with pytest.raises(InjectedThreadDeath):
            model(x)
        clock.now = 2.0                            # window is half-open
        model(x)
        assert model.deaths == 1

    def test_injected_death_is_not_an_exception(self):
        assert not issubclass(InjectedThreadDeath, Exception)
        assert issubclass(InjectedThreadDeath, BaseException)

    def test_bursty_slow_member_burns_clock_only_in_window(self, factory):
        clock = ManualClock()
        model = BurstySlowMember(factory.build(rng=0), seconds=0.5,
                                 windows=[(1.0, 2.0)], clock=clock)
        x = RNG.normal(size=(2, 4)).astype(np.float32)
        model(x)
        assert clock.now == 0.0                    # outside: free
        clock.now = 1.2
        model(x)
        assert clock.now == pytest.approx(1.7)     # inside: +0.5s
        assert model.slow_calls == 1

    def test_schedule_draw_is_seeded_and_sorted(self):
        first = ChaosSchedule.draw(np.random.default_rng(11), horizon=2.0,
                                   members=4, events=6)
        second = ChaosSchedule.draw(np.random.default_rng(11), horizon=2.0,
                                    members=4, events=6)
        assert first == second
        starts = [event.start for event in first.events]
        assert starts == sorted(starts)
        for event in first.events:
            assert event.kind in ChaosSchedule.KINDS
            assert 0.0 <= event.start < 2.0 * 0.8

    def test_storms_stack_multiplicatively(self):
        schedule = ChaosSchedule(events=[
            ChaosEvent(kind="storm", start=0.0, duration=1.0, magnitude=2.0),
            ChaosEvent(kind="storm", start=0.5, duration=1.0, magnitude=3.0),
        ])
        assert schedule.rate_multiplier(0.25) == 2.0
        assert schedule.rate_multiplier(0.75) == 6.0
        assert schedule.rate_multiplier(1.25) == 3.0
        assert schedule.rate_multiplier(2.5) == 1.0

    def test_stalled_windows(self):
        schedule = ChaosSchedule(events=[
            ChaosEvent(kind="stall", start=1.0, duration=0.5)])
        assert not schedule.stalled(0.9)
        assert schedule.stalled(1.2)
        assert not schedule.stalled(1.5)


# ----------------------------------------------------------------------
class TestThreadDeathFirewall:
    """A dying member task becomes a skip + breaker charge, never an
    unresolved ticket or a torn answer."""

    def test_executor_converts_death_to_fault_skip(self, factory):
        service, _ = make_service(factory, members=3)
        service.members[0].model = DyingMember(
            service.members[0].model, on_calls=range(10))
        executor = MemberExecutor(workers=0)
        x = RNG.normal(size=(4, 4)).astype(np.float32)
        outputs, skipped, _ = executor.run(service.members, x, batch_size=4)
        assert [member.index for member, _ in outputs] == [1, 2]
        assert len(skipped) == 1
        index, kind, reason = skipped[0]
        assert index == 0 and kind == "fault"
        assert "died" in reason and "InjectedThreadDeath" in reason
        assert service.members[0].breaker.total_faults == 1

    def test_pipeline_answers_through_surviving_members(self, factory):
        service, _ = make_service(factory, members=3)
        dying = DyingMember(service.members[1].model, on_calls=range(10))
        service.members[1].model = dying
        pipeline = ServingPipeline(
            service, PipelineConfig(workers=0)).start(pump=False)
        ticket = pipeline.submit(RNG.normal(size=(4, 4))
                                 .astype(np.float32))
        pipeline.batcher.pump_once()
        prediction = ticket.wait(0)
        assert prediction.members_used == [0, 2]
        assert prediction.degraded
        assert dying.deaths == 1
        stats = pipeline.stats()
        assert stats.completed == 1 and stats.failed == 0
        assert stats.conserved
        pipeline.close()


# ----------------------------------------------------------------------
class TestChaosReplay:
    def test_schedule_replay_is_deterministic(self):
        config = ChaosConfig(service=small_service_config(),
                             horizon_s=1.0, events=4)
        first = run_chaos_schedule(config, seed=3)
        second = run_chaos_schedule(config, seed=3)
        assert first == second

    def test_different_seeds_draw_different_schedules(self):
        config = ChaosConfig(service=small_service_config(),
                             horizon_s=1.0, events=4)
        assert run_chaos_schedule(config, seed=0)["events"] != \
            run_chaos_schedule(config, seed=1)["events"]

    def test_invariants_hold_across_seeded_schedules(self):
        payload = run_chaos_suite(ChaosConfig(
            service=small_service_config(), horizon_s=1.0, events=4,
            schedules=8))
        assert payload["ok"], f"failed seeds: {payload['failed_seeds']}"
        assert payload["total_submitted"] > 0
        for run in payload["runs"]:
            assert all(run["invariants"].values())
            assert run["submitted"] == run["admitted"] + run["shed"]
            assert run["admitted"] == run["completed"] + run["failed"]

    def test_chaos_exercises_every_fault_kind(self):
        """Across enough seeds the draw covers storms, stalls, slow
        bursts and deaths — the suite is not vacuously green."""
        payload = run_chaos_suite(ChaosConfig(
            service=small_service_config(), horizon_s=1.0, events=5,
            schedules=8))
        assert all(count > 0 for count in payload["event_kinds"].values())
        assert payload["total_shed"] > 0           # storms found the wall

    def test_storm_arrivals_multiply_inside_the_window(self):
        config = ChaosConfig(service=small_service_config(),
                             base_rate=200.0, horizon_s=2.0)
        schedule = ChaosSchedule(events=[
            ChaosEvent(kind="storm", start=0.5, duration=1.0,
                       magnitude=5.0)])
        times = chaos_arrivals(config, schedule,
                               np.random.default_rng(17))
        inside = ((times >= 0.5) & (times < 1.5)).sum()
        outside = len(times) - inside
        assert inside > 2 * outside                # 5x rate in half the time

    def test_pump_stall_forces_shedding_but_conserves(self):
        """A long stall lets the queue stand: admission control or the
        bounded queue must shed, and every shed is accounted for."""
        config = small_service_config()
        clock = ManualClock()
        service = build_overload_service(config, clock)
        pipeline = _pipeline(config, service, resilient=True)
        schedule = ChaosSchedule(events=[
            ChaosEvent(kind="stall", start=0.0, duration=0.6)])
        rng = np.random.default_rng(19)
        arrivals = np.cumsum(rng.exponential(1 / 400.0, size=200))
        payloads = _payloads(config, len(arrivals), rng)

        def unstall(t):
            for event in schedule.of_kind("stall"):
                if event.start <= t < event.end:
                    return event.end
            return t

        record = replay(pipeline, clock, arrivals, payloads,
                        unstall=unstall)
        stats = pipeline.stats()
        pipeline.close()
        assert stats.shed > 0
        assert stats.pending == 0 and stats.conserved
        assert stats.shed == len(record.shed)
        assert all(ticket.done for _, _, ticket in record.tickets)
