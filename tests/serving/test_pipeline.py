"""The concurrent serving pipeline: transport, scheduler, executor.

The acceptance property of the whole refactor: micro-batched +
parallel-member serving answers **bit-identically** (``==``, not
``allclose``) to the solo sequential ``InferenceService.predict`` for
every request, while the breaker, quorum, hot-swap and health machinery
keep their semantics under true concurrency.
"""

import threading

import numpy as np
import pytest

from repro.core import Ensemble
from repro.serving import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    InferenceService,
    InvalidRequest,
    ServiceConfig,
    ServiceUnavailable,
)
from repro.serving.executor import MemberExecutor
from repro.serving.faults import FlakyMember, ManualClock
from repro.serving.scheduler import MicroBatcher, QueueFull
from repro.serving.transport import PipelineConfig, ServingPipeline

from tests.serving.conftest import sub_ensemble

RNG = np.random.default_rng(31)


def make_service(factory, members=4, **config):
    ensemble = Ensemble()
    for seed in range(members):
        ensemble.add(factory.build(rng=seed), alpha=seed + 0.5)
    return InferenceService(ensemble, ServiceConfig(**config)), ensemble


# ----------------------------------------------------------------------
class TestBitParity:
    """Batched + parallel == solo, byte for byte."""

    def test_pump_once_batches_bitwise_equal_solo(self, factory):
        service, _ = make_service(factory)
        requests = [RNG.normal(size=(8, 4)).astype(np.float32)
                    for _ in range(12)]
        solo = [service.predict(x).probs.copy() for x in requests]
        pipeline = ServingPipeline(
            service, PipelineConfig(workers=0)).start(pump=False)
        tickets = [pipeline.submit(x) for x in requests]
        while not all(ticket.done for ticket in tickets):
            assert pipeline.batcher.pump_once() > 0
        for ticket, expected in zip(tickets, solo):
            assert np.array_equal(pipeline.result(ticket).probs, expected)
        pipeline.close()

    def test_threaded_clients_parallel_members_bitwise_equal_solo(
            self, factory):
        service, _ = make_service(factory, members=6)
        requests = [RNG.normal(size=(4, 4)).astype(np.float32)
                    for _ in range(24)]
        solo = [service.predict(x).probs.copy() for x in requests]
        results = [None] * len(requests)
        with ServingPipeline(service, PipelineConfig(
                workers=4, max_wait_ms=2.0)) as pipeline:
            def client(i):
                results[i] = pipeline.predict(requests[i]).probs

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(len(requests))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for got, expected in zip(results, solo):
            assert np.array_equal(got, expected)

    def test_mixed_row_counts_never_share_a_stack(self, factory):
        service, _ = make_service(factory)
        sizes = [3, 3, 5, 5, 5, 2]
        requests = [RNG.normal(size=(rows, 4)).astype(np.float32)
                    for rows in sizes]
        solo = [service.predict(x).probs.copy() for x in requests]
        pipeline = ServingPipeline(
            service, PipelineConfig(workers=0)).start(pump=False)
        tickets = [pipeline.submit(x) for x in requests]
        drained = []
        while not all(ticket.done for ticket in tickets):
            drained.append(pipeline.batcher.pump_once())
        # FIFO same-size prefixes: [3,3], [5,5,5], [2].
        assert drained == [2, 3, 1]
        for ticket, expected in zip(tickets, solo):
            assert np.array_equal(pipeline.result(ticket).probs, expected)
        pipeline.close()

    def test_served_metadata_matches_solo(self, factory):
        service, _ = make_service(factory)
        x = RNG.normal(size=(8, 4)).astype(np.float32)
        expected = service.predict(x)
        pipeline = ServingPipeline(
            service, PipelineConfig(workers=0)).start(pump=False)
        tickets = [pipeline.submit(x), pipeline.submit(x)]
        pipeline.batcher.pump_once()
        for ticket in tickets:
            answer = pipeline.result(ticket)
            assert answer.members_used == expected.members_used
            assert answer.alpha_mass == expected.alpha_mass
            assert not answer.deadline_hit
        pipeline.close()


# ----------------------------------------------------------------------
class TestTransportSurface:
    def test_submit_poll_result(self, factory):
        service, _ = make_service(factory)
        pipeline = ServingPipeline(
            service, PipelineConfig(workers=0)).start(pump=False)
        ticket = pipeline.submit(RNG.normal(size=(4, 4)).astype(np.float32))
        assert not pipeline.poll(ticket)
        pipeline.batcher.pump_once()
        assert pipeline.poll(ticket)
        assert pipeline.result(ticket).probs.shape == (4, 3)
        pipeline.close()

    def test_result_timeout(self, factory):
        service, _ = make_service(factory)
        pipeline = ServingPipeline(
            service, PipelineConfig(workers=0)).start(pump=False)
        ticket = pipeline.submit(RNG.normal(size=(4, 4)).astype(np.float32))
        with pytest.raises(TimeoutError):
            pipeline.result(ticket, timeout=0.01)
        pipeline.close()

    def test_invalid_payload_rejected_and_counted(self, factory):
        service, _ = make_service(factory)
        pipeline = ServingPipeline(service, PipelineConfig(workers=0))
        bad = np.full((4, 4), np.nan, dtype=np.float32)
        with pytest.raises(InvalidRequest):
            pipeline.submit(bad)
        assert service.health().requests_rejected == 1
        pipeline.close()

    def test_queue_full_is_backpressure(self, factory):
        service, _ = make_service(factory)
        pipeline = ServingPipeline(service, PipelineConfig(
            workers=0, queue_depth=2)).start(pump=False)
        x = RNG.normal(size=(4, 4)).astype(np.float32)
        pipeline.submit(x)
        pipeline.submit(x)
        with pytest.raises(ServiceUnavailable, match="capacity"):
            pipeline.submit(x)
        assert service.health().requests_unavailable == 1
        pipeline.close()

    def test_batching_off_serves_immediately(self, factory):
        service, _ = make_service(factory)
        with ServingPipeline(service, PipelineConfig(
                batching=False, workers=0)) as pipeline:
            ticket = pipeline.submit(
                RNG.normal(size=(4, 4)).astype(np.float32))
            assert pipeline.poll(ticket)

    def test_close_drains_queued_requests(self, factory):
        service, _ = make_service(factory)
        pipeline = ServingPipeline(
            service, PipelineConfig(workers=0)).start(pump=False)
        tickets = [pipeline.submit(
            RNG.normal(size=(4, 4)).astype(np.float32)) for _ in range(3)]
        pipeline.close()
        assert all(ticket.done for ticket in tickets)


# ----------------------------------------------------------------------
class TestScheduler:
    def test_max_batch_rows_caps_the_stack(self):
        batches = []
        batcher = MicroBatcher(
            process=lambda stacked, batch: batches.append(len(batch)),
            max_batch_rows=8)
        for _ in range(5):
            batcher.submit(np.zeros((4, 2), dtype=np.float32), ticket=None)
        while batcher.pump_once():
            pass
        assert batches == [2, 2, 1]     # 8-row cap -> 2 requests per stack

    def test_single_oversized_request_still_forms_a_batch(self):
        batches = []
        batcher = MicroBatcher(
            process=lambda stacked, batch: batches.append(len(stacked)),
            max_batch_rows=8)
        batcher.submit(np.zeros((32, 2), dtype=np.float32), ticket=None)
        batcher.pump_once()
        assert batches == [32]

    def test_queue_full(self):
        batcher = MicroBatcher(process=lambda *a: None, queue_depth=1)
        batcher.submit(np.zeros((1, 1)), ticket=None)
        with pytest.raises(QueueFull):
            batcher.submit(np.zeros((1, 1)), ticket=None)


# ----------------------------------------------------------------------
class TestBreakerConcurrency:
    def test_concurrent_faults_trip_exactly_once(self):
        clock = ManualClock()
        breaker = CircuitBreaker(fault_threshold=3, cooldown=10.0,
                                 clock=clock)
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            for _ in range(16):
                breaker.record_fault("injected")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert breaker.state == OPEN
        assert breaker.total_faults == 8 * 16      # no lost increments
        assert breaker.total_calls == 8 * 16

    def test_half_open_admits_exactly_one_probe(self):
        clock = ManualClock()
        breaker = CircuitBreaker(fault_threshold=1, cooldown=5.0,
                                 clock=clock)
        breaker.record_fault("boom")
        clock.advance(5.0)                         # cooldown expired
        admitted = []
        barrier = threading.Barrier(8)

        def probe():
            barrier.wait()
            admitted.append(breaker.allow())

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(admitted) == 1                  # single probe slot
        assert breaker.state == HALF_OPEN

    def test_concurrent_trip_and_reinstate_stay_consistent(self):
        clock = ManualClock()
        breaker = CircuitBreaker(fault_threshold=2, cooldown=5.0,
                                 clock=clock)
        barrier = threading.Barrier(4)

        def flip(n):
            barrier.wait()
            for _ in range(64):
                if n % 2:
                    breaker.trip("admin")
                else:
                    breaker.reinstate()

        threads = [threading.Thread(target=flip, args=(n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Whatever interleaving happened, the breaker landed in a legal
        # state with internally consistent bookkeeping.
        assert breaker.state in (OPEN, CLOSED)
        if breaker.state == OPEN:
            assert breaker.opened_at is not None
        else:
            assert breaker.opened_at is None
            assert breaker.consecutive_faults == 0


# ----------------------------------------------------------------------
class TestHotSwapConsistency:
    def test_health_never_tears_mid_swap(self, factory):
        service, _ = make_service(factory)
        stop = threading.Event()
        errors = []

        def swapper():
            seed = 100
            while not stop.is_set():
                seed += 1
                service.replace_member(2, factory.build(rng=seed), alpha=2.5)

        def checker():
            while not stop.is_set():
                health = service.health()
                try:
                    assert health.members_total == 4
                    named = set(health.members_live) | \
                        set(health.members_quarantined)
                    assert named == {0, 1, 2, 3}
                    assert set(health.breaker_states) == {0, 1, 2, 3}
                    assert health.effective_alpha_mass == pytest.approx(1.0)
                except AssertionError as error:   # pragma: no cover
                    errors.append(error)
                    stop.set()

        threads = [threading.Thread(target=swapper),
                   threading.Thread(target=checker),
                   threading.Thread(target=checker)]
        for thread in threads:
            thread.start()
        stop.wait(timeout=0.5)
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.health().member_swaps > 0

    def test_in_flight_batches_see_whole_rosters(self, factory):
        """A hot swap mid-traffic: every answer equals one of the two
        rosters' solo aggregates — never a torn mix."""
        service, _ = make_service(factory)
        x = RNG.normal(size=(8, 4)).astype(np.float32)
        before = service.predict(x).probs.copy()
        replacement = factory.build(rng=999)
        snapshot, _ = service.roster_snapshot()
        after_ensemble = Ensemble()
        for position, member in enumerate(snapshot):
            if position == 2:
                after_ensemble.add(replacement, alpha=4.0)
            else:
                after_ensemble.add(member.model, alpha=member.alpha)
        legal = {before.tobytes()}
        answers = []
        with ServingPipeline(service, PipelineConfig(
                workers=2, max_wait_ms=0.5)) as pipeline:
            def client():
                for _ in range(20):
                    answers.append(pipeline.predict(x).probs)

            threads = [threading.Thread(target=client) for _ in range(4)]
            for thread in threads:
                thread.start()
            service.replace_member(2, replacement, alpha=4.0)
            for thread in threads:
                thread.join()
        legal.add(service.predict(x).probs.tobytes())
        assert legal == {before.tobytes(),
                         after_ensemble.predict_probs(x).tobytes()}
        for answer in answers:
            assert answer.tobytes() in legal


# ----------------------------------------------------------------------
class TestExecutorSemantics:
    def test_fault_and_quarantine_skips_match_serial(self, factory):
        service, _ = make_service(factory, fault_threshold=1)
        position = [m.index for m in service.members].index(1)
        service.members[position].model = FlakyMember(
            service.members[position].model)
        x = RNG.normal(size=(4, 4)).astype(np.float32)
        executor = MemberExecutor(workers=3)
        members, alpha_configured = service.roster_snapshot()
        outputs, skipped, _ = executor.run(members, x, batch_size=256)
        assert [m.index for m, _ in outputs] == [0, 2, 3]
        assert skipped[0][0] == 1 and skipped[0][1] == "fault"
        # Next run: the breaker (threshold 1) has the member quarantined.
        outputs, skipped, _ = executor.run(members, x, batch_size=256)
        assert skipped[0][1] == "quarantined"
        executor.shutdown()

    def test_all_members_lost_is_unavailable(self, factory):
        service, _ = make_service(factory, members=2, min_members=1,
                                  fault_threshold=1)
        for member in service.members:
            member.model = FlakyMember(member.model)
        with ServingPipeline(service, PipelineConfig(workers=2)) as pipeline:
            ticket = pipeline.submit(
                RNG.normal(size=(4, 4)).astype(np.float32))
            with pytest.raises(ServiceUnavailable):
                pipeline.result(ticket, timeout=5.0)
        assert service.health().requests_unavailable == 1
