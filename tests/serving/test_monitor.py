"""Online drift monitors: ECE, CUSUM, rolling stats, health surface."""

import numpy as np
import pytest

from repro.serving import InferenceService, ServiceConfig
from repro.serving.faults import ManualClock
from repro.serving.monitor import (
    CusumDetector,
    DriftMonitor,
    MonitorConfig,
    expected_calibration_error,
)
from repro.serving.service import ServedPrediction


def prediction(member_probs, alphas=None):
    """A ServedPrediction built straight from member softmax rows."""
    members = dict(enumerate(member_probs))
    alphas = alphas or [1.0] * len(members)
    weights = np.asarray(alphas) / np.sum(alphas)
    combined = sum(w * p for w, p in zip(weights, member_probs))
    return ServedPrediction(
        probs=combined, members_used=list(members), members_skipped=[],
        alpha_mass=1.0, deadline_hit=False, latency=0.0,
        member_probs=members)


def confident(labels, num_classes=3, confidence=0.9):
    probs = np.full((len(labels), num_classes),
                    (1 - confidence) / (num_classes - 1))
    probs[np.arange(len(labels)), labels] = confidence
    return probs


# ------------------------------------------------------------------ ECE

class TestEce:
    def test_perfectly_calibrated_bins(self):
        # 90% confident and 90% correct -> zero gap in that bin.
        labels = np.zeros(10, dtype=int)
        probs = confident(labels)
        predicted = probs.copy()
        predicted[0] = confident(np.array([1]))[0]  # one wrong, 90% acc
        assert expected_calibration_error(predicted, labels) == \
            pytest.approx(0.0, abs=1e-9)

    def test_overconfident_is_penalised(self):
        labels = np.array([0, 0, 0, 0])
        probs = confident(np.array([1, 1, 1, 1]), confidence=0.95)
        assert expected_calibration_error(probs, labels) == \
            pytest.approx(0.95)

    def test_rejects_bad_shapes_and_empty(self):
        with pytest.raises(ValueError):
            expected_calibration_error(np.ones(3), np.zeros(3))
        with pytest.raises(ValueError):
            expected_calibration_error(np.ones((0, 3)), np.zeros(0))


# ---------------------------------------------------------------- CUSUM

class TestCusum:
    def test_calibrates_then_alarms_on_upward_shift(self):
        detector = CusumDetector(warmup=5, k=0.5, h=3.0, min_std=0.01)
        for _ in range(5):
            assert detector.update(0.1) is False
        assert detector.calibrated
        assert detector.mean == pytest.approx(0.1)
        # Sustained +10 sigma shift crosses h=3 within one update.
        assert detector.update(0.3) is True
        assert detector.alarmed

    def test_stationary_noise_does_not_alarm(self):
        # min_std floors sigma above the noise scale, so standardised
        # steps average below k and S never accumulates to h.
        rng = np.random.default_rng(0)
        detector = CusumDetector(warmup=20, k=0.5, h=5.0, min_std=0.05)
        for value in rng.normal(0.5, 0.02, size=200):
            detector.update(value)
        assert not detector.alarmed

    def test_downward_direction(self):
        detector = CusumDetector(warmup=3, k=0.5, h=2.0, direction=-1,
                                 min_std=0.01)
        for _ in range(3):
            detector.update(0.9)
        assert detector.update(0.5) is True   # accuracy collapse

    def test_alarm_latches_until_reset(self):
        detector = CusumDetector(warmup=2, k=0.5, h=1.0, min_std=0.01)
        detector.update(0.0), detector.update(0.0)
        detector.update(1.0)
        assert detector.alarmed
        detector.update(0.0)                  # back to normal values
        assert detector.alarmed               # still latched
        detector.reset()
        assert not detector.alarmed and not detector.calibrated

    def test_validation(self):
        with pytest.raises(ValueError):
            CusumDetector(warmup=1)
        with pytest.raises(ValueError):
            CusumDetector(h=0.0)
        with pytest.raises(ValueError):
            CusumDetector(direction=0)


# -------------------------------------------------------------- monitor

def drift_feed(monitor, stationary, shifted, labels_fn=None):
    for probs in stationary + shifted:
        labels = labels_fn(probs) if labels_fn else None
        monitor.observe(prediction(probs), labels=labels)


class TestDriftMonitor:
    config = MonitorConfig(warmup=5, cusum_h=3.0, min_std=0.01, window=10)

    def agreeing(self, rng):
        base = rng.dirichlet(np.ones(3), size=8)
        return [base + rng.normal(0, 0.003, size=base.shape)
                for _ in range(3)]

    def disagreeing(self, rng):
        return [rng.dirichlet(np.ones(3), size=8) for _ in range(3)]

    def test_disagreement_alarm_fires_after_shift(self):
        rng = np.random.default_rng(0)
        monitor = DriftMonitor(self.config, clock=ManualClock())
        drift_feed(monitor, [self.agreeing(rng) for _ in range(8)],
                   [self.disagreeing(rng) for _ in range(6)])
        assert monitor.alarm_summary()["disagreement"]
        assert monitor.alarmed
        assert monitor.first_alarm is not None
        assert monitor.first_alarm.index >= 8

    def test_no_alarm_on_stationary_stream(self):
        rng = np.random.default_rng(1)
        monitor = DriftMonitor(self.config, clock=ManualClock())
        drift_feed(monitor, [self.agreeing(rng) for _ in range(30)], [])
        assert not monitor.alarmed

    def test_accuracy_alarm_needs_labels(self):
        rng = np.random.default_rng(2)
        monitor = DriftMonitor(self.config, clock=ManualClock())
        good = np.zeros(8, dtype=int)
        for _ in range(8):   # calibrate on correct, confident batches
            monitor.observe(prediction([confident(good)] * 3), labels=good)
        assert not monitor.alarmed
        wrong = np.ones(8, dtype=int)
        for _ in range(3):   # same outputs, labels moved: accuracy collapse
            monitor.observe(prediction([confident(good)] * 3), labels=wrong)
        summary = monitor.alarm_summary()
        assert summary["accuracy"] and summary["ece"]
        assert monitor.labelled == 11

    def test_member_scores_rank_the_deviant(self):
        rng = np.random.default_rng(3)
        monitor = DriftMonitor(self.config, clock=ManualClock())
        consensus = confident(np.zeros(8, dtype=int))
        deviant = confident(np.ones(8, dtype=int))
        for _ in range(6):
            monitor.observe(prediction([consensus, consensus, deviant]))
        scores = monitor.member_scores()
        assert set(scores) == {0, 1, 2}
        assert scores[2] > scores[0]
        assert scores[2] == max(scores.values())

    def test_member_scores_blend_delayed_label_error(self):
        monitor = DriftMonitor(self.config, clock=ManualClock())
        labels = np.zeros(8, dtype=int)
        right = confident(labels)
        wrong = confident(np.ones(8, dtype=int))
        for _ in range(4):
            monitor.observe(prediction([right, right, wrong]), labels=labels)
        scores = monitor.member_scores()
        # The wrong member's error rate (~1.0) dominates its deviation.
        assert scores[2] > scores[0] + 0.5

    def test_unlabelled_stats_are_none_but_recorded(self):
        monitor = DriftMonitor(self.config, clock=ManualClock())
        stats = monitor.observe(prediction(
            [confident(np.zeros(4, dtype=int))] * 2))
        assert stats.ece is None and stats.accuracy is None
        assert stats.disagreement is not None
        assert monitor.rolling("disagreement") is not None
        assert monitor.rolling("accuracy") is None

    def test_timestamps_use_injected_clock(self):
        clock = ManualClock(start=5.0)
        monitor = DriftMonitor(self.config, clock=clock)
        probs = [confident(np.zeros(4, dtype=int))] * 2
        assert monitor.observe(prediction(probs)).timestamp == 5.0
        clock.advance(2.5)
        assert monitor.observe(prediction(probs)).timestamp == 7.5
        assert monitor.observe(prediction(probs),
                               timestamp=99.0).timestamp == 99.0

    def test_reset_clears_everything(self):
        rng = np.random.default_rng(4)
        monitor = DriftMonitor(self.config, clock=ManualClock())
        drift_feed(monitor, [self.agreeing(rng) for _ in range(8)],
                   [self.disagreeing(rng) for _ in range(6)])
        assert monitor.alarmed
        monitor.reset()
        assert not monitor.alarmed
        assert monitor.first_alarm is None
        assert monitor.member_scores() == {}
        assert monitor.rolling("disagreement") is None


# ----------------------------------------------- health-surface plumbing

class TestHealthSurface:
    def test_monitor_alarms_surface_in_service_health(self, ensemble):
        clock = ManualClock()
        service = InferenceService(ensemble, config=ServiceConfig(
            clock=clock, expose_member_probs=True))
        monitor = DriftMonitor(MonitorConfig(warmup=2, min_std=0.01),
                               clock=clock)
        service.attach_monitor(monitor)
        assert service.health().monitor_alarms == {
            "disagreement": False, "deviation": False,
            "ece": False, "accuracy": False}
        labels = np.zeros(6, dtype=int)
        for _ in range(2):
            monitor.observe(prediction([confident(labels)] * 2),
                            labels=labels)
        monitor.observe(prediction([confident(labels)] * 2),
                        labels=np.ones(6, dtype=int))
        health = service.health()
        assert health.monitor_alarms["accuracy"] is True

    def test_breaker_states_and_ages_in_health(self, ensemble):
        clock = ManualClock()
        service = InferenceService(ensemble,
                                   config=ServiceConfig(clock=clock))
        clock.advance(4.0)
        member = service.members[1]
        member.breaker.trip("test quarantine")
        clock.advance(2.0)
        health = service.health()
        state, age = health.breaker_states[1]
        assert state == "open" and age == pytest.approx(2.0)
        state, age = health.breaker_states[0]
        assert state == "closed" and age == pytest.approx(6.0)
        assert 1 in health.members_quarantined
