"""Overload resilience: admission control, brownout, conservation.

Covers the PR 9 server side — the CoDel-style admission controller and
its error taxonomy, the stop()/submit race contract, the pressure
controller's hysteresis and healthiest-K selection (including its
interaction with the circuit breaker), brownout bit-parity against a
fresh sub-ensemble, the overload ledger, and the virtual-time overload
harness the bench drives.
"""

import threading

import numpy as np
import pytest

from repro.experiments.serve_load import LoadConfig, arrival_times
from repro.experiments.serve_overload import (
    OverloadConfig,
    analytic_capacity,
    run_overload_cell,
)
from repro.serving import (
    InvalidRequest,
    Overloaded,
    QueueFull,
    ServiceUnavailable,
)
from repro.serving.faults import ManualClock
from repro.serving.pressure import PressureConfig, PressureController
from repro.serving.scheduler import AdmissionController, MicroBatcher
from repro.serving.transport import PipelineConfig, ServingPipeline

from tests.serving.conftest import sub_ensemble
from tests.serving.test_pipeline import make_service

RNG = np.random.default_rng(41)


def requests_of(rows, count):
    return [RNG.normal(size=(rows, 4)).astype(np.float32)
            for _ in range(count)]


# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    """Overload errors sit on the retryable branch, with hints."""

    def test_overloaded_is_retryable_and_carries_retry_after(self):
        error = Overloaded("shed", retry_after=0.25)
        assert isinstance(error, ServiceUnavailable)
        assert not isinstance(error, InvalidRequest)
        assert error.retry_after == 0.25
        assert error.code == "overloaded"

    def test_queue_full_is_an_overload_not_a_plain_unavailable(self):
        error = QueueFull("full", retry_after=None)
        assert isinstance(error, Overloaded)
        assert isinstance(error, ServiceUnavailable)
        assert error.code == "queue-full"
        assert error.retry_after is None


class TestAdmissionController:
    """CoDel on sojourn time: grace interval, episodes, retry_after."""

    def test_transient_burst_within_interval_never_sheds(self):
        control = AdmissionController(target_delay_ms=20, interval_ms=100)
        control.observe(sojourn=0.05, now=0.0)     # above target: timer on
        assert control.admit(0.05, now=0.05) is None   # interval not up
        control.observe(sojourn=0.01, now=0.09)    # drained: timer resets
        assert not control.shedding
        assert control.shed_total == 0

    def test_standing_delay_sheds_with_floor_retry_after(self):
        control = AdmissionController(target_delay_ms=20, interval_ms=100)
        control.observe(sojourn=0.05, now=0.0)
        control.observe(sojourn=0.06, now=0.11)    # stood a full interval
        assert control.shedding and control.episodes == 1
        hint = control.admit(sojourn_estimate=0.05, now=0.12)
        assert hint == pytest.approx(0.1)          # excess 0.03 < interval
        hint = control.admit(sojourn_estimate=0.5, now=0.13)
        assert hint == pytest.approx(0.48)         # excess dominates
        assert control.shed_total == 2

    def test_estimate_under_target_admits_even_while_shedding(self):
        control = AdmissionController(target_delay_ms=20, interval_ms=100)
        control.observe(0.05, now=0.0)
        control.observe(0.05, now=0.2)
        assert control.shedding
        assert control.admit(sojourn_estimate=0.01, now=0.21) is None

    def test_recovery_closes_the_episode(self):
        control = AdmissionController(target_delay_ms=20, interval_ms=100)
        control.observe(0.05, now=0.0)
        control.observe(0.05, now=0.2)
        control.observe(0.005, now=0.3)            # head back under target
        assert not control.shedding
        assert control.admit(0.05, now=0.31) is None
        assert control.episodes == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(target_delay_ms=0)
        with pytest.raises(ValueError):
            AdmissionController(interval_ms=-1)


class TestSchedulerShedding:
    """The batcher's front door under a standing queue (manual clock)."""

    def make_batcher(self, clock, **kwargs):
        drained = []
        batcher = MicroBatcher(
            process=lambda stacked, batch: drained.extend(batch),
            max_batch_rows=4, max_wait_ms=2.0, clock=clock, **kwargs)
        return batcher, drained

    def test_standing_queue_sheds_overloaded_with_retry_after(self):
        clock = ManualClock()
        batcher, _ = self.make_batcher(
            clock, admission=AdmissionController(target_delay_ms=20,
                                                 interval_ms=100))
        for x in requests_of(rows=4, count=3):
            batcher.submit(x, ticket=object())     # one request per batch
        clock.now = 0.03
        batcher.pump_once()                        # sojourn 30ms: timer on
        clock.now = 0.14
        batcher.pump_once()                        # stood 110ms: shedding
        assert batcher.admission.shedding
        clock.now = 0.15                           # head enqueued at t=0
        with pytest.raises(Overloaded) as caught:
            batcher.submit(requests_of(4, 1)[0], ticket=object())
        assert caught.value.retry_after == pytest.approx(0.13)
        assert batcher.requests_shed == 1
        assert batcher.requests_admitted == 3

    def test_queue_full_sheds_at_capacity(self):
        clock = ManualClock()
        batcher, _ = self.make_batcher(clock, queue_depth=2)
        for x in requests_of(rows=4, count=2):
            batcher.submit(x, ticket=object())
        with pytest.raises(QueueFull) as caught:
            batcher.submit(requests_of(4, 1)[0], ticket=object())
        assert isinstance(caught.value, Overloaded)
        assert caught.value.retry_after == pytest.approx(0.002)
        assert batcher.requests_shed == 1

    def test_no_admission_controller_means_no_early_shedding(self):
        clock = ManualClock()
        batcher, _ = self.make_batcher(clock, queue_depth=64)
        batcher.submit(requests_of(4, 1)[0], ticket=object())
        clock.now = 10.0                           # grotesque sojourn
        batcher.submit(requests_of(4, 1)[0], ticket=object())
        assert batcher.requests_shed == 0          # PR 8 behaviour intact


class TestStopSubmitRace:
    """stop() closes the front door; a racing submit never hangs."""

    def test_submit_after_stop_raises(self):
        batcher = MicroBatcher(process=lambda s, b: None)
        batcher.stop()
        with pytest.raises(ServiceUnavailable):
            batcher.submit(requests_of(4, 1)[0], ticket=object())

    def test_restart_after_stop_refused(self):
        batcher = MicroBatcher(process=lambda s, b: None)
        batcher.stop()
        with pytest.raises(ServiceUnavailable):
            batcher.start()

    def test_concurrent_submits_during_stop_complete_or_raise(self):
        """Regression for the drain race: every ticket that submit()
        accepted is processed by the drain loop — none left pending."""
        processed = set()
        lock = threading.Lock()

        def process(_stacked, batch):
            with lock:
                processed.update(id(pending.ticket) for pending in batch)

        batcher = MicroBatcher(process=process, max_batch_rows=64,
                               max_wait_ms=0.5, queue_depth=4096)
        batcher.start()
        accepted = []
        barrier = threading.Barrier(5)

        def submitter():
            barrier.wait()
            for _ in range(50):
                ticket = object()
                try:
                    batcher.submit(
                        np.zeros((1, 4), dtype=np.float32), ticket)
                except ServiceUnavailable:
                    continue
                accepted.append(ticket)

        def stopper():
            barrier.wait()
            batcher.stop()

        threads = [threading.Thread(target=submitter) for _ in range(4)] \
            + [threading.Thread(target=stopper)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        missing = [t for t in accepted if id(t) not in processed]
        assert not missing, f"{len(missing)} accepted tickets never drained"


# ----------------------------------------------------------------------
class TestPressureController:
    """Hysteresis, interpolated K, healthiest-K selection, breakers."""

    def config(self, **overrides):
        kwargs = dict(target_delay_ms=20.0, levels=2, min_members=2,
                      enter_pressure=1.0, exit_pressure=0.4, sustain=2)
        kwargs.update(overrides)
        return PressureConfig(**kwargs)

    def test_sustain_gates_level_changes(self):
        controller = PressureController(self.config())
        assert controller.observe(0.05) == 0       # 1st above enter
        assert controller.observe(0.05) == 1       # 2nd: degrade
        assert controller.observe(0.05) == 1       # counter restarted
        assert controller.observe(0.05) == 2
        assert controller.observe(0.05) == 2       # capped at levels

    def test_hysteresis_band_resets_both_counters(self):
        controller = PressureController(self.config())
        controller.observe(0.05)
        controller.observe(0.012)                  # in (exit, enter) band
        controller.observe(0.05)
        assert controller.level == 0               # streak was broken
        controller.observe(0.05)
        assert controller.level == 1

    def test_recovery_needs_sustained_low_pressure(self):
        controller = PressureController(self.config())
        controller.observe(0.05)
        controller.observe(0.05)
        assert controller.level == 1
        controller.observe(0.001)
        assert controller.level == 1               # one low is not enough
        controller.observe(0.001)
        assert controller.level == 0
        assert controller.level_changes == 2

    def test_keep_count_interpolates_between_total_and_floor(self):
        controller = PressureController(self.config())
        assert controller.keep_count(6) == 6       # level 0
        controller.observe(0.05)
        controller.observe(0.05)
        assert controller.keep_count(6) == 4       # level 1 of 2
        controller.observe(0.05)
        controller.observe(0.05)
        assert controller.keep_count(6) == 2       # floor at max level

    def _degraded(self, **overrides):
        controller = PressureController(self.config(**overrides))
        controller.observe(0.05)
        controller.observe(0.05)
        return controller

    def test_roster_keeps_healthiest_k_in_roster_order(self, factory):
        service, _ = make_service(factory, members=4)
        controller = self._degraded(levels=1, min_members=2)
        scores = {0: 5.0, 1: 0.0, 2: 1.0, 3: 9.0}  # higher is sicker
        roster, level = controller.roster_for(service.members, scores)
        assert level == 1
        assert [member.index for member in roster] == [1, 2]

    def test_quarantined_members_never_count_toward_k(self, factory):
        """Satellite: breaker x brownout — quarantine excludes a member
        from the ranking entirely, not just from the final roster."""
        clock = ManualClock()
        service, _ = make_service(factory, members=4, clock=clock)
        sick = service.members[1]
        for _ in range(sick.breaker.fault_threshold):
            sick.breaker.record_fault("injected")
        assert sick.breaker.quarantined
        controller = self._degraded(levels=1, min_members=2)
        # Member 1 has the *best* score but is quarantined: the two
        # healthiest servable members are chosen instead.
        roster, _ = controller.roster_for(
            service.members, {0: 1.0, 1: 0.0, 2: 2.0, 3: 3.0})
        assert [member.index for member in roster] == [0, 2]

    def test_reinstatement_during_brownout_still_caps_at_k(self, factory):
        clock = ManualClock()
        service, _ = make_service(factory, members=4, clock=clock)
        sick = service.members[1]
        for _ in range(sick.breaker.fault_threshold):
            sick.breaker.record_fault("injected")
        controller = self._degraded(levels=1, min_members=2)
        clock.advance(sick.breaker.cooldown + 1.0)  # cooldown elapsed
        assert not sick.breaker.quarantined
        roster, _ = controller.roster_for(
            service.members, {0: 1.0, 1: 0.0, 2: 2.0, 3: 3.0})
        # The reinstated member re-enters the ranking (and wins a slot)
        # but the roster must not grow beyond K.
        assert [member.index for member in roster] == [0, 1]
        assert len(roster) == 2

    def test_level_zero_serves_everyone(self, factory):
        service, _ = make_service(factory, members=4)
        controller = PressureController(self.config())
        roster, level = controller.roster_for(service.members, {0: 99.0})
        assert level == 0 and len(roster) == 4


# ----------------------------------------------------------------------
def browned_pipeline(factory, members=4, **pressure_overrides):
    clock = ManualClock()
    service, ensemble = make_service(factory, members=members, clock=clock)
    kwargs = dict(target_delay_ms=20.0, levels=1, min_members=2,
                  enter_pressure=1.0, exit_pressure=0.4, sustain=1)
    kwargs.update(pressure_overrides)
    pipeline = ServingPipeline(service, PipelineConfig(
        workers=0, brownout=True,
        pressure=PressureConfig(**kwargs))).start(pump=False)
    return pipeline, service, ensemble, clock


class TestBrownoutPipeline:
    """Brownout through the real pipeline: parity, health, hysteresis."""

    def test_brownout_answers_bit_identical_to_sub_ensemble(self, factory):
        pipeline, _, ensemble, clock = browned_pipeline(factory)
        requests = requests_of(rows=4, count=2)
        tickets = [pipeline.submit(x) for x in requests]
        clock.advance(0.05)                        # sojourn 50ms >> target
        pipeline.batcher.pump_once()
        for ticket, x in zip(tickets, requests):
            prediction = ticket.wait(0)
            assert prediction.brownout_level == 1
            assert len(prediction.members_used) == 2
            expected = sub_ensemble(
                ensemble, prediction.members_used).predict_probs(x)
            assert np.array_equal(prediction.probs, expected)
        pipeline.close()

    def test_brownout_is_reported_degraded_and_in_health(self, factory):
        pipeline, service, _, clock = browned_pipeline(factory)
        ticket = pipeline.submit(requests_of(4, 1)[0])
        clock.advance(0.05)
        pipeline.batcher.pump_once()
        assert ticket.wait(0).degraded
        health = service.health()
        assert health.brownout_level == 1
        assert health.brownout_members is not None
        assert len(health.brownout_members) == 2
        pipeline.close()

    def test_pressure_clears_with_hysteresis(self, factory):
        pipeline, _, _, clock = browned_pipeline(factory, sustain=2)
        # Two pressured batches: level rises to 1.
        for _ in range(2):
            ticket = pipeline.submit(requests_of(4, 1)[0])
            clock.advance(0.05)
            pipeline.batcher.pump_once()
        assert ticket.wait(0).brownout_level == 1
        # One calm batch is not enough (sustain=2)...
        ticket = pipeline.submit(requests_of(4, 1)[0])
        pipeline.batcher.pump_once()               # sojourn ~ 0
        assert ticket.wait(0).brownout_level == 1
        # ...the second calm batch restores the full roster.
        ticket = pipeline.submit(requests_of(4, 1)[0])
        pipeline.batcher.pump_once()
        prediction = ticket.wait(0)
        assert prediction.brownout_level == 0
        assert len(prediction.members_used) == 4
        pipeline.close()

    def test_shed_requests_count_in_stats_and_health(self, factory):
        clock = ManualClock()
        service, _ = make_service(factory, clock=clock)
        pipeline = ServingPipeline(service, PipelineConfig(
            workers=0, max_batch_rows=4, target_delay_ms=20.0,
            interval_ms=100.0)).start(pump=False)
        for x in requests_of(rows=4, count=3):
            pipeline.submit(x)
        clock.now = 0.03
        pipeline.batcher.pump_once()
        clock.now = 0.14
        pipeline.batcher.pump_once()
        clock.now = 0.15
        with pytest.raises(Overloaded):
            pipeline.submit(requests_of(4, 1)[0])
        while pipeline.batcher.depth():
            pipeline.batcher.pump_once()
        stats = pipeline.stats()
        assert stats.shed == 1 and stats.submitted == 4
        assert stats.completed == 3 and stats.pending == 0
        assert stats.conserved
        assert service.health().requests_shed == 1
        pipeline.close()
        assert pipeline.stats().conserved


# ----------------------------------------------------------------------
class TestArrivalProfiles:
    """The load harness's ramp and burst arrival generators."""

    def rng(self):
        return np.random.default_rng(7)

    def test_ramp_sweeps_the_mean_rate(self):
        config = LoadConfig(requests=4000, arrival="ramp",
                            rate=100.0, rate_end=2000.0)
        times = arrival_times(config, self.rng())
        assert times.shape == (4000,)
        assert np.all(np.diff(times) > 0)
        first, last = times[:1000], times[-1000:]
        early = 1000 / (first[-1] - first[0])
        late = 1000 / (last[-1] - last[0])
        assert late > 4 * early                    # the rate really swept

    def test_burst_confines_arrivals_to_the_duty_cycle(self):
        config = LoadConfig(requests=2000, arrival="burst", rate=1000.0,
                            burst_period_s=0.1, burst_duty=0.3)
        times = arrival_times(config, self.rng())
        phase = np.mod(times, config.burst_period_s)
        assert np.all(phase <= config.burst_period_s * config.burst_duty)
        assert np.all(np.diff(times) >= 0)
        assert times.shape == (2000,)

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(arrival="burst", burst_duty=0.0)
        with pytest.raises(ValueError):
            LoadConfig(arrival="burst", burst_period_s=0.0)
        with pytest.raises(ValueError):
            LoadConfig(arrival="warble")


class TestOverloadHarness:
    """The virtual-time overload cells the bench is built from."""

    def small(self):
        return OverloadConfig(ensemble_size=4, input_dim=8, num_classes=4,
                              hidden=(8,), rows=4, member_seconds=0.002,
                              max_batch_rows=16, queue_depth=32,
                              horizon_s=1.0)

    def test_resilient_cell_bounds_latency_where_baseline_collapses(self):
        config = self.small()
        rate = 2.0 * analytic_capacity(config)
        resilient = run_overload_cell(config, rate=rate, resilient=True)
        baseline = run_overload_cell(config, rate=rate, resilient=False)
        assert resilient["conserved"] and baseline["conserved"]
        assert resilient["latency_ms"]["p99"] < baseline["latency_ms"]["p99"]
        assert resilient["shed"] + resilient["brownout_batches"] > 0
        assert baseline["shed"] == 0

    def test_cells_are_deterministic_per_seed(self):
        config = self.small()
        rate = 1.5 * analytic_capacity(config)
        first = run_overload_cell(config, rate=rate, resilient=True)
        second = run_overload_cell(config, rate=rate, resilient=True)
        assert first == second

    def test_brownout_parity_sample_from_a_saturated_cell(self):
        config = self.small()
        cell = run_overload_cell(
            config, rate=2.5 * analytic_capacity(config), resilient=True)
        assert cell["parity"] is not None
        assert cell["parity"]["ok"]
        assert cell["parity"]["level"] >= 1
