"""Resilient loading across the archive failure matrix.

Strict mode raises (a clean ``CheckpointError``/``ValueError``, never a
raw ``KeyError``/``IndexError`` from the archive); non-strict mode
restores every member it can and reports the drops.  The matrix covers:
truncated archive, corrupt member arrays, missing member entries,
NaN-poisoned weights, v1 archives, wrong ``__arch_tag__``, missing or
mis-sized α vector — plus the same strict/degraded paths on ensembles
trained by the real engine (EDDE and Bagging).
"""

import numpy as np
import pytest

from repro.baselines import Bagging, BaselineConfig
from repro.core import (
    CheckpointError,
    EDDEConfig,
    EDDETrainer,
    LoadReport,
    load_ensemble,
    save_ensemble,
)
from repro.serving.faults import CorruptArchive

from tests.serving.conftest import sub_ensemble

RNG = np.random.default_rng(5)


class TestArchiveLevelDamage:
    """Damage no load mode can serve through: both modes raise cleanly."""

    def test_truncated_archive_strict(self, saved, factory):
        CorruptArchive(saved).truncate(keep_fraction=0.4)
        with pytest.raises(CheckpointError, match="cannot read"):
            load_ensemble(saved, factory, strict=True)

    def test_truncated_archive_non_strict(self, saved, factory):
        # Nothing is salvageable from a torn zip: non-strict degrades to
        # a clean error naming the path, not a zipfile traceback.
        CorruptArchive(saved).truncate(keep_fraction=0.4)
        with pytest.raises(CheckpointError, match=str(saved)):
            load_ensemble(saved, factory, strict=False)

    def test_missing_file(self, tmp_path, factory):
        with pytest.raises(CheckpointError, match="no ensemble archive"):
            load_ensemble(tmp_path / "absent.npz", factory)

    @pytest.mark.parametrize("strict", [True, False])
    def test_missing_alpha_vector(self, saved, factory, strict):
        CorruptArchive(saved).drop_key("__alphas__")
        with pytest.raises(CheckpointError, match="__alphas__"):
            load_ensemble(saved, factory, strict=strict)

    @pytest.mark.parametrize("strict", [True, False])
    def test_alpha_length_mismatch(self, ensemble, factory, tmp_path, strict):
        # Satellite: count/α mismatch is a clean CheckpointError naming
        # the keys, not an IndexError from alphas[index].
        from repro.core.serialization import ensemble_payload

        payload = ensemble_payload(ensemble)
        payload["__alphas__"] = np.asarray(ensemble.alphas)[:-1]
        np.savez(tmp_path / "e.npz", **payload)
        with pytest.raises(CheckpointError,
                           match="declares 4 member.*3 entries"):
            load_ensemble(tmp_path / "e.npz", factory, strict=strict)

    def test_extra_member_keys_strict(self, ensemble, factory, tmp_path):
        from repro.core.serialization import ensemble_payload

        payload = ensemble_payload(ensemble)
        payload["__num_models__"] = np.array(3)
        payload["__alphas__"] = np.asarray(ensemble.alphas)[:3]
        np.savez(tmp_path / "e.npz", **payload)
        with pytest.raises(CheckpointError, match="extra key.*model3/"):
            load_ensemble(tmp_path / "e.npz", factory, strict=True)
        # Non-strict ignores the orphan keys (they have no α to serve with).
        restored = load_ensemble(tmp_path / "e.npz", factory, strict=False)
        assert len(restored) == 3

    def test_wrong_arch_tag_both_modes(self, saved, factory, tmp_path):
        from repro.core.serialization import ensemble_payload
        from repro.core import Ensemble

        with np.load(saved) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["__arch_tag__"] = np.array("ResNetCIFAR")
        np.savez(tmp_path / "wrong.npz", **payload)
        for strict in (True, False):
            with pytest.raises(ValueError, match="architecture mismatch"):
                load_ensemble(tmp_path / "wrong.npz", factory, strict=strict)

    def test_all_members_corrupt_non_strict(self, saved, factory):
        archive = CorruptArchive(saved)
        for index in range(4):
            archive.corrupt_member(index)
        with pytest.raises(CheckpointError, match="no members could be"):
            load_ensemble(saved, factory, strict=False)


class TestPerMemberDamage:
    """Damage scoped to one member: strict raises, non-strict degrades."""

    @pytest.mark.parametrize("damage, reason_match", [
        ("corrupt", "not a valid npy entry"),
        ("drop", "no arrays stored"),
        ("poison", "non-finite values"),
    ])
    def test_strict_raises_naming_the_member(self, saved, factory, damage,
                                             reason_match):
        archive = CorruptArchive(saved)
        getattr(archive, {"corrupt": "corrupt_member",
                          "drop": "drop_member",
                          "poison": "poison_member"}[damage])(1)
        with pytest.raises(CheckpointError, match=f"member 1.*{reason_match}"):
            load_ensemble(saved, factory, strict=True)

    @pytest.mark.parametrize("damage", ["corrupt", "drop", "poison"])
    def test_non_strict_drops_and_reports(self, saved, factory, ensemble,
                                          request_batch, damage):
        archive = CorruptArchive(saved)
        getattr(archive, {"corrupt": "corrupt_member",
                          "drop": "drop_member",
                          "poison": "poison_member"}[damage])(1)
        report = LoadReport()
        restored = load_ensemble(saved, factory, strict=False, report=report)

        assert report.requested == 4
        assert report.loaded_indices == [0, 2, 3]
        assert [drop.index for drop in report.dropped] == [1]
        assert report.dropped[0].alpha == pytest.approx(1.5)
        assert report.degraded
        assert report.alpha_retained == pytest.approx(
            (0.5 + 2.5 + 3.5) / (0.5 + 1.5 + 2.5 + 3.5))
        # Degraded predictions are bit-identical to the α-renormalised
        # aggregate of the surviving members (Eq. 16 over the subset).
        survivors = sub_ensemble(ensemble, [0, 2, 3])
        assert np.array_equal(restored.predict_probs(request_batch),
                              survivors.predict_probs(request_batch))

    def test_v1_archive_loads_degraded_too(self, ensemble, factory, tmp_path,
                                           request_batch):
        from repro.core.serialization import ensemble_payload

        payload = ensemble_payload(ensemble)
        del payload["__arch_tag__"]
        payload["__format_version__"] = np.array(1)
        np.savez(tmp_path / "v1.npz", **payload)
        CorruptArchive(tmp_path / "v1.npz").corrupt_member(0)
        report = LoadReport()
        with pytest.warns(UserWarning, match="predates architecture tags"):
            restored = load_ensemble(tmp_path / "v1.npz", factory,
                                     strict=False, report=report)
        assert report.loaded_indices == [1, 2, 3]
        survivors = sub_ensemble(ensemble, [1, 2, 3])
        assert np.array_equal(restored.predict_probs(request_batch),
                              survivors.predict_probs(request_batch))


class TestTrainedMethods:
    """The same strict/degraded paths on engine-trained ensembles."""

    @pytest.mark.parametrize("method", ["edde", "bagging"])
    def test_degraded_load_of_trained_ensemble(self, method, tiny_image_split,
                                               mlp_factory, tmp_path):
        if method == "edde":
            config = EDDEConfig(num_models=3, gamma=0.1, beta=0.6,
                                first_epochs=1, later_epochs=1, lr=0.05,
                                batch_size=32, weight_decay=0.0)
            result = EDDETrainer(mlp_factory, config).fit(
                tiny_image_split.train, tiny_image_split.test, rng=0)
        else:
            config = BaselineConfig(num_models=3, epochs_per_model=1,
                                    lr=0.05, batch_size=32, weight_decay=0.0)
            result = Bagging(mlp_factory, config).fit(
                tiny_image_split.train, tiny_image_split.test, rng=0)
        path = tmp_path / f"{method}.npz"
        save_ensemble(result.ensemble, path)
        CorruptArchive(path).corrupt_member(0)

        with pytest.raises(CheckpointError, match="member 0"):
            load_ensemble(path, mlp_factory, strict=True)

        report = LoadReport()
        restored = load_ensemble(path, mlp_factory, strict=False,
                                 report=report)
        assert report.loaded_indices == [1, 2]
        assert len(restored) == 2
        survivors = sub_ensemble(result.ensemble, [1, 2])
        x = tiny_image_split.test.x[:16]
        assert np.array_equal(restored.predict_probs(x),
                              survivors.predict_probs(x))
