"""The kill-one-member acceptance property, end to end.

With one member corrupted *on disk* and another quarantined by the
circuit breaker *at runtime*, the service must still answer; its output
must be bit-identical to the α-renormalised Eq. 16 aggregate of the
surviving members; and ``ServiceHealth`` must name exactly which members
were lost at which stage, and why.
"""

import numpy as np
import pytest

from repro.serving import InferenceService, InputSpec, ServiceConfig
from repro.serving.faults import CorruptArchive, FlakyMember, ManualClock

from tests.serving.conftest import sub_ensemble


class TestKillOneMemberEndToEnd:
    @pytest.fixture
    def degraded_service(self, saved, factory, request_batch):
        # Stage 1: member 1 is corrupted on disk (torn write).
        CorruptArchive(saved).corrupt_member(1)
        clock = ManualClock()
        service = InferenceService.from_archive(
            saved, factory,
            ServiceConfig(clock=clock, fault_threshold=2,
                          input_spec=InputSpec.from_example(request_batch)))
        # Stage 2: member 2 (original index) starts crashing at runtime
        # until its breaker quarantines it.
        position = [m.index for m in service.members].index(2)
        service.members[position].model = FlakyMember(
            service.members[position].model)
        for _ in range(2):
            service.predict(request_batch)
        return service

    def test_still_answers_bit_identically(self, degraded_service, ensemble,
                                           request_batch):
        answer = degraded_service.predict(request_batch)
        assert answer.members_used == [0, 3]
        survivors = sub_ensemble(ensemble, [0, 3])
        assert np.array_equal(answer.probs,
                              survivors.predict_probs(request_batch))
        assert answer.probs.shape == (len(request_batch), 3)
        np.testing.assert_allclose(answer.probs.sum(axis=1), 1.0, atol=1e-9)
        assert answer.degraded
        # α used = 0.5 + 3.5 of configured 0.5 + 1.5 + 2.5 + 3.5
        assert answer.alpha_mass == pytest.approx(4.0 / 8.0)

    def test_health_names_every_loss(self, degraded_service):
        health = degraded_service.health()
        assert health.ready                       # 2 live >= ceil(4/2)
        assert health.members_total == 4
        assert health.members_live == [0, 3]
        assert list(health.dropped_at_load) == [1]
        assert "not a valid npy entry" in health.dropped_at_load[1]
        assert list(health.members_quarantined) == [2]
        assert "injected member crash" in health.members_quarantined[2]
        assert health.member_faults == {2: 2}
        assert health.effective_alpha_mass == pytest.approx(4.0 / 8.0)

    def test_quarantined_member_not_called_again(self, degraded_service,
                                                 request_batch):
        position = [m.index for m in degraded_service.members].index(2)
        flaky = degraded_service.members[position].model
        calls_before = flaky.calls
        degraded_service.predict(request_batch)
        assert flaky.calls == calls_before
