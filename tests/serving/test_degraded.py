"""The kill-one-member acceptance property, end to end.

With one member corrupted *on disk* and another quarantined by the
circuit breaker *at runtime*, the service must still answer; its output
must be bit-identical to the α-renormalised Eq. 16 aggregate of the
surviving members; and ``ServiceHealth`` must name exactly which members
were lost at which stage, and why.  The concurrent twin lives at the
bottom: a genuinely *slow* member inside the thread-pool executor must
yield the same bit-identical partial over the members that finished.
"""

import numpy as np
import pytest

from repro.core import Ensemble
from repro.serving import InferenceService, InputSpec, ServiceConfig
from repro.serving.faults import (
    CorruptArchive,
    FlakyMember,
    ManualClock,
    SlowMember,
)
from repro.serving.transport import PipelineConfig, ServingPipeline

from tests.serving.conftest import sub_ensemble


class TestKillOneMemberEndToEnd:
    @pytest.fixture
    def degraded_service(self, saved, factory, request_batch):
        # Stage 1: member 1 is corrupted on disk (torn write).
        CorruptArchive(saved).corrupt_member(1)
        clock = ManualClock()
        service = InferenceService.from_archive(
            saved, factory,
            ServiceConfig(clock=clock, fault_threshold=2,
                          input_spec=InputSpec.from_example(request_batch)))
        # Stage 2: member 2 (original index) starts crashing at runtime
        # until its breaker quarantines it.
        position = [m.index for m in service.members].index(2)
        service.members[position].model = FlakyMember(
            service.members[position].model)
        for _ in range(2):
            service.predict(request_batch)
        return service

    def test_still_answers_bit_identically(self, degraded_service, ensemble,
                                           request_batch):
        answer = degraded_service.predict(request_batch)
        assert answer.members_used == [0, 3]
        survivors = sub_ensemble(ensemble, [0, 3])
        assert np.array_equal(answer.probs,
                              survivors.predict_probs(request_batch))
        assert answer.probs.shape == (len(request_batch), 3)
        np.testing.assert_allclose(answer.probs.sum(axis=1), 1.0, atol=1e-9)
        assert answer.degraded
        # α used = 0.5 + 3.5 of configured 0.5 + 1.5 + 2.5 + 3.5
        assert answer.alpha_mass == pytest.approx(4.0 / 8.0)

    def test_health_names_every_loss(self, degraded_service):
        health = degraded_service.health()
        assert health.ready                       # 2 live >= ceil(4/2)
        assert health.members_total == 4
        assert health.members_live == [0, 3]
        assert list(health.dropped_at_load) == [1]
        assert "not a valid npy entry" in health.dropped_at_load[1]
        assert list(health.members_quarantined) == [2]
        assert "injected member crash" in health.members_quarantined[2]
        assert health.member_faults == {2: 2}
        assert health.effective_alpha_mass == pytest.approx(4.0 / 8.0)

    def test_quarantined_member_not_called_again(self, degraded_service,
                                                 request_batch):
        position = [m.index for m in degraded_service.members].index(2)
        flaky = degraded_service.members[position].model
        calls_before = flaky.calls
        degraded_service.predict(request_batch)
        assert flaky.calls == calls_before


class TestConcurrentDeadlinePartial:
    """A slow member in the *parallel* executor: the deadline abandons it
    and the answer is the bit-identical α-renormalised partial of the
    finished subset — the serial degraded property, under real threads
    and a real clock (deadline enforcement needs one)."""

    def test_slow_member_abandoned_partial_bitwise(self, factory,
                                                   request_batch):
        ensemble = Ensemble()
        for seed in range(4):
            ensemble.add(factory.build(rng=seed), alpha=seed + 0.5)
        service = InferenceService(ensemble, ServiceConfig())
        position = [m.index for m in service.members].index(1)
        # Real sleep (no manual clock): 0.5 s against a 0.05 s budget.
        service.members[position].model = SlowMember(
            service.members[position].model, seconds=0.5)
        with ServingPipeline(service, PipelineConfig(workers=4)) as pipeline:
            answer = pipeline.predict(request_batch, deadline=0.05)
        assert answer.deadline_hit
        assert 1 not in answer.members_used
        skipped = {index: kind for index, kind, _ in answer.members_skipped}
        assert skipped == {1: "deadline"}
        survivors = sub_ensemble(ensemble, answer.members_used)
        assert np.array_equal(answer.probs,
                              survivors.predict_probs(request_batch))
        # α renormalised over the finished subset, reported vs configured.
        used_alpha = sum(index + 0.5 for index in answer.members_used)
        assert answer.alpha_mass == pytest.approx(used_alpha / 8.0)
