"""The closed repair loop: buffer, gating, hot swap, rollback, e2e replay."""

import numpy as np
import pytest

from repro.core.ensemble import Ensemble
from repro.core.trainer import TrainingConfig, train_model
from repro.data.dataset import Dataset
from repro.experiments.drift import DriftReplayConfig, run_drift_replay
from repro.serving import InferenceService, ServiceConfig
from repro.serving.faults import ManualClock
from repro.serving.monitor import DriftMonitor, MonitorConfig
from repro.serving.repair import RepairConfig, RepairLoop, ReplayBuffer
from repro.serving.service import ServedPrediction

NUM_CLASSES = 3
DIM = 4
#: Well-separated class means: a (6,)-hidden MLP fits this in a few epochs.
MEANS = np.array([[3.0, 0, 0, 0], [0, 3.0, 0, 0], [0, 0, 3.0, 0]])
#: The covariate shift used to trigger drift in the loop tests.
SHIFT = np.array([0.0, 0, -2.5, 2.5])


def blobs(rng, n, shift=0.0):
    y = rng.integers(NUM_CLASSES, size=n)
    x = MEANS[y] + shift * SHIFT + rng.normal(0, 0.4, size=(n, DIM))
    return x, y


def member_prediction(member_probs):
    members = dict(enumerate(member_probs))
    combined = np.mean(list(members.values()), axis=0)
    return ServedPrediction(
        probs=combined, members_used=list(members), members_skipped=[],
        alpha_mass=1.0, deadline_hit=False, latency=0.0,
        member_probs=members)


def trained_service(factory, clock, seed=0, members=4):
    """Four MLPs fitted on the stationary blobs, behind one service."""
    rng = np.random.default_rng(seed)
    x, y = blobs(rng, 240)
    train_set = Dataset(x, y, NUM_CLASSES, name="repair-blobs")
    training = TrainingConfig(epochs=8, lr=0.1, batch_size=32,
                              schedule="constant")
    ensemble = Ensemble()
    for _ in range(members):
        model = factory.build(rng=rng)
        train_model(model, train_set, training, rng=rng)
        ensemble.add(model, alpha=1.0)
    return InferenceService(ensemble, config=ServiceConfig(
        expose_member_probs=True, clock=clock))


# --------------------------------------------------------------- buffer

class TestReplayBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=1)

    def test_append_validates_lengths(self):
        buffer = ReplayBuffer(capacity=4)
        with pytest.raises(ValueError):
            buffer.append(np.zeros((3, 2)), np.zeros(2, dtype=int))

    def test_eviction_keeps_the_newest(self):
        buffer = ReplayBuffer(capacity=3)
        for tag in range(5):
            buffer.append(np.full((2, 2), float(tag)),
                          np.zeros(2, dtype=int))
        assert len(buffer) == 3 and buffer.samples == 6
        train, x_hold, _ = buffer.split(0.34, num_classes=2)
        # batches 0 and 1 were evicted; newest batch (4) is the holdout
        assert set(np.unique(train.x)) == {2.0, 3.0}
        assert np.unique(x_hold) == [4.0]

    def test_inferred_classes(self):
        buffer = ReplayBuffer(capacity=4)
        with pytest.raises(ValueError):
            buffer.inferred_classes()
        buffer.append(np.zeros((3, 2)), np.array([0, 2, 1]))
        assert buffer.inferred_classes() == 3

    def test_split_is_disjoint_and_needs_two_batches(self):
        buffer = ReplayBuffer(capacity=8)
        buffer.append(np.zeros((4, 2)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            buffer.split(0.25, num_classes=2)
        for tag in range(1, 4):
            buffer.append(np.full((4, 2), float(tag)),
                          np.full(4, tag % 2, dtype=int))
        train, x_hold, y_hold = buffer.split(0.25, num_classes=2)
        assert len(train) + len(y_hold) == buffer.samples
        assert train.num_classes == 2
        # The newest batch is the holdout, and never also trains.
        assert np.unique(x_hold) == [3.0]
        assert 3.0 not in train.x


# --------------------------------------------------------------- gating

class TestGating:
    def alarmed_monitor(self, clock, batches=12):
        """A monitor with a latched disagreement alarm over 4 members."""
        monitor = DriftMonitor(MonitorConfig(warmup=2, min_std=0.01),
                               clock=clock)
        agree = np.tile(np.eye(NUM_CLASSES)[0], (4, 1)) * 0.94 + 0.02
        for _ in range(2):
            monitor.observe(member_prediction([agree] * 4))
        rng = np.random.default_rng(0)
        for _ in range(batches - 2):
            monitor.observe(member_prediction(
                [rng.dirichlet(np.ones(NUM_CLASSES), size=4)
                 for _ in range(4)]))
        assert monitor.alarmed
        return monitor

    def loop(self, ensemble, factory, clock, monitor, **overrides):
        service = InferenceService(ensemble, config=ServiceConfig(
            expose_member_probs=True, clock=clock))
        kwargs = dict(min_buffer_batches=2, post_alarm_batches=0,
                      retry_backoff_batches=2, max_attempts=2)
        kwargs.update(overrides)
        return RepairLoop(service, monitor, factory,
                          config=RepairConfig(**kwargs),
                          rng=np.random.default_rng(0))

    def fill_buffer(self, loop, batches=4):
        rng = np.random.default_rng(1)
        for _ in range(batches):
            x, y = blobs(rng, 8)
            loop.buffer.append(x, y)

    def test_quiet_monitor_never_repairs(self, ensemble, factory):
        clock = ManualClock()
        monitor = DriftMonitor(MonitorConfig(warmup=2), clock=clock)
        loop = self.loop(ensemble, factory, clock, monitor)
        self.fill_buffer(loop)
        assert loop.maybe_repair() is None
        assert loop.events == []

    def test_thin_buffer_defers(self, ensemble, factory):
        clock = ManualClock()
        loop = self.loop(ensemble, factory, clock,
                         self.alarmed_monitor(clock), min_buffer_batches=8)
        self.fill_buffer(loop, batches=3)
        assert loop.maybe_repair() is None

    def test_post_alarm_evidence_window(self, ensemble, factory):
        clock = ManualClock()
        # Alarm latches at batch >= 2; only ~9 batches observed since.
        monitor = self.alarmed_monitor(clock, batches=12)
        loop = self.loop(ensemble, factory, clock, monitor,
                         post_alarm_batches=50)
        self.fill_buffer(loop)
        assert loop.maybe_repair() is None

    def test_attempt_budget_is_a_hard_cap(self, ensemble, factory):
        clock = ManualClock()
        loop = self.loop(ensemble, factory, clock,
                         self.alarmed_monitor(clock), max_attempts=2)
        self.fill_buffer(loop)
        loop._attempts = 2
        assert loop.maybe_repair() is None

    def test_quorum_guard_skips(self, ensemble, factory):
        clock = ManualClock()
        monitor = self.alarmed_monitor(clock)
        service = InferenceService(ensemble, config=ServiceConfig(
            expose_member_probs=True, clock=clock, min_members=4))
        loop = RepairLoop(service, monitor, factory,
                          config=RepairConfig(min_buffer_batches=2,
                                              post_alarm_batches=0),
                          rng=np.random.default_rng(0))
        self.fill_buffer(loop)
        event = loop.maybe_repair()
        assert event.outcome == "skipped"
        assert "quorum" in event.reason
        assert service.health().member_swaps == 0

    def test_needs_two_scored_live_members(self, ensemble, factory):
        clock = ManualClock()
        monitor = DriftMonitor(MonitorConfig(warmup=2, min_std=0.01),
                               clock=clock)
        # Only member 0 ever reports probs: one scored member, no teacher.
        solo = np.tile(np.eye(NUM_CLASSES)[0], (4, 1)) * 0.94 + 0.02
        rng = np.random.default_rng(0)
        for i in range(8):
            probs = solo if i < 2 else \
                rng.dirichlet(np.ones(NUM_CLASSES), size=4)
            prediction = member_prediction([probs])
            monitor.observe(prediction)
        monitor.detectors["disagreement"].alarmed = True  # force the gate
        loop = self.loop(ensemble, factory, clock, monitor)
        self.fill_buffer(loop)
        event = loop.maybe_repair()
        assert event.outcome == "skipped"
        assert "at least 2" in event.reason


# ------------------------------------------------------------- hot swap

class SwapDuringForward:
    """Model wrapper that fires a hot swap from inside its own forward."""

    def __init__(self, inner, fire):
        self._inner = inner
        self._fire = fire

    def __call__(self, x):
        self._fire()
        return self._inner(x)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestHotSwap:
    def test_replace_member_validates_before_mutating(self, ensemble,
                                                      factory):
        service = InferenceService(ensemble)
        with pytest.raises(ValueError):
            service.replace_member(0, factory.build(rng=9), alpha=0.0)
        with pytest.raises(ValueError):
            service.replace_member(99, factory.build(rng=9), alpha=1.0)
        assert service.health().member_swaps == 0

    def test_retired_member_comes_back_intact(self, ensemble, factory):
        service = InferenceService(ensemble)
        original = service.member_by_index(2)
        replacement = factory.build(rng=9)
        retired = service.replace_member(2, replacement, alpha=4.0)
        assert retired is original
        assert retired.alpha == 2.5          # conftest: alpha = seed + 0.5
        swapped = service.member_by_index(2)
        assert swapped.model is replacement
        assert swapped.alpha == 4.0
        assert swapped.breaker.state == "closed"
        health = service.health()
        assert health.member_swaps == 1
        assert health.effective_alpha_mass == pytest.approx(1.0)

    def test_prediction_is_never_torn(self, ensemble, factory,
                                      request_batch):
        """A request in flight during a swap sees the *full* old roster."""
        service = InferenceService(ensemble)
        replacement = factory.build(rng=9)
        fired = []

        def fire():
            if not fired:
                fired.append(True)
                service.replace_member(2, replacement, alpha=1.0)

        member0 = service.members[0]
        member0.model = SwapDuringForward(member0.model, fire)
        before = ensemble.predict_probs(request_batch)

        during = service.predict(request_batch)
        assert fired
        # The old ensemble answered, at the old α weights -- including
        # the member that was swapped out mid-request.
        np.testing.assert_allclose(during.probs, before, atol=1e-12)
        assert during.alpha_mass == pytest.approx(1.0)

        after = service.predict(request_batch)
        expected = Ensemble()
        for member in service.members:
            expected.add(member.model._inner if member.index == 0
                         else member.model, member.alpha)
        np.testing.assert_allclose(
            after.probs, expected.predict_probs(request_batch), atol=1e-12)
        assert not np.allclose(after.probs, before)


# ------------------------------------------------------------- the loop

def drive(loop, clock, rng, batches, shift):
    """Serve `batches` blob batches through the closed loop."""
    for _ in range(batches):
        x, y = blobs(rng, 16, shift=shift)
        clock.advance(1.0)
        loop.step(x, y)


class TestRepairCycle:
    def closed_loop(self, factory, train_fn=None, **overrides):
        clock = ManualClock()
        service = trained_service(factory, clock)
        monitor = DriftMonitor(MonitorConfig(warmup=6, min_std=0.02),
                               clock=clock)
        kwargs = dict(min_buffer_batches=4, buffer_capacity=8,
                      post_alarm_batches=4, retry_backoff_batches=3,
                      max_attempts=3, train_epochs=8, lr=0.1,
                      batch_size=16)
        kwargs.update(overrides)
        loop = RepairLoop(service, monitor, factory,
                          config=RepairConfig(**kwargs),
                          rng=np.random.default_rng(7),
                          train_fn=train_fn)
        return loop, clock

    def test_honest_repair_is_accepted_and_recovers(self, factory):
        loop, clock = self.closed_loop(factory)
        rng = np.random.default_rng(3)
        drive(loop, clock, rng, batches=10, shift=0.0)
        assert not loop.monitor.alarmed
        drive(loop, clock, rng, batches=20, shift=1.0)
        repaired = [e for e in loop.events if e.outcome == "repaired"]
        assert repaired, [e.reason for e in loop.events]
        event = repaired[0]
        assert event.worst_member != event.teacher_member
        assert event.worst_member == max(
            event.scores, key=lambda i: (event.scores[i], i))
        assert event.candidate_accuracy >= event.pre_accuracy
        assert loop.service.health().member_swaps == len(repaired)
        # Post-repair the swapped roster must outperform the degraded
        # pre-repair service on fresh drifted data.
        x, y = blobs(rng, 200, shift=1.0)
        assert loop.service.predict(x).labels is not None
        post = float((loop.service.predict(x).labels == y).mean())
        assert post > event.pre_accuracy - 0.05
        assert post > 0.75

    def test_sabotaged_replacement_rolls_back(self, factory):
        def sabotage(student, train_set):
            # A confidently *wrong* replacement: fit rotated labels.
            wrong = Dataset(train_set.x,
                            (train_set.y + 1) % train_set.num_classes,
                            train_set.num_classes, name="sabotage")
            train_model(student, wrong,
                        TrainingConfig(epochs=10, lr=0.2, batch_size=16,
                                       schedule="constant"),
                        rng=np.random.default_rng(13))

        # Stationary stream: the degraded survivors stay strong on the
        # holdout, so the confidently-wrong student cannot clear the
        # strict-improvement bar (min_gain > 0).
        loop, clock = self.closed_loop(factory, train_fn=sabotage,
                                       min_gain=0.02)
        rng = np.random.default_rng(3)
        drive(loop, clock, rng, batches=10, shift=0.0)
        worst_before = max(loop.monitor.member_scores(),
                           key=lambda i: loop.monitor.member_scores()[i])
        event = loop.repair()

        assert event.outcome == "rolled_back"
        assert event.reason.startswith("candidate holdout accuracy")
        assert event.worst_member == worst_before
        assert event.worst_member != event.teacher_member
        assert event.candidate_accuracy < event.pre_accuracy + 0.02
        assert loop.repairs == 0
        assert loop.service.health().member_swaps == 0
        # The quarantined member was reinstated: the full roster serves.
        assert all(not m.breaker.quarantined
                   for m in loop.service.members)
        # The failed attempt still consumed budget and armed the backoff.
        assert loop._attempts == 1
        assert loop.maybe_repair() is None

    def test_rollback_retries_after_backoff(self, factory):
        calls = []

        def sabotage_once(student, train_set):
            calls.append(len(calls))
            if len(calls) == 1:
                return  # untrained garbage on the first attempt
            loop._train_replacement(student, train_set)

        loop, clock = self.closed_loop(factory, train_fn=sabotage_once,
                                       min_gain=0.001)
        rng = np.random.default_rng(3)
        drive(loop, clock, rng, batches=10, shift=0.0)
        drive(loop, clock, rng, batches=26, shift=1.0)
        outcomes = [e.outcome for e in loop.events
                    if e.outcome in ("repaired", "rolled_back")]
        assert outcomes[0] == "rolled_back"
        assert "repaired" in outcomes


# ----------------------------------------------------------- e2e replay

SMOKE = DriftReplayConfig(schedule="smoke")


class TestDriftReplay:
    def test_detect_repair_recover(self, tmp_path):
        config = DriftReplayConfig(schedule="smoke",
                                   checkpoint_dir=str(tmp_path))
        result = run_drift_replay(config, seed=0)
        assert result.drift_onset == 16
        assert result.detection_batch is not None
        assert result.detection_latency <= 8
        assert result.detection_statistics  # names the alarming stats
        repaired = [e for e in result.repair_events
                    if e.outcome == "repaired"]
        assert result.member_swaps == len(repaired) >= 1
        assert result.pre_drift_accuracy > 0.9
        assert result.post_repair_accuracy > result.drifted_accuracy
        assert result.recovered > 0
        assert result.final_alpha_mass == pytest.approx(1.0)
        # Each accepted repair checkpointed the post-swap ensemble.
        for event in repaired:
            assert event.checkpoint is not None
            assert (tmp_path / event.checkpoint.split("/")[-1]).exists()

    def test_bit_identical_replay(self):
        first = run_drift_replay(SMOKE, seed=0)
        second = run_drift_replay(SMOKE, seed=0)
        assert first.accuracy_curve == second.accuracy_curve
        payload_a, payload_b = first.to_payload(), second.to_payload()
        for payload in (payload_a, payload_b):
            for event in payload["repair_events"]:
                event.pop("wall_seconds")  # the only wall-clock field
            payload.pop("repair_wall_seconds")
        assert payload_a == payload_b

    def test_seed_moves_the_replay(self):
        a = run_drift_replay(SMOKE, seed=0)
        b = run_drift_replay(SMOKE, seed=1)
        assert a.accuracy_curve != b.accuracy_curve

    def test_label_delay_defers_detection(self):
        config = DriftReplayConfig(schedule="smoke", label_delay=3)
        result = run_drift_replay(config, seed=0)
        baseline = run_drift_replay(SMOKE, seed=0)
        assert result.detection_batch >= baseline.detection_batch
