"""InferenceService semantics: validation, breakers, deadlines, health.

Every time-dependent behaviour (breaker cooldown, deadlines) runs on a
``ManualClock``, so the whole state machine is deterministic — nothing
here sleeps.
"""

import numpy as np
import pytest

from repro.serving import (
    InferenceService,
    InputSpec,
    InvalidRequest,
    ServiceConfig,
    ServiceUnavailable,
)
from repro.serving.breaker import CLOSED, OPEN, CircuitBreaker
from repro.serving.faults import (
    CorruptArchive,
    FlakyMember,
    ManualClock,
    SlowMember,
)

from tests.serving.conftest import sub_ensemble


def make_service(saved, factory, request_batch, **config_kwargs):
    config_kwargs.setdefault("clock", ManualClock())
    config_kwargs.setdefault("input_spec",
                             InputSpec.from_example(request_batch))
    config = ServiceConfig(**config_kwargs)
    return InferenceService.from_archive(saved, factory, config), config


class TestValidation:
    def test_nan_payload_rejected(self, saved, factory, request_batch):
        service, _ = make_service(saved, factory, request_batch)
        poisoned = request_batch.copy()
        poisoned[0, 0] = np.nan
        with pytest.raises(InvalidRequest, match="non-finite") as excinfo:
            service.predict(poisoned)
        assert excinfo.value.field == "values"
        assert service.health().requests_rejected == 1

    def test_wrong_shape_rejected(self, saved, factory, request_batch):
        service, _ = make_service(saved, factory, request_batch)
        with pytest.raises(InvalidRequest, match="shape") as excinfo:
            service.predict(np.zeros((3, 7)))
        assert excinfo.value.field == "shape"

    def test_wrong_rank_rejected(self, saved, factory, request_batch):
        service, _ = make_service(saved, factory, request_batch)
        with pytest.raises(InvalidRequest):
            service.predict(np.zeros(4))

    def test_non_positive_deadline_rejected(self, saved, factory,
                                            request_batch):
        service, _ = make_service(saved, factory, request_batch)
        with pytest.raises(InvalidRequest, match="deadline"):
            service.predict(request_batch, deadline=0.0)

    def test_token_spec_rejects_floats_and_oov(self):
        spec = InputSpec.from_example(np.array([[1, 2, 3], [4, 5, 6]]))
        with pytest.raises(InvalidRequest, match="integer token ids"):
            spec.validate(np.zeros((1, 3)))
        with pytest.raises(InvalidRequest, match="above the allowed"):
            spec.validate(np.array([[7, 8, 9]]))

    def test_no_spec_still_screens_nan(self, saved, factory, request_batch):
        service, _ = make_service(saved, factory, request_batch,
                                  input_spec=None)
        with pytest.raises(InvalidRequest, match="non-finite"):
            service.predict(np.full((2, 4), np.inf))


class TestAggregateParity:
    def test_full_service_matches_ensemble(self, saved, factory, ensemble,
                                           request_batch):
        service, _ = make_service(saved, factory, request_batch)
        answer = service.predict(request_batch)
        assert np.array_equal(answer.probs,
                              ensemble.predict_probs(request_batch))
        assert answer.members_used == [0, 1, 2, 3]
        assert not answer.degraded
        assert answer.alpha_mass == pytest.approx(1.0)

    def test_member_fault_excluded_from_aggregate(self, saved, factory,
                                                  ensemble, request_batch):
        service, _ = make_service(saved, factory, request_batch)
        service.members[2].model = FlakyMember(service.members[2].model)
        answer = service.predict(request_batch)
        assert answer.members_used == [0, 1, 3]
        assert [(i, kind) for i, kind, _ in answer.members_skipped] == \
            [(2, "fault")]
        survivors = sub_ensemble(ensemble, [0, 1, 3])
        assert np.array_equal(answer.probs,
                              survivors.predict_probs(request_batch))
        assert answer.degraded

    def test_nan_member_output_is_a_fault(self, saved, factory, ensemble,
                                          request_batch):
        service, _ = make_service(saved, factory, request_batch)
        service.members[0].model = FlakyMember(service.members[0].model,
                                               mode="nan")
        answer = service.predict(request_batch)
        assert answer.members_used == [1, 2, 3]
        assert "non-finite" in answer.members_skipped[0][2]
        assert np.isfinite(answer.probs).all()


class TestCircuitBreaker:
    def test_unit_state_machine(self):
        clock = ManualClock()
        breaker = CircuitBreaker(fault_threshold=2, cooldown=10.0,
                                 clock=clock)
        assert breaker.allow() and breaker.state == CLOSED
        breaker.record_fault("boom")
        assert breaker.state == CLOSED          # below threshold
        breaker.record_fault("boom")
        assert breaker.state == OPEN and not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()                  # half-open probe admitted
        breaker.record_fault("still broken")
        assert breaker.state == OPEN            # probe failed: re-open
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.consecutive_faults == 0

    def test_quarantined_member_stops_being_called(self, saved, factory,
                                                   request_batch):
        service, _ = make_service(saved, factory, request_batch,
                                  fault_threshold=2)
        flaky = FlakyMember(service.members[1].model)
        service.members[1].model = flaky
        for _ in range(5):
            service.predict(request_batch)
        # Two faults tripped the breaker; the remaining three requests
        # never reached the member.
        assert flaky.calls == 2
        health = service.health()
        assert 1 in health.members_quarantined
        assert "injected member crash" in health.members_quarantined[1]
        assert health.member_faults[1] == 2

    def test_half_open_probe_readmits_recovered_member(self, saved, factory,
                                                       ensemble,
                                                       request_batch):
        clock = ManualClock()
        service, _ = make_service(saved, factory, request_batch,
                                  clock=clock, fault_threshold=1,
                                  breaker_cooldown=5.0)
        flaky = FlakyMember(service.members[3].model, every=10 ** 9)
        service.members[3].model = flaky
        service.predict(request_batch)          # fault -> quarantined
        assert service.members[3].breaker.state == OPEN
        service.predict(request_batch)          # still cooling down
        assert flaky.calls == 1

        clock.advance(5.0)
        answer = service.predict(request_batch)  # probe passes: re-admitted
        assert flaky.calls == 2
        assert service.members[3].breaker.state == CLOSED
        assert answer.members_used == [0, 1, 2, 3]
        assert np.array_equal(answer.probs,
                              ensemble.predict_probs(request_batch))

    def test_all_members_quarantined_is_unavailable(self, saved, factory,
                                                    request_batch):
        service, _ = make_service(saved, factory, request_batch,
                                  fault_threshold=1)
        for member in service.members:
            member.model = FlakyMember(member.model)
        with pytest.raises(ServiceUnavailable, match="no member produced"):
            service.predict(request_batch)
        with pytest.raises(ServiceUnavailable, match="quarantined"):
            service.predict(request_batch)
        health = service.health()
        assert not health.ready
        assert health.members_live == []
        assert health.requests_unavailable == 2


class TestDeadlines:
    def test_partial_equals_aggregate_of_finishers(self, saved, factory,
                                                   ensemble, request_batch):
        clock = ManualClock()
        service, _ = make_service(saved, factory, request_batch, clock=clock)
        # Member 1 burns the whole budget; members 2 and 3 never start.
        service.members[1].model = SlowMember(service.members[1].model,
                                              seconds=1.0, clock=clock)
        answer = service.predict(request_batch, deadline=0.5)
        assert answer.members_used == [0, 1]
        assert [(i, kind) for i, kind, _ in answer.members_skipped] == \
            [(2, "deadline"), (3, "deadline")]
        assert answer.deadline_hit and answer.degraded
        finishers = sub_ensemble(ensemble, [0, 1])
        assert np.array_equal(answer.probs,
                              finishers.predict_probs(request_batch))

    def test_generous_deadline_serves_everyone(self, saved, factory,
                                               ensemble, request_batch):
        clock = ManualClock()
        service, _ = make_service(saved, factory, request_batch, clock=clock)
        service.members[0].model = SlowMember(service.members[0].model,
                                              seconds=0.01, clock=clock)
        answer = service.predict(request_batch, deadline=10.0)
        assert answer.members_used == [0, 1, 2, 3]
        assert not answer.deadline_hit
        assert np.array_equal(answer.probs,
                              ensemble.predict_probs(request_batch))


class TestQuorum:
    def test_refuses_to_start_below_quorum(self, saved, factory,
                                           request_batch):
        archive = CorruptArchive(saved)
        for index in (1, 2, 3):
            archive.corrupt_member(index)
        with pytest.raises(ServiceUnavailable, match="quorum not met"):
            make_service(saved, factory, request_batch)

    def test_default_quorum_is_majority(self, saved, factory, request_batch):
        CorruptArchive(saved).corrupt_member(0)
        service, _ = make_service(saved, factory, request_batch)
        assert service.min_members == 2       # ceil(4 / 2)
        assert service.health().ready

    def test_min_members_one_serves_a_single_survivor(self, saved, factory,
                                                      ensemble,
                                                      request_batch):
        archive = CorruptArchive(saved)
        for index in (0, 1, 2):
            archive.corrupt_member(index)
        service, _ = make_service(saved, factory, request_batch,
                                  min_members=1)
        answer = service.predict(request_batch)
        assert answer.members_used == [3]
        survivor = sub_ensemble(ensemble, [3])
        assert np.array_equal(answer.probs,
                              survivor.predict_probs(request_batch))

    def test_strict_mode_refuses_damaged_archive(self, saved, factory,
                                                 request_batch):
        CorruptArchive(saved).corrupt_member(0)
        with pytest.raises(ServiceUnavailable, match="cannot load"):
            make_service(saved, factory, request_batch, strict=True)


class TestHealth:
    def test_counters_and_masses(self, saved, factory, request_batch):
        CorruptArchive(saved).corrupt_member(1)
        service, _ = make_service(saved, factory, request_batch,
                                  fault_threshold=1)
        service.members[2].model = FlakyMember(service.members[2].model)
        service.predict(request_batch)
        with pytest.raises(InvalidRequest):
            service.predict(np.full((1, 4), np.nan))
        health = service.health()
        assert health.members_total == 4
        assert health.members_live == [0, 2]
        assert list(health.members_quarantined) == [3]
        assert list(health.dropped_at_load) == [1]
        # live α = 0.5 + 2.5 of configured 0.5+1.5+2.5+3.5
        assert health.effective_alpha_mass == pytest.approx(3.0 / 8.0)
        assert health.requests_served == 1
        assert health.requests_rejected == 1
