"""Command-line interface behaviour."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(
            ["train", "--scenario", "c10-resnet"])
        assert args.method == "edde"
        assert args.seed == 0

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--scenario", "c10-resnet", "--method", "xgboost"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "edde" in output
        assert "c100-resnet" in output

    def test_train_tiny(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRAIN_SIZE", "60")
        monkeypatch.setenv("REPRO_TEST_SIZE", "30")
        monkeypatch.setenv("REPRO_SCALE", "0.13")  # 1-epoch budgets
        save_path = str(tmp_path / "ens.npz")
        code = main(["train", "--scenario", "c10-resnet", "--method", "edde",
                     "--save", save_path])
        assert code == 0
        output = capsys.readouterr().out
        assert "ensemble accuracy" in output
        assert "saved ensemble" in output

    def test_compare_tiny(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_SIZE", "60")
        monkeypatch.setenv("REPRO_TEST_SIZE", "30")
        monkeypatch.setenv("REPRO_SCALE", "0.13")
        code = main(["compare", "--scenario", "c10-resnet",
                     "--methods", "single,edde"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Single Model" in output
        assert "EDDE" in output
