"""Command-line interface behaviour."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(
            ["train", "--scenario", "c10-resnet"])
        assert args.method == "edde"
        assert args.seed == 0

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["train", "--scenario", "c10-resnet", "--method", "xgboost"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "edde" in output
        assert "c100-resnet" in output

    def test_train_tiny(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRAIN_SIZE", "60")
        monkeypatch.setenv("REPRO_TEST_SIZE", "30")
        monkeypatch.setenv("REPRO_SCALE", "0.13")  # 1-epoch budgets
        save_path = str(tmp_path / "ens.npz")
        code = main(["train", "--scenario", "c10-resnet", "--method", "edde",
                     "--save", save_path])
        assert code == 0
        output = capsys.readouterr().out
        assert "ensemble accuracy" in output
        assert "saved ensemble" in output

    def test_compare_tiny(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_SIZE", "60")
        monkeypatch.setenv("REPRO_TEST_SIZE", "30")
        monkeypatch.setenv("REPRO_SCALE", "0.13")
        code = main(["compare", "--scenario", "c10-resnet",
                     "--methods", "single,edde"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Single Model" in output
        assert "EDDE" in output


class TestServeEval:
    @pytest.fixture(autouse=True)
    def tiny_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_SIZE", "60")
        monkeypatch.setenv("REPRO_TEST_SIZE", "30")
        monkeypatch.setenv("REPRO_SCALE", "0.13")

    @pytest.fixture
    def saved_ensemble(self, tmp_path):
        path = str(tmp_path / "ens.npz")
        assert main(["train", "--scenario", "c10-resnet", "--method", "edde",
                     "--save", path]) == 0
        return path

    def test_clean_serving(self, capsys, saved_ensemble):
        code = main(["serve-eval", "--scenario", "c10-resnet",
                     "--ensemble", saved_ensemble, "--requests", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 answered" in out
        assert "accuracy (served)" in out
        assert "service health:    ready" in out

    def test_degraded_serving_under_injection(self, capsys, saved_ensemble):
        code = main(["serve-eval", "--scenario", "c10-resnet",
                     "--ensemble", saved_ensemble, "--requests", "4",
                     "--inject", "corrupt:0,flaky:1:every=1",
                     "--fault-threshold", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "inject: corrupted member 0 arrays" in out
        assert "dropped #0 at load" in out
        assert "quarantined #1" in out
        assert "4 answered" in out
        # The rehearsal ran on a copy: the artifact still loads strictly.
        assert main(["serve-eval", "--scenario", "c10-resnet",
                     "--ensemble", saved_ensemble, "--requests", "1",
                     "--strict"]) == 0

    def test_quorum_refusal_is_clean_exit_2(self, capsys, saved_ensemble):
        code = main(["serve-eval", "--scenario", "c10-resnet",
                     "--ensemble", saved_ensemble, "--requests", "2",
                     "--inject", "truncate"])
        assert code == 2
        err = capsys.readouterr().err
        assert "service refused to start" in err
        assert "Traceback" not in err

    def test_poisoned_requests_are_rejected_not_served(self, capsys,
                                                       saved_ensemble):
        code = main(["serve-eval", "--scenario", "c10-resnet",
                     "--ensemble", saved_ensemble, "--requests", "4",
                     "--poison-every", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 rejected" in out
        assert "non-finite" in out

    def test_bad_inject_spec_is_clean_error(self, capsys, tmp_path):
        code = main(["serve-eval", "--scenario", "c10-resnet",
                     "--ensemble", str(tmp_path / "whatever.npz"),
                     "--inject", "explode:0"])
        assert code == 2
        assert "bad --inject spec" in capsys.readouterr().err


class TestFaultToleranceFlags:
    @pytest.fixture(autouse=True)
    def tiny_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_SIZE", "60")
        monkeypatch.setenv("REPRO_TEST_SIZE", "30")
        monkeypatch.setenv("REPRO_SCALE", "0.13")

    def test_resume_requires_checkpoint_dir(self, capsys):
        code = main(["train", "--scenario", "c10-resnet", "--resume"])
        assert code == 2
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_resume_missing_checkpoints_is_clean_error(self, capsys, tmp_path):
        # Missing/corrupt checkpoints must exit non-zero with a message,
        # never a traceback.
        code = main(["train", "--scenario", "c10-resnet",
                     "--checkpoint-dir", str(tmp_path / "absent"), "--resume"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error: cannot resume" in err
        assert "Traceback" not in err

    def test_resume_corrupt_manifest_is_clean_error(self, capsys, tmp_path):
        directory = tmp_path / "ckpt"
        directory.mkdir()
        (directory / "manifest.json").write_text("{broken")
        code = main(["train", "--scenario", "c10-resnet",
                     "--checkpoint-dir", str(directory), "--resume"])
        assert code == 2
        assert "error: cannot resume" in capsys.readouterr().err

    def test_checkpoint_then_resume(self, capsys, tmp_path):
        directory = str(tmp_path / "ckpt")
        assert main(["train", "--scenario", "c10-resnet", "--method", "edde",
                     "--checkpoint-dir", directory]) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "ckpt" / "manifest.json").is_file()

        assert main(["train", "--scenario", "c10-resnet", "--method", "edde",
                     "--checkpoint-dir", directory, "--resume"]) == 0
        second = capsys.readouterr().out
        assert "resuming edde from checkpoint round" in second
        accuracy = [line for line in first.splitlines()
                    if "ensemble accuracy" in line]
        assert accuracy[0] in second


class TestGridCommand:
    @pytest.fixture(autouse=True)
    def tiny_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_SIZE", "60")
        monkeypatch.setenv("REPRO_TEST_SIZE", "30")
        monkeypatch.setenv("REPRO_SCALE", "0.13")

    @pytest.fixture
    def spec_path(self, tmp_path):
        import json
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "cli_smoke",
            "factors": {"method": ["single"], "scenario": ["c10-resnet"],
                        "seed": [0, 1]},
            "checkpoint": False,
        }))
        return str(path)

    def test_in_memory_grid(self, capsys, spec_path, tmp_path):
        results = tmp_path / "results"
        code = main(["grid", "--spec", spec_path,
                     "--results", str(results)])
        assert code == 0
        out = capsys.readouterr().out
        assert "final_accuracy" in out
        assert (results / "GRID_cli_smoke.json").is_file()

    def test_sharded_flow(self, capsys, spec_path, tmp_path):
        out_dir = str(tmp_path / "state")
        results = tmp_path / "results"
        args = ["grid", "--spec", spec_path, "--out", out_dir,
                "--results", str(results)]
        assert main(args + ["--shard", "0/2"]) == 0
        assert "waiting for other shards" in capsys.readouterr().out
        assert not (results / "GRID_cli_smoke.json").is_file()
        assert main(args + ["--shard", "1/2"]) == 0
        assert "aggregate artifact" in capsys.readouterr().out
        assert (results / "GRID_cli_smoke.json").is_file()
        # state exists now: a re-run without --resume must refuse...
        assert main(args) == 2
        assert "resume" in capsys.readouterr().err
        # ...and --resume just replays the manifests
        assert main(args + ["--resume"]) == 0

    def test_bad_shard_is_clean_error(self, capsys, spec_path, tmp_path):
        code = main(["grid", "--spec", spec_path,
                     "--out", str(tmp_path), "--shard", "two/four"])
        assert code == 2
        assert "--shard" in capsys.readouterr().err

    def test_shard_without_out_rejected(self, capsys, spec_path):
        code = main(["grid", "--spec", spec_path, "--shard", "0/2"])
        assert code == 2
        assert "--out" in capsys.readouterr().err

    def test_workers_without_out_rejected(self, capsys, spec_path):
        code = main(["grid", "--spec", spec_path, "--workers", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--out" in err
        assert "Traceback" not in err

    def test_malformed_spec_is_clean_error(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "factors": {"seed": [0]}, "oops": 1}')
        code = main(["grid", "--spec", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown spec field" in err
        assert "Traceback" not in err
