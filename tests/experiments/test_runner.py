"""Experiment runners on a tiny MLP scenario (fast end-to-end coverage)."""

import numpy as np
import pytest

from repro.experiments.protocol import Scenario
from repro.experiments.runner import (
    make_edde_config,
    run_ablation,
    run_beta_sweep,
    run_bias_variance,
    run_diversity_analysis,
    run_effectiveness,
    run_gamma_sweep,
    run_method,
)


@pytest.fixture
def tiny_scenario(tiny_image_split, mlp_factory):
    return Scenario(name="tiny", split=tiny_image_split, factory=mlp_factory,
                    ensemble_size=2, epochs_per_model=2,
                    edde_first_epochs=2, edde_later_epochs=1,
                    lr=0.05, batch_size=32, gamma=0.1, beta=0.7,
                    weight_decay=0.0)


class TestRunMethod:
    @pytest.mark.parametrize("method", ["single", "bagging", "adaboost_m1",
                                        "adaboost_nc", "snapshot", "bans",
                                        "edde"])
    def test_dispatch(self, method, tiny_scenario):
        result = run_method(method, tiny_scenario, rng=0)
        assert 0.0 <= result.final_accuracy <= 1.0

    def test_unknown_method(self, tiny_scenario):
        with pytest.raises(ValueError):
            run_method("gradient-boosting", tiny_scenario)

    def test_overrides_forwarded(self, tiny_scenario):
        result = run_method("edde", tiny_scenario, rng=0, num_models=3)
        assert len(result.ensemble) == 3


class TestEddeConfig:
    def test_matches_budget(self, tiny_scenario):
        config = make_edde_config(tiny_scenario)
        assert config.num_models == tiny_scenario.edde_num_models()
        assert config.gamma == tiny_scenario.gamma

    def test_half_budget_note(self, tiny_scenario):
        tiny_scenario.notes["edde_half_budget"] = True
        full = tiny_scenario.total_budget
        config = make_edde_config(tiny_scenario)
        assert config.total_epochs() <= max(tiny_scenario.edde_first_epochs,
                                            full // 2) + 1


class TestRunners:
    def test_effectiveness_subset(self, tiny_scenario):
        results = run_effectiveness(tiny_scenario,
                                    methods=("single", "edde"), rng=0)
        assert set(results) == {"single", "edde"}

    def test_gamma_sweep(self, tiny_scenario):
        results = run_gamma_sweep(tiny_scenario, gammas=(0.0, 0.5), rng=0)
        assert set(results) == {0.0, 0.5}
        for result in results.values():
            assert 0.0 <= result.final_accuracy <= 1.0

    def test_diversity_analysis(self, tiny_scenario):
        outputs = run_diversity_analysis(tiny_scenario, num_models=2, rng=0)
        assert set(outputs) == {"Snapshot Ensemble", "EDDE", "AdaBoost.NC"}
        for summary in outputs.values():
            assert summary["similarity_matrix"].shape == (2, 2)
            assert 0.0 <= summary["diversity"] <= 1.0

    def test_ablation(self, tiny_scenario):
        outputs = run_ablation(tiny_scenario, rng=0)
        expected = {"EDDE", "EDDE (normal loss)", "EDDE (transfer all)",
                    "EDDE (transfer none)", "AdaBoost.NC (transfer)"}
        assert set(outputs) == expected

    def test_ablation_extended(self, tiny_scenario):
        outputs = run_ablation(tiny_scenario, rng=0, extended=True)
        assert "EDDE (weights from W_{t-1})" in outputs
        assert "EDDE (correlate h_{t-1} only)" in outputs

    def test_bias_variance(self, tiny_scenario):
        points = run_bias_variance(tiny_scenario,
                                   methods=("snapshot", "edde"), rng=0)
        assert len(points) == 2
        for point in points:
            assert 0.0 <= point.bias <= 1.0
            assert 0.0 <= point.variance <= 1.0

    def test_beta_sweep(self, tiny_scenario):
        probes = run_beta_sweep(tiny_scenario, betas=(1.0, 0.5), n_folds=4,
                                probe_epochs=1, teacher_epochs=1, rng=0)
        assert [p.beta for p in probes] == [1.0, 0.5]
