"""Scenario construction and budget scaling."""

import numpy as np
import pytest

from repro.experiments.protocol import Scenario, build_scenario, scale
from repro.models import MLP, ModelFactory


class TestBuildScenario:
    def test_cv_scenarios(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_SIZE", "60")
        monkeypatch.setenv("REPRO_TEST_SIZE", "30")
        scenario = build_scenario("c10-resnet", rng=0)
        assert scenario.split.num_classes == 10
        assert scenario.total_budget == scenario.ensemble_size * scenario.epochs_per_model
        assert scenario.gamma == 0.1

    def test_densenet_settings(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_SIZE", "60")
        monkeypatch.setenv("REPRO_TEST_SIZE", "30")
        scenario = build_scenario("c100-densenet", rng=0)
        assert scenario.lr == 0.2
        assert scenario.gamma == 0.2

    def test_nlp_scenario(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_SIZE", "60")
        monkeypatch.setenv("REPRO_TEST_SIZE", "30")
        scenario = build_scenario("imdb-textcnn", rng=0)
        assert scenario.split.vocab_size == 5000
        assert scenario.notes.get("edde_half_budget")
        assert 0.5 < scenario.beta < 1.0  # embedding+conv fraction

    def test_unknown_names(self):
        with pytest.raises(ValueError):
            build_scenario("mnist-lenet")
        with pytest.raises(ValueError):
            build_scenario("c10")
        with pytest.raises(ValueError):
            build_scenario("imdb-resnet")

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale() == 2.5
        monkeypatch.delenv("REPRO_SCALE")
        assert scale() == 1.0

    def test_scaled_budgets(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_SIZE", "60")
        monkeypatch.setenv("REPRO_TEST_SIZE", "30")
        monkeypatch.setenv("REPRO_SCALE", "2")
        doubled = build_scenario("c10-resnet", rng=0)
        monkeypatch.setenv("REPRO_SCALE", "1")
        normal = build_scenario("c10-resnet", rng=0)
        assert doubled.epochs_per_model == 2 * normal.epochs_per_model


class TestScenarioHelpers:
    def _scenario(self, tiny_image_split, factory):
        return Scenario(name="t", split=tiny_image_split, factory=factory,
                        ensemble_size=4, epochs_per_model=10,
                        edde_first_epochs=10, edde_later_epochs=5,
                        lr=0.1, batch_size=32, gamma=0.1, beta=0.7)

    def test_edde_num_models_fills_budget(self, tiny_image_split, mlp_factory):
        scenario = self._scenario(tiny_image_split, mlp_factory)
        # budget 40: first 10 + 6 later models x 5 = 40
        assert scenario.edde_num_models() == 7

    def test_edde_num_models_custom_budget(self, tiny_image_split, mlp_factory):
        scenario = self._scenario(tiny_image_split, mlp_factory)
        assert scenario.edde_num_models(budget=20) == 3
        assert scenario.edde_num_models(budget=10) == 1
