"""Multi-seed replication helpers."""

import numpy as np
import pytest

from repro.experiments import ReplicatedResult, significantly_better
from repro.experiments.grid import compare_replicated, run_replicated
from repro.experiments.protocol import Scenario


@pytest.fixture
def tiny_scenario(tiny_image_split, mlp_factory):
    return Scenario(name="tiny", split=tiny_image_split, factory=mlp_factory,
                    ensemble_size=2, epochs_per_model=1,
                    edde_first_epochs=1, edde_later_epochs=1,
                    lr=0.05, batch_size=32, gamma=0.1, beta=0.7,
                    weight_decay=0.0)


class TestRunReplicated:
    def test_collects_per_seed(self, tiny_scenario):
        replicated = run_replicated("single", tiny_scenario, seeds=(0, 1))
        assert len(replicated.accuracies) == 2
        assert len(replicated.results) == 2
        assert 0.0 <= replicated.mean <= 1.0
        assert replicated.std >= 0.0

    def test_same_seed_zero_variance(self, tiny_scenario):
        replicated = run_replicated("single", tiny_scenario, seeds=(3, 3))
        assert replicated.std == pytest.approx(0.0)

    def test_summary_format(self, tiny_scenario):
        replicated = run_replicated("single", tiny_scenario, seeds=(0,))
        assert "n=1" in replicated.summary()

    def test_compare(self, tiny_scenario):
        outputs = compare_replicated(("single", "bagging"), tiny_scenario,
                                     seeds=(0,))
        assert set(outputs) == {"single", "bagging"}


class TestStd:
    def test_sample_std_uses_ddof_1(self):
        accs = [0.7, 0.8, 0.9]
        result = ReplicatedResult("m", accuracies=accs)
        assert result.std == pytest.approx(float(np.std(accs, ddof=1)))

    def test_single_seed_std_is_zero(self):
        assert ReplicatedResult("m", accuracies=[0.8]).std == 0.0


class TestSignificance:
    def test_clear_separation(self):
        a = ReplicatedResult("a", accuracies=[0.9, 0.91, 0.89])
        b = ReplicatedResult("b", accuracies=[0.5, 0.52, 0.48])
        assert significantly_better(a, b)
        assert not significantly_better(b, a)

    def test_overlapping_not_significant(self):
        a = ReplicatedResult("a", accuracies=[0.70, 0.80])
        b = ReplicatedResult("b", accuracies=[0.72, 0.78])
        assert not significantly_better(a, b)
