"""The grid runner: spec expansion, sharding, resume and aggregation.

Most tests drive a cheap deterministic ``toy`` runner so the executor
semantics (shard partition, manifests, resume, parallel workers) are
exercised without training; the integration tests at the bottom run the
real ``method`` runner on the tiny scenario, including a mid-fit kill
that resumes from PR 2's round checkpoints.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.grid import (
    GridExecutor,
    GridSpec,
    GridSpecError,
    GridStateError,
    RunOutput,
    aggregate_records,
    beta_teacher_rng,
    collect_records,
    find_group,
    grid_result,
    register_runner,
    run_grid,
    run_rng,
    sample_std,
    scenario_scope,
    significance_matrix,
    stable_digest,
)
from repro.experiments.grid.spec import canonical_json
from repro.experiments.protocol import Scenario

from tests.faults.injection import InjectFault

# ----------------------------------------------------------------------
# A deterministic, training-free runner for executor-semantics tests.

EXECUTED = []          # run_ids the toy runner actually executed (per process)
KILL_SEEDS = set()     # seeds the toy runner dies on (simulated kill)


def _toy_runner(run, context):
    if run.seed in KILL_SEEDS:
        raise KeyboardInterrupt("injected kill")
    EXECUTED.append(run.run_id)
    value = float(run_rng(run).random())
    return RunOutput(metrics={"final_accuracy": value,
                              "gamma_echo": run.override_dict.get("gamma", 0.0)},
                     meta={"method_label": run.method})


def _flaky_runner(run, context):
    if run.seed == 1:
        raise ValueError("synthetic fault")
    return _toy_runner(run, context)


register_runner("toy", _toy_runner, replace=True)
register_runner("flaky", _flaky_runner, replace=True)


def toy_spec(**kw):
    defaults = dict(
        name="toy_grid",
        factors={"method": ["a", "b"], "scenario": ["s1", "s2"],
                 "seed": [0, 1]},
        runner="toy", checkpoint=False)
    defaults.update(kw)
    return GridSpec(**defaults)


@pytest.fixture(autouse=True)
def _reset_toy_state():
    EXECUTED.clear()
    KILL_SEEDS.clear()
    yield
    KILL_SEEDS.clear()


def strip_seconds(payloads):
    """Drop the wall-clock fields — the only legitimate divergence
    between two executions of the same run table."""
    return [{**{k: v for k, v in p.items() if k != "seconds"},
             "meta": {k: v for k, v in p.get("meta", {}).items()
                      if k != "round_seconds"}}
            for p in payloads]


# ----------------------------------------------------------------------
class TestSpecExpansion:
    def test_expansion_is_deterministic(self):
        table_a = toy_spec().expand()
        table_b = toy_spec().expand()
        assert [r.run_id for r in table_a] == [r.run_id for r in table_b]
        assert [r.factors for r in table_a] == [r.factors for r in table_b]
        assert [r.index for r in table_a] == list(range(8))

    def test_declared_factor_order(self):
        runs = toy_spec().expand()
        # itertools.product in declared order: last factor varies fastest.
        assert runs[0].factor_dict == {"method": "a", "scenario": "s1",
                                       "seed": 0}
        assert runs[1].factor_dict == {"method": "a", "scenario": "s1",
                                       "seed": 1}
        assert runs[4].factor_dict["method"] == "b"

    def test_run_id_is_content_derived(self):
        run = toy_spec().expand()[3]
        digest = stable_digest({"grid": "toy_grid",
                                "cell": run.factor_dict})
        assert run.run_id == f"r{run.index:04d}-{digest}"

    def test_missing_seed_factor_defaults_to_zero(self):
        spec = GridSpec(name="g", factors={"method": ["a"]}, runner="toy")
        runs = spec.expand()
        assert [r.seed for r in runs] == [0]
        assert runs[0].factor_dict["seed"] == 0

    def test_constraints_prune_and_reindex(self):
        spec = toy_spec(constraints=[{"method": "a", "scenario": "s2"}])
        runs = spec.expand()
        assert len(runs) == 6
        assert not any(r.method == "a" and r.scenario == "s2" for r in runs)
        assert [r.index for r in runs] == list(range(6))

    def test_constraint_list_means_membership(self):
        spec = toy_spec(constraints=[{"seed": [1]}])
        assert all(r.seed == 0 for r in spec.expand())

    def test_free_factor_becomes_override(self):
        spec = GridSpec(name="g", factors={"method": ["a"],
                                           "gamma": [0.1, 0.9]},
                        base={"gamma": 0.5, "lr": 0.01}, runner="toy")
        runs = spec.expand()
        assert [r.override_dict["gamma"] for r in runs] == [0.1, 0.9]
        assert all(r.override_dict["lr"] == 0.01 for r in runs)

    def test_case_bundles_resolve(self):
        spec = GridSpec(
            name="g", factors={"scenario": ["s1"]},
            cases={"plain": {"method": "edde"},
                   "variant": {"method": "edde", "runner": "flaky",
                               "overrides": {"gamma": 0.0}}},
            runner="toy")
        runs = {r.factor_dict["case"]: r for r in spec.expand()}
        assert runs["plain"].runner == "toy"
        assert runs["variant"].runner == "flaky"
        assert runs["variant"].override_dict == {"gamma": 0.0}
        assert runs["variant"].method == "edde"

    def test_all_cells_pruned_rejected(self):
        spec = toy_spec(constraints=[{"seed": [0, 1]}])
        with pytest.raises(GridSpecError, match="pruned every cell"):
            spec.expand()


class TestSpecValidation:
    def test_bad_name_rejected(self):
        with pytest.raises(GridSpecError, match="slug"):
            GridSpec(name="no spaces!", factors={"seed": [0]})

    def test_empty_factor_rejected(self):
        with pytest.raises(GridSpecError, match="no levels"):
            GridSpec(name="g", factors={"method": []})

    def test_constraint_on_unknown_factor_rejected(self):
        with pytest.raises(GridSpecError, match="unknown factor"):
            GridSpec(name="g", factors={"seed": [0]},
                     constraints=[{"beta": 1}])

    def test_case_factor_must_match_bundles(self):
        with pytest.raises(GridSpecError, match="unknown bundle"):
            GridSpec(name="g", factors={"case": ["missing"]},
                     cases={"present": {}})

    def test_from_payload_rejects_unknown_fields(self):
        with pytest.raises(GridSpecError, match="unknown spec field"):
            GridSpec.from_payload({"name": "g", "factors": {"seed": [0]},
                                   "typo_field": 1})

    def test_from_payload_requires_name_and_factors(self):
        with pytest.raises(GridSpecError, match="missing"):
            GridSpec.from_payload({"name": "g"})

    def test_from_json_missing_file(self, tmp_path):
        with pytest.raises(GridSpecError, match="cannot read"):
            GridSpec.from_json(tmp_path / "nope.json")

    def test_spec_hash_round_trips_and_discriminates(self):
        spec = toy_spec()
        clone = GridSpec.from_payload(json.loads(
            canonical_json(spec.to_payload())))
        assert clone.spec_hash == spec.spec_hash
        assert toy_spec(base={"gamma": 0.3}).spec_hash != spec.spec_hash


class TestRunRng:
    def test_depends_on_cell_not_order(self):
        runs = toy_spec().expand()
        values = [run_rng(r).random() for r in runs]
        assert len(set(values)) == len(values)
        assert [run_rng(r).random() for r in runs] == values

    def test_salt_derives_independent_stream(self):
        run = toy_spec().expand()[0]
        assert run_rng(run).random() != run_rng(run, salt="probe").random()

    def test_seed_factor_changes_stream(self):
        run_s0, run_s1 = toy_spec().expand()[:2]
        assert run_rng(run_s0).random() != run_rng(run_s1).random()

    def test_exclude_drops_factor_from_stream(self):
        spec = GridSpec(name="g", factors={"scenario": ["s1"],
                                           "beta": [1.0, 0.5]},
                        runner="toy", checkpoint=False)
        run_a, run_b = spec.expand()
        assert run_rng(run_a).random() != run_rng(run_b).random()
        assert run_rng(run_a, exclude=("beta",)).random() \
            == run_rng(run_b, exclude=("beta",)).random()


def beta_probe_spec(**kw):
    defaults = dict(
        name="beta_grid",
        factors={"scenario": ["s1", "s2"], "beta": [1.0, 0.5],
                 "probe_epochs": [2, 3], "seed": [0, 1]},
        runner="beta_probe", checkpoint=False)
    defaults.update(kw)
    return GridSpec(**defaults)


class TestBetaTeacherRng:
    """The Fig. 5 teacher must be bit-identical per (scenario, seed)."""

    def test_teacher_stream_ignores_runner_consumed_factors(self):
        groups = {}
        for run in beta_probe_spec().expand():
            stream = beta_teacher_rng(run).random(4).tobytes()
            groups.setdefault((run.scenario, run.seed), set()).add(stream)
        # every β x probe_epochs cell of a group shares one stream...
        assert all(len(streams) == 1 for streams in groups.values())
        # ...and distinct (scenario, seed) groups get distinct teachers
        streams = {streams.pop() for streams in groups.values()}
        assert len(streams) == len(groups)

    def test_fold_split_identical_across_beta(self, tiny_image_split):
        from repro.data.folds import split_folds
        runs = [run for run in beta_probe_spec().expand()
                if run.scenario == "s1" and run.seed == 0
                and run.factor_dict["probe_epochs"] == 2]
        assert len(runs) == 2           # the two β levels
        splits = [split_folds(tiny_image_split.train, 3,
                              rng=beta_teacher_rng(run)) for run in runs]
        for fold_a, fold_b in zip(*splits):
            np.testing.assert_array_equal(fold_a.x, fold_b.x)
            np.testing.assert_array_equal(fold_a.y, fold_b.y)

    def test_probe_stream_still_depends_on_beta(self):
        runs = [run for run in beta_probe_spec().expand()
                if run.scenario == "s1" and run.seed == 0
                and run.factor_dict["probe_epochs"] == 2]
        streams = {run_rng(run, salt="beta-probe").random() for run in runs}
        assert len(streams) == len(runs)


# ----------------------------------------------------------------------
class TestAggregation:
    def test_sample_std_is_ddof_1(self):
        values = [0.1, 0.4, 0.7]
        assert sample_std(values) == pytest.approx(np.std(values, ddof=1))
        assert sample_std([0.5]) == 0.0
        assert sample_std([]) == 0.0

    def test_groups_over_seed(self):
        records = [
            {"index": 0, "status": "done",
             "factors": {"method": "a", "seed": 0},
             "metrics": {"acc": 0.6}},
            {"index": 1, "status": "done",
             "factors": {"method": "a", "seed": 1},
             "metrics": {"acc": 0.8}},
            {"index": 2, "status": "failed",
             "factors": {"method": "b", "seed": 0}, "metrics": {}},
        ]
        aggregates = aggregate_records(records, group_by=["method"])
        entry = find_group(aggregates, method="a")
        assert entry["n"] == 2
        assert entry["metrics"]["acc"]["mean"] == pytest.approx(0.7)
        assert entry["metrics"]["acc"]["std"] == pytest.approx(
            np.std([0.6, 0.8], ddof=1))
        # the failed record contributes no group
        assert find_group(aggregates, method="b") is None

    def test_significance_matrix_screens_pairs(self):
        records = []
        for index, (method, accs) in enumerate(
                [("a", [0.9, 0.91]), ("b", [0.5, 0.52])]):
            for seed, acc in enumerate(accs):
                records.append({"index": 2 * index + seed, "status": "done",
                                "factors": {"method": method, "seed": seed},
                                "metrics": {"final_accuracy": acc}})
        aggregates = aggregate_records(records, group_by=["method"])
        matrix = significance_matrix(aggregates, "final_accuracy")
        assert matrix[0]["pairs"] == {"a>b": True, "b>a": False}

    def test_single_seed_pairs_are_omitted(self):
        # One replication gives stderr 0, which would flag any nonzero
        # difference; such pairs must not be screened at all.
        records = [
            {"index": 0, "status": "done",
             "factors": {"method": "a", "seed": 0},
             "metrics": {"final_accuracy": 0.9}},
            {"index": 1, "status": "done",
             "factors": {"method": "b", "seed": 0},
             "metrics": {"final_accuracy": 0.5}},
        ]
        aggregates = aggregate_records(records, group_by=["method"])
        matrix = significance_matrix(aggregates, "final_accuracy")
        assert matrix[0]["pairs"] == {}


# ----------------------------------------------------------------------
class TestExecution:
    def test_in_memory_grid(self):
        grid = run_grid(toy_spec())
        assert grid.complete
        assert len(grid.records) == 8
        assert len(grid.aggregates) == 4          # method x scenario groups
        value = grid.metric("final_accuracy", method="a", scenario="s1",
                            seed=0)
        assert 0.0 <= value <= 1.0
        assert grid.significance                   # method is a group factor

    def test_one_rejects_ambiguity(self):
        grid = run_grid(toy_spec())
        with pytest.raises(KeyError, match="expected exactly 1"):
            grid.one(method="a")

    def test_failures_are_isolated_records(self):
        grid = run_grid(toy_spec(runner="flaky"))
        assert not grid.complete
        assert len(grid.failures) == 4
        failed = grid.one(method="a", scenario="s1", seed=1)
        assert failed.status == "failed"
        assert failed.error == "ValueError: synthetic fault"
        # seed-0 runs still aggregated
        assert find_group(grid.aggregates, method="a", scenario="s1")["n"] == 1

    def test_executor_validates_arguments(self, tmp_path):
        with pytest.raises(ValueError, match="bad shard"):
            GridExecutor(toy_spec(), shard_index=2, num_shards=2)
        with pytest.raises(ValueError, match="workers"):
            GridExecutor(toy_spec(), workers=0)
        with pytest.raises(ValueError, match="out_dir"):
            GridExecutor(toy_spec(), workers=2)
        with pytest.raises(ValueError, match="keep_results"):
            GridExecutor(toy_spec(), out_dir=tmp_path, workers=2,
                         keep_results=True)

    def test_keep_results_requires_in_memory_grid(self, tmp_path):
        with pytest.raises(ValueError, match="keep_results"):
            run_grid(toy_spec(), out_dir=tmp_path, keep_results=True)


class TestSharding:
    def test_shard_partition_is_disjoint_and_total(self):
        spec = toy_spec()
        shards = [GridExecutor(spec, shard_index=i, num_shards=3).shard_runs()
                  for i in range(3)]
        ids = [run.run_id for shard in shards for run in shard]
        assert sorted(ids) == sorted(r.run_id for r in spec.expand())
        assert len(set(ids)) == len(ids)

    def test_sharded_aggregates_bit_identical(self, tmp_path):
        spec = toy_spec()
        single = run_grid(spec, out_dir=tmp_path / "single")
        sharded = run_grid(spec, out_dir=tmp_path / "sharded", num_shards=3)
        assert canonical_json(sharded.to_payload()["aggregates"]) \
            == canonical_json(single.to_payload()["aggregates"])
        assert canonical_json(sharded.to_payload()["significance"]) \
            == canonical_json(single.to_payload()["significance"])
        assert strip_seconds(sharded.to_payload()["runs"]) \
            == strip_seconds(single.to_payload()["runs"])

    def test_parallel_workers_match_serial(self, tmp_path):
        spec = toy_spec()
        serial = run_grid(spec, out_dir=tmp_path / "serial")
        parallel = run_grid(spec, out_dir=tmp_path / "parallel", workers=2)
        assert canonical_json(parallel.to_payload()["aggregates"]) \
            == canonical_json(serial.to_payload()["aggregates"])

    def test_partial_coverage_reports_missing(self, tmp_path):
        spec = toy_spec()
        GridExecutor(spec, out_dir=tmp_path, shard_index=0,
                     num_shards=2).execute()
        records, missing = collect_records(spec, tmp_path)
        assert len(records) == 4 and len(missing) == 4
        partial = grid_result(spec, records, missing)
        assert not partial.complete
        assert sorted(partial.missing) == sorted(missing)


class TestResume:
    def test_kill_then_resume_completes_without_rerunning(self, tmp_path):
        spec = toy_spec()
        out = tmp_path / "state"
        KILL_SEEDS.add(1)
        with pytest.raises(KeyboardInterrupt):
            run_grid(spec, out_dir=out)
        first_pass = list(EXECUTED)
        assert first_pass == [spec.expand()[0].run_id]  # died on run 1
        # the killed run left no manifest entry
        manifest = out / spec.name / "manifest"
        assert len(list(manifest.glob("r*.json"))) == 1

        KILL_SEEDS.clear()
        EXECUTED.clear()
        resumed = run_grid(spec, out_dir=out, resume=True)
        assert resumed.complete
        # the finished run was skipped, the remaining 7 executed
        assert first_pass[0] not in EXECUTED
        assert len(EXECUTED) == 7

        fresh = run_grid(spec, out_dir=tmp_path / "fresh")
        assert canonical_json(resumed.to_payload()["aggregates"]) \
            == canonical_json(fresh.to_payload()["aggregates"])

    def test_refuses_stale_state_without_resume(self, tmp_path):
        spec = toy_spec()
        run_grid(spec, out_dir=tmp_path)
        with pytest.raises(GridStateError, match="resume"):
            run_grid(spec, out_dir=tmp_path)
        # but an explicit resume just reuses the manifests
        EXECUTED.clear()
        again = run_grid(spec, out_dir=tmp_path, resume=True)
        assert again.complete and EXECUTED == []

    def test_refuses_directory_of_different_spec(self, tmp_path):
        run_grid(toy_spec(), out_dir=tmp_path)
        changed = toy_spec(base={"gamma": 0.3})
        with pytest.raises(GridStateError, match="different spec"):
            run_grid(changed, out_dir=tmp_path, resume=True)

    def test_fresh_shards_share_a_directory_without_resume(self, tmp_path):
        # Concurrent shards launched into one fresh --out must not trip
        # the stale-state guard on each other's manifests.
        spec = toy_spec()
        GridExecutor(spec, out_dir=tmp_path, shard_index=0,
                     num_shards=2).execute()
        GridExecutor(spec, out_dir=tmp_path, shard_index=1,
                     num_shards=2).execute()
        records, missing = collect_records(spec, tmp_path)
        assert not missing and len(records) == 8


# ----------------------------------------------------------------------
# Integration: the real method runner on the tiny scenario.

@pytest.fixture
def tiny_scenario(tiny_image_split, mlp_factory):
    return Scenario(name="tiny", split=tiny_image_split, factory=mlp_factory,
                    ensemble_size=2, epochs_per_model=1,
                    edde_first_epochs=1, edde_later_epochs=1,
                    lr=0.05, batch_size=32, gamma=0.1, beta=0.7,
                    weight_decay=0.0)


class TestMethodRunnerIntegration:
    def test_end_to_end_metrics(self, tiny_scenario):
        spec = GridSpec(name="tiny_grid",
                        factors={"method": ["single", "edde"],
                                 "scenario": ["tiny-reg"]},
                        checkpoint=False)
        with scenario_scope("tiny-reg", tiny_scenario):
            grid = run_grid(spec, keep_results=True)
        assert grid.complete
        record = grid.one(method="edde")
        assert 0.0 <= record.metrics["final_accuracy"] <= 1.0
        assert record.metrics["num_members"] == 2
        assert record.meta["method_label"] == "EDDE"
        assert record.meta["resumed_from_round"] is False
        assert record.result is not None          # keep_results=True

    def test_mid_fit_kill_resumes_from_round_checkpoint(self, tmp_path,
                                                        tiny_scenario):
        spec = GridSpec(name="tiny_resume",
                        factors={"method": ["edde"], "scenario": ["tiny-reg"]},
                        base={"num_models": 2})
        fault = InjectFault(round_index=1, mode="interrupt")

        def faulting_runner(run, context):
            from repro.experiments.grid.runners import method_runner
            run = type(run).from_payload(
                {**run.to_payload(),
                 "overrides": {**run.override_dict, "callbacks": [fault]}})
            return method_runner(run, context)

        register_runner("faulting_method", faulting_runner, replace=True)
        killed = GridSpec.from_payload(
            {**spec.to_payload(), "runner": "faulting_method"})

        with scenario_scope("tiny-reg", tiny_scenario):
            with pytest.raises(KeyboardInterrupt):
                run_grid(killed, out_dir=tmp_path / "state")
            run_id = spec.expand()[0].run_id
            checkpoints = (tmp_path / "state" / spec.name / "runs"
                           / run_id / "checkpoints")
            assert any(checkpoints.iterdir())      # round 0 was checkpointed

            # resume with the clean spec: same hash fields except runner —
            # use the killed spec so the state directory is accepted, but
            # the fault fired once, so the retry trains through.
            resumed = run_grid(killed, out_dir=tmp_path / "state",
                               resume=True)
            assert resumed.complete
            record = resumed.one(method="edde")
            assert record.meta["resumed_from_round"] is True

            fresh = run_grid(spec, out_dir=tmp_path / "fresh")
        assert record.metrics["final_accuracy"] == pytest.approx(
            fresh.one(method="edde").metrics["final_accuracy"])
        # checkpoints are discarded once the run lands
        assert not checkpoints.exists()


# ----------------------------------------------------------------------
class TestServeDriftRunner:
    def test_grid_cell_matches_direct_replay(self):
        from repro.experiments.drift import DriftReplayConfig, \
            run_drift_replay

        spec = GridSpec(name="drift-grid",
                        factors={"scenario": ["smoke"], "seed": [0]},
                        runner="serve_drift", checkpoint=False)
        grid = run_grid(spec)
        assert grid.complete
        (record,) = grid.records
        direct = run_drift_replay(DriftReplayConfig(schedule="smoke"),
                                  seed=0).to_payload()
        # The replay is a pure function of (schedule, seed): the grid
        # cell reproduces the direct call bit for bit, modulo wall clock.
        assert record.metrics["detection_batch"] == \
            direct["detection_batch"]
        assert record.metrics["member_swaps"] == direct["member_swaps"]
        assert record.metrics["post_repair_accuracy"] == \
            direct["post_repair_accuracy"]
        assert record.meta["accuracy_curve"] == direct["accuracy_curve"]
        assert record.meta["schedule"] == direct["schedule"]

    def test_scenario_must_name_a_schedule(self):
        spec = GridSpec(name="drift-grid",
                        factors={"scenario": ["not-a-preset"],
                                 "seed": [0]},
                        runner="serve_drift", checkpoint=False)
        grid = run_grid(spec)
        (record,) = grid.records
        assert record.status == "failed"
        assert "declares no drift schedule" in record.error
