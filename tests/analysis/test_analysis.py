"""Analysis utilities: bias/variance, heatmaps, curves, tables."""

import numpy as np
import pytest

from repro.analysis import (
    best_at_budget,
    curve_table,
    epochs_to_reach,
    format_table,
    main_prediction,
    mean_offdiagonal_similarity,
    percent,
    render_curves,
    render_heatmap,
    speedup_over,
    squared_decomposition,
    zero_one_decomposition,
)
from repro.core.results import CurvePoint, FitResult
from repro.core.ensemble import Ensemble


def onehot_probs(predictions, k=3):
    out = np.zeros((len(predictions), k))
    out[np.arange(len(predictions)), predictions] = 1.0
    return out


class TestBiasVariance:
    def test_perfect_agreement_zero_variance(self):
        labels = np.array([0, 1, 2])
        member = onehot_probs(labels)
        point = zero_one_decomposition([member, member.copy()], labels)
        assert point.variance == 0.0
        assert point.bias == 0.0

    def test_wrong_main_prediction_is_bias(self):
        labels = np.array([0, 0])
        wrong = onehot_probs(np.array([1, 1]))
        point = zero_one_decomposition([wrong, wrong.copy()], labels)
        assert point.bias == 1.0
        assert point.variance == 0.0

    def test_disagreement_is_variance(self):
        labels = np.array([0])
        members = [onehot_probs(np.array([0])),
                   onehot_probs(np.array([1])),
                   onehot_probs(np.array([0]))]
        point = zero_one_decomposition(members, labels)
        assert point.bias == 0.0          # plurality is correct
        assert point.variance == pytest.approx(1 / 3)

    def test_main_prediction_plurality(self):
        members = [onehot_probs(np.array([0, 1])),
                   onehot_probs(np.array([0, 2])),
                   onehot_probs(np.array([1, 2]))]
        np.testing.assert_array_equal(main_prediction(members), [0, 2])

    def test_needs_two_members(self):
        with pytest.raises(ValueError):
            zero_one_decomposition([onehot_probs(np.array([0]))], np.array([0]))

    def test_squared_decomposition_values(self):
        labels = np.array([0])
        a = np.array([[0.8, 0.2, 0.0]])
        b = np.array([[0.6, 0.4, 0.0]])
        point = squared_decomposition([a, b], labels)
        mean = np.array([[0.7, 0.3, 0.0]])
        expected_bias = np.sqrt(((mean - np.array([[1, 0, 0]])) ** 2).sum())
        assert point.bias == pytest.approx(expected_bias)
        assert point.variance > 0


class TestHeatmap:
    def test_renders_all_cells(self):
        matrix = np.array([[1.0, 0.8, 0.2],
                           [0.8, 1.0, 0.5],
                           [0.2, 0.5, 1.0]])
        text = render_heatmap(matrix, title="demo")
        assert "demo" in text
        assert "0.80" in text and "0.20" in text
        assert text.count("--") == 3  # the diagonal

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros((2, 3)))

    def test_mean_offdiagonal(self):
        matrix = np.array([[1.0, 0.4], [0.4, 1.0]])
        assert mean_offdiagonal_similarity(matrix) == pytest.approx(0.4)


def make_result(method, points):
    result = FitResult(method=method, ensemble=Ensemble())
    result.curve = [CurvePoint(e, a, i + 1) for i, (e, a) in enumerate(points)]
    if points:
        result.final_accuracy = points[-1][1]
        result.total_epochs = points[-1][0]
    return result


class TestCurves:
    def test_epochs_to_reach(self):
        result = make_result("m", [(10, 0.5), (20, 0.7), (30, 0.8)])
        assert epochs_to_reach(result, 0.7) == 20
        assert epochs_to_reach(result, 0.9) is None

    def test_speedup(self):
        fast = make_result("fast", [(10, 0.8), (20, 0.85)])
        slow = make_result("slow", [(20, 0.6), (40, 0.8)])
        assert speedup_over(fast, slow) == pytest.approx(4.0)

    def test_speedup_none_when_unreachable(self):
        fast = make_result("fast", [(10, 0.5)])
        slow = make_result("slow", [(40, 0.9)])
        assert speedup_over(fast, slow) is None

    def test_best_at_budget(self):
        a = make_result("a", [(10, 0.6), (20, 0.9)])
        b = make_result("b", [(10, 0.7), (20, 0.8)])
        assert best_at_budget([a, b], 10) == ("b", 0.7)
        assert best_at_budget([a, b], 20) == ("a", 0.9)

    def test_render_curves_mentions_methods(self):
        a = make_result("alpha", [(10, 0.6), (20, 0.9)])
        text = render_curves([a], title="fig")
        assert "fig" in text and "alpha" in text

    def test_render_curves_empty(self):
        assert "no curves" in render_curves([make_result("x", [])])

    def test_curve_table(self):
        a = make_result("a", [(10, 0.6), (20, 0.9)])
        rows = curve_table([a], budgets=[10, 20, 30])
        assert rows[0]["@10"] == 0.6
        assert rows[0]["@20"] == 0.9
        assert np.isnan(rows[0]["@30"]) or rows[0]["@30"] == 0.9


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["edde", 0.5], ["x", 1.0]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_percent(self):
        assert percent(0.7438) == "74.38%"
        assert percent(float("nan")) == "—"

    def test_nan_cell_rendered_as_dash(self):
        text = format_table(["v"], [[float("nan")]])
        assert "—" in text
