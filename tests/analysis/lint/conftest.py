"""Fixture helpers for the lint-rule tests.

Rules are exercised end to end through the real collection path: each
fixture writes a miniature ``src/repro/...`` tree to ``tmp_path`` so
module inference, package mapping and suppression parsing all run exactly
as they do on the real repository.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.lint import run_lint


@pytest.fixture
def lint_tree(tmp_path):
    """Write fixture modules and lint them with the given rules.

    Usage::

        report = lint_tree({"nn/bad.py": "from repro.core import trainer"},
                           rules=[LayeringRule()])

    Keys are paths relative to ``src/repro/``; values are module source
    (dedented).  Keys starting with ``//`` are written relative to the
    tree root instead (for non-repro files).
    """

    def build(modules, rules):
        root = tmp_path / "src" / "repro"
        for rel, source in modules.items():
            if rel.startswith("//"):
                target = tmp_path / rel[2:]
            else:
                target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        return run_lint([str(tmp_path)], rules)

    return build


def codes(report):
    return [v.code for v in report.violations]


def messages(report):
    return [v.message for v in report.violations]
