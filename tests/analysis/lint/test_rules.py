"""Fixture-based tests for RL001-RL005: fire on known-bad, stay silent
on known-good, through the real collection/suppression pipeline."""

from __future__ import annotations

import pytest

from repro.analysis.lint import (
    DeterminismRule,
    DtypePolicyRule,
    FaultHygieneRule,
    LAYER_GRAPH,
    LayeringRule,
    RegistryContractRule,
    transitive_closure,
)

from tests.analysis.lint.conftest import codes, messages


class TestLayering:
    def test_upward_import_fires(self, lint_tree):
        report = lint_tree(
            {"nn/bad.py": "from repro.core import trainer\n"},
            [LayeringRule()])
        assert codes(report) == ["RL001"]
        assert "layer 'nn' may not import" in messages(report)[0]

    def test_downward_imports_are_silent(self, lint_tree):
        report = lint_tree(
            {"core/good.py": ("from repro.nn import layers\n"
                              "import repro.ops\n"
                              "from repro.utils.rng import new_rng\n")},
            [LayeringRule()])
        assert report.ok

    def test_lazy_upward_import_still_fires(self, lint_tree):
        source = ("def handler():\n"
                  "    from repro.serving import errors\n"
                  "    return errors\n")
        report = lint_tree({"core/lazy.py": source}, [LayeringRule()])
        assert codes(report) == ["RL001"]

    def test_module_level_cycle_fires_once(self, lint_tree):
        report = lint_tree(
            {"nn/a.py": "from repro.nn.b import thing\n",
             "nn/b.py": "from repro.nn.a import other\n"},
            [LayeringRule()])
        assert codes(report) == ["RL001"]
        assert "import cycle" in messages(report)[0]
        assert "repro.nn.a" in messages(report)[0]

    def test_lazy_cycle_is_allowed(self, lint_tree):
        # Function-level imports resolve at call time, after both modules
        # exist; only module-level cycles crash import.
        report = lint_tree(
            {"nn/a.py": ("def f():\n"
                         "    from repro.nn.b import thing\n"
                         "    return thing\n"),
             "nn/b.py": ("def g():\n"
                         "    from repro.nn.a import f\n"
                         "    return f\n")},
            [LayeringRule()])
        assert report.ok

    def test_declared_graph_is_acyclic(self):
        closure = transitive_closure(LAYER_GRAPH)
        for pkg, deps in closure.items():
            assert pkg not in deps

    def test_cyclic_declaration_rejected(self):
        with pytest.raises(ValueError, match="cyclic"):
            transitive_closure({"a": {"b"}, "b": {"a"}})

    # -- sub-layers and the benchmarks pseudo-layer (PR 6) -----------------

    def test_grid_sublayer_may_import_core(self, lint_tree):
        report = lint_tree(
            {"experiments/grid/exec2.py":
                ("from repro.core.checkpointing import CheckpointManager\n"
                 "from repro.analysis import format_table\n"
                 "from repro.experiments.runner import run_method\n")},
            [LayeringRule()])
        assert report.ok

    def test_experiments_importing_grid_sublayer_fires(self, lint_tree):
        report = lint_tree(
            {"experiments/runner2.py":
                "from repro.experiments.grid import GridSpec\n"},
            [LayeringRule()])
        assert codes(report) == ["RL001"]
        assert "layer 'experiments.grid'" in messages(report)[0]

    def test_bench_importing_core_directly_fires(self, lint_tree):
        report = lint_tree(
            {"//benchmarks/bench_x.py":
                "from repro.core import EDDETrainer\n"},
            [LayeringRule()])
        assert codes(report) == ["RL001"]
        assert "deny-listed" in messages(report)[0]

    def test_bench_importing_grid_is_silent(self, lint_tree):
        report = lint_tree(
            {"//benchmarks/bench_y.py":
                ("from repro.experiments.grid import GridSpec, run_grid\n"
                 "from repro.analysis import format_table\n"
                 "import repro.data\n")},
            [LayeringRule()])
        assert report.ok

    def test_bench_deny_suppression_counts_as_suppressed(self, lint_tree):
        report = lint_tree(
            {"//benchmarks/bench_z.py":
                ("from repro.core.losses import diversity_driven_loss"
                 "  # repro-lint: disable=RL001 (reference chain)\n")},
            [LayeringRule()])
        assert report.ok
        assert len(report.suppressed) == 1


class TestDeterminism:
    BAD = ("import time\n"
           "import random\n"
           "import numpy as np\n"
           "def f():\n"
           "    x = np.random.rand(3)\n"
           "    t = time.time()\n"
           "    r = random.random()\n"
           "    return x, t, r\n")

    def test_global_rng_and_clock_fire_in_core(self, lint_tree):
        report = lint_tree({"core/bad.py": self.BAD}, [DeterminismRule()])
        # import random, np.random.rand, time.time, random.random
        assert codes(report) == ["RL002"] * 4

    def test_generator_plumbing_is_silent(self, lint_tree):
        source = ("import time\n"
                  "import numpy as np\n"
                  "def f(rng: np.random.Generator):\n"
                  "    child = np.random.default_rng(rng.integers(0, 2**31))\n"
                  "    started = time.perf_counter()\n"
                  "    return child.normal(size=3), time.perf_counter() - started\n")
        report = lint_tree({"core/good.py": source}, [DeterminismRule()])
        assert report.ok

    def test_wall_clock_allowed_outside_deterministic_layers(self, lint_tree):
        source = ("import time\n"
                  "def deadline():\n"
                  "    return time.time() + 1.0\n")
        report = lint_tree({"serving/clock.py": source}, [DeterminismRule()])
        assert report.ok

    def test_stdlib_random_banned_everywhere(self, lint_tree):
        report = lint_tree({"serving/jitter.py": "import random\n"},
                           [DeterminismRule()])
        assert codes(report) == ["RL002"]


class TestDtypePolicy:
    @pytest.mark.parametrize("line", [
        "x = np.zeros(3)",
        "x = np.ones((2, 2))",
        "x = np.empty(4)",
        "x = np.linspace(0, 1, 5)",
        "x = np.full(3, 0.5)",
        "x = np.arange(0.0, 1.0, 0.1)",
        "x = np.array([1.5, 2.5])",
    ])
    def test_dtypeless_float_constructors_fire(self, lint_tree, line):
        report = lint_tree(
            {"core/mod.py": f"import numpy as np\n{line}\n"},
            [DtypePolicyRule()])
        assert codes(report) == ["RL003"]

    @pytest.mark.parametrize("line", [
        "x = np.zeros(3, dtype=np.float64)",
        "x = np.full(3, 0)",            # integer fill -> int array
        "x = np.arange(10)",            # int arange cannot drift
        "x = np.array(existing)",       # preserves dtype by design
        "x = np.array([1, 2, 3])",      # int literals -> int array
        "x = np.zeros_like(existing)",  # *_like preserves dtype
    ])
    def test_non_drifting_constructors_are_silent(self, lint_tree, line):
        report = lint_tree(
            {"core/mod.py": f"import numpy as np\nexisting = None\n{line}\n"},
            [DtypePolicyRule()])
        assert report.ok

    def test_rule_scopes_to_repro_modules(self, lint_tree):
        # Scripts outside src/repro (one-off tooling) are not library code.
        report = lint_tree(
            {"//scripts/tool.py": "import numpy as np\nx = np.zeros(3)\n"},
            [DtypePolicyRule()])
        assert report.ok


class TestRegistryContract:
    def test_backwardless_registration_fires(self, lint_tree):
        source = ("from repro.ops.registry import register\n"
                  "def fwd(ctx, x):\n"
                  "    return x\n"
                  "register('noop', fwd)\n")
        report = lint_tree({"ops/stub.py": source}, [RegistryContractRule()])
        assert codes(report) == ["RL004"]
        assert "no backward kernel" in messages(report)[0]

    def test_complete_pair_is_silent(self, lint_tree):
        source = ("from repro.ops.registry import register\n"
                  "def fwd(ctx, x):\n"
                  "    ctx.saved = x\n"
                  "    return x * 2.0\n"
                  "def bwd(ctx, grad):\n"
                  "    return (grad * 2.0 + 0.0 * ctx.saved,)\n"
                  "register('double', fwd, bwd)\n")
        report = lint_tree({"ops/stub.py": source}, [RegistryContractRule()])
        assert report.ok

    def test_tensor_import_fires(self, lint_tree):
        report = lint_tree(
            {"ops/leaky.py": "from repro.tensor import Tensor\n"},
            [RegistryContractRule()])
        assert codes(report) == ["RL004"]
        assert "must not import repro.tensor" in messages(report)[0]

    def test_tensor_import_outside_ops_is_not_this_rules_business(
            self, lint_tree):
        report = lint_tree(
            {"nn/fine.py": "from repro.tensor import Tensor\n"},
            [RegistryContractRule()])
        assert report.ok

    def test_read_of_unstashed_ctx_attr_fires(self, lint_tree):
        source = ("from repro.ops.registry import register\n"
                  "def fwd(ctx, x):\n"
                  "    ctx.saved = x\n"
                  "    return x\n"
                  "def bwd(ctx, grad):\n"
                  "    return (grad * ctx.mask,)\n"
                  "register('leak', fwd, bwd)\n")
        report = lint_tree({"ops/stub.py": source}, [RegistryContractRule()])
        assert codes(report) == ["RL004"]
        assert "reads ctx.mask" in messages(report)[0]
        assert "never stashes" in messages(report)[0]

    def test_needs_blind_multigrad_fires(self, lint_tree):
        source = ("from repro.ops.registry import register\n"
                  "def fwd(ctx, a, b):\n"
                  "    ctx.a = a\n"
                  "    ctx.b = b\n"
                  "    return a * b\n"
                  "def bwd(ctx, grad):\n"
                  "    return (grad * ctx.b, grad * ctx.a)\n"
                  "register('mul2', fwd, bwd)\n")
        report = lint_tree({"ops/stub.py": source}, [RegistryContractRule()])
        assert codes(report) == ["RL004"]
        assert "ctx.needs" in messages(report)[0]

    def test_needs_gated_multigrad_is_silent(self, lint_tree):
        source = ("from repro.ops.registry import register\n"
                  "def fwd(ctx, a, b):\n"
                  "    ctx.a = a\n"
                  "    ctx.b = b\n"
                  "    return a * b\n"
                  "def bwd(ctx, grad):\n"
                  "    ga = grad * ctx.b if ctx.needs[0] else None\n"
                  "    gb = grad * ctx.a if ctx.needs[1] else None\n"
                  "    return (ga, gb)\n"
                  "register('mul2', fwd, bwd)\n")
        report = lint_tree({"ops/stub.py": source}, [RegistryContractRule()])
        assert report.ok


class TestFaultHygiene:
    def test_bare_except_fires(self, lint_tree):
        source = ("try:\n"
                  "    risky()\n"
                  "except:\n"
                  "    cleanup()\n")
        report = lint_tree({"serving/mod.py": source}, [FaultHygieneRule()])
        assert codes(report) == ["RL005"]
        assert "bare 'except:'" in messages(report)[0]

    def test_swallowed_broad_except_fires(self, lint_tree):
        source = ("try:\n"
                  "    risky()\n"
                  "except Exception:\n"
                  "    pass\n")
        report = lint_tree({"core/mod.py": source}, [FaultHygieneRule()])
        assert codes(report) == ["RL005"]
        assert "swallows" in messages(report)[0]

    def test_docstring_only_body_still_swallows(self, lint_tree):
        source = ("try:\n"
                  "    risky()\n"
                  "except Exception:\n"
                  "    'best effort'\n")
        report = lint_tree({"core/mod.py": source}, [FaultHygieneRule()])
        assert codes(report) == ["RL005"]

    def test_handled_broad_except_is_silent(self, lint_tree):
        source = ("try:\n"
                  "    risky()\n"
                  "except Exception as error:\n"
                  "    faults.append(error)\n")
        report = lint_tree({"core/mod.py": source}, [FaultHygieneRule()])
        assert report.ok

    def test_narrow_pass_is_silent(self, lint_tree):
        # Swallowing a *named* exception is an explicit decision; only
        # broad catches must show their work.
        source = ("try:\n"
                  "    risky()\n"
                  "except ValueError:\n"
                  "    pass\n")
        report = lint_tree({"core/mod.py": source}, [FaultHygieneRule()])
        assert report.ok
