"""RL006/RL007/RL008 — seeded fixture violations and clean counterparts.

The fixtures shadow the registered module names (``serving/scheduler.py``
etc. under the temp tree), so the *default* declarative model drives the
rules exactly as it does on the real tree.
"""

from __future__ import annotations

from repro.analysis.lint import (
    ConditionHygieneRule,
    GuardedAttributeRule,
    LockOrderingRule,
)

from tests.analysis.lint.conftest import codes, messages


class TestGuardedAttributes:
    def test_unlocked_write_fires(self, lint_tree):
        source = ("class MicroBatcher:\n"
                  "    def poke(self):\n"
                  "        self._running = False\n")
        report = lint_tree({"serving/scheduler.py": source},
                           [GuardedAttributeRule()])
        assert codes(report) == ["RL006"]
        assert "_running" in messages(report)[0]
        assert "self._cond" in messages(report)[0]

    def test_unlocked_rmw_fires(self, lint_tree):
        # The pre-fix _dispatch bug class: counter bump outside the lock.
        source = ("class MicroBatcher:\n"
                  "    def bump(self):\n"
                  "        self.batches_formed += 1\n")
        report = lint_tree({"serving/scheduler.py": source},
                           [GuardedAttributeRule()])
        assert codes(report) == ["RL006"]

    def test_unlocked_mutating_call_fires(self, lint_tree):
        source = ("class MicroBatcher:\n"
                  "    def push(self, item):\n"
                  "        self._queue.append(item)\n")
        report = lint_tree({"serving/scheduler.py": source},
                           [GuardedAttributeRule()])
        assert codes(report) == ["RL006"]

    def test_locked_write_is_clean(self, lint_tree):
        source = ("class MicroBatcher:\n"
                  "    def poke(self):\n"
                  "        with self._cond:\n"
                  "            self._running = False\n"
                  "            self._queue.append(1)\n")
        report = lint_tree({"serving/scheduler.py": source},
                           [GuardedAttributeRule()])
        assert report.ok

    def test_init_is_exempt(self, lint_tree):
        source = ("class MicroBatcher:\n"
                  "    def __init__(self):\n"
                  "        self._queue = []\n"
                  "        self._running = False\n")
        report = lint_tree({"serving/scheduler.py": source},
                           [GuardedAttributeRule()])
        assert report.ok

    def test_caller_locked_method_is_exempt(self, lint_tree):
        source = ("class MicroBatcher:\n"
                  "    def _form_batch(self):\n"
                  "        self.batches_formed += 1\n"
                  "        del self._queue[:2]\n")
        report = lint_tree({"serving/scheduler.py": source},
                           [GuardedAttributeRule()])
        assert report.ok

    def test_wrong_lock_fires_and_names_both(self, lint_tree):
        source = ("class InferenceService:\n"
                  "    def swap(self, members):\n"
                  "        with self._stats_lock:\n"
                  "            self.members = members\n")
        report = lint_tree({"serving/service.py": source},
                           [GuardedAttributeRule()])
        assert codes(report) == ["RL006"]
        assert "_swap_lock" in messages(report)[0]

    def test_externally_guarded_class_confined(self, lint_tree):
        # AdmissionController state may only move in observe/admit.
        source = ("class AdmissionController:\n"
                  "    def reset(self):\n"
                  "        self.shedding = False\n"
                  "    def observe(self, sojourn, now):\n"
                  "        self.shedding = True\n")
        report = lint_tree({"serving/scheduler.py": source},
                           [GuardedAttributeRule()])
        assert codes(report) == ["RL006"]
        assert "scheduler.cond" in messages(report)[0]

    def test_thread_local_module_mutable_global_fires(self, lint_tree):
        source = ("_local = {}\n"          # registered container name: ok
                  "_shared = {}\n"         # shared mutable: flagged
                  "def grow():\n"
                  "    global _shared\n"   # rebinding: flagged
                  "    _shared = {}\n")
        report = lint_tree({"ops/workspace.py": source},
                           [GuardedAttributeRule()])
        assert codes(report) == ["RL006", "RL006"]

    def test_suppression_silences_a_benign_race(self, lint_tree):
        source = ("class MicroBatcher:\n"
                  "    def poke(self):\n"
                  "        self._running = False  "
                  "# repro-lint: disable=RL006 (fixture)\n")
        report = lint_tree({"serving/scheduler.py": source},
                           [GuardedAttributeRule()])
        assert report.ok
        assert [v.code for v in report.suppressed] == ["RL006"]


class TestLockOrdering:
    def test_inverted_nesting_fires(self, lint_tree):
        source = ("class InferenceService:\n"
                  "    def bad(self):\n"
                  "        with self._stats_lock:\n"
                  "            with self._swap_lock:\n"
                  "                pass\n")
        report = lint_tree({"serving/service.py": source},
                           [LockOrderingRule()])
        assert "RL007" in codes(report)
        text = " ".join(messages(report))
        assert "service.swap" in text and "service.stats" in text

    def test_declared_nesting_is_clean(self, lint_tree):
        source = ("class InferenceService:\n"
                  "    def good(self):\n"
                  "        with self._swap_lock:\n"
                  "            with self._stats_lock:\n"
                  "                pass\n")
        report = lint_tree({"serving/service.py": source},
                           [LockOrderingRule()])
        assert report.ok

    def test_cycle_reported_via_scc(self, lint_tree):
        source = ("class InferenceService:\n"
                  "    def one(self):\n"
                  "        with self._swap_lock:\n"
                  "            with self._stats_lock:\n"
                  "                pass\n"
                  "    def two(self):\n"
                  "        with self._stats_lock:\n"
                  "            with self._swap_lock:\n"
                  "                pass\n")
        report = lint_tree({"serving/service.py": source},
                           [LockOrderingRule()])
        text = " ".join(messages(report))
        assert "cycle" in text and "deadlock" in text

    def test_call_edge_same_lock_nesting_fires(self, lint_tree):
        source = ("class MicroBatcher:\n"
                  "    def _locked_helper(self):\n"
                  "        with self._cond:\n"
                  "            pass\n"
                  "    def bad(self):\n"
                  "        with self._cond:\n"
                  "            self._locked_helper()\n")
        report = lint_tree({"serving/scheduler.py": source},
                           [LockOrderingRule()])
        assert codes(report) == ["RL007"]
        assert "may not nest" in messages(report)[0]

    def test_caller_locked_method_contributes_held_lock(self, lint_tree):
        # _form_batch runs under scheduler.cond (rank 60, innermost):
        # acquiring anything below it from there runs against the order.
        source = ("class MicroBatcher:\n"
                  "    def _form_batch(self):\n"
                  "        with self._aux:\n"
                  "            pass\n"
                  "class InferenceService:\n"
                  "    def fine(self):\n"
                  "        pass\n")
        from repro.concurrency.model import LOCKS, LockSpec
        locks = dict(LOCKS)
        locks["aux"] = LockSpec("aux", 5, "repro.serving.scheduler",
                                "MicroBatcher", "_aux")
        report = lint_tree({"serving/scheduler.py": source},
                           [LockOrderingRule(locks=locks)])
        assert "RL007" in codes(report)
        assert "scheduler.cond" in " ".join(messages(report))

    def test_suppression_silences_a_known_edge(self, lint_tree):
        source = ("class InferenceService:\n"
                  "    def bad(self):\n"
                  "        with self._stats_lock:\n"
                  "            # repro-lint: disable=RL007 (fixture)\n"
                  "            with self._swap_lock:\n"
                  "                pass\n")
        report = lint_tree({"serving/service.py": source},
                           [LockOrderingRule()])
        assert report.ok
        assert [v.code for v in report.suppressed] == ["RL007"]


class TestConditionHygiene:
    GOOD = ("import threading\n"
            "class Worker:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "        self._ready = False\n"
            "    def consume(self):\n"
            "        with self._cond:\n"
            "            while not self._ready:\n"
            "                self._cond.wait()\n"
            "    def check(self):\n"
            "        with self._cond:\n"
            "            self._cond.wait_for(lambda: self._ready)\n"
            "    def produce(self):\n"
            "        with self._cond:\n"
            "            self._ready = True\n"
            "            self._cond.notify_all()\n")

    def test_by_the_book_usage_is_clean(self, lint_tree):
        report = lint_tree({"core/worker.py": self.GOOD},
                           [ConditionHygieneRule()])
        assert report.ok

    def test_bare_wait_without_while_fires(self, lint_tree):
        source = ("import threading\n"
                  "class Worker:\n"
                  "    def __init__(self):\n"
                  "        self._cond = threading.Condition()\n"
                  "    def consume(self):\n"
                  "        with self._cond:\n"
                  "            self._cond.wait()\n")
        report = lint_tree({"core/worker.py": source},
                           [ConditionHygieneRule()])
        assert codes(report) == ["RL008"]
        assert "while" in messages(report)[0]

    def test_wait_outside_with_fires(self, lint_tree):
        source = ("import threading\n"
                  "class Worker:\n"
                  "    def __init__(self):\n"
                  "        self._cond = threading.Condition()\n"
                  "    def consume(self):\n"
                  "        self._cond.wait()\n")
        report = lint_tree({"core/worker.py": source},
                           [ConditionHygieneRule()])
        assert codes(report) == ["RL008"]

    def test_notify_outside_with_fires(self, lint_tree):
        source = ("import threading\n"
                  "class Worker:\n"
                  "    def __init__(self):\n"
                  "        self._cond = threading.Condition()\n"
                  "    def produce(self):\n"
                  "        self._cond.notify()\n")
        report = lint_tree({"core/worker.py": source},
                           [ConditionHygieneRule()])
        assert codes(report) == ["RL008"]
        assert "notify" in messages(report)[0]

    def test_tracked_condition_factory_is_recognised(self, lint_tree):
        source = ("from repro.concurrency import tracked_condition\n"
                  "class Worker:\n"
                  "    def __init__(self):\n"
                  "        self._cond = tracked_condition('scheduler.cond')\n"
                  "    def produce(self):\n"
                  "        self._cond.notify()\n")
        report = lint_tree({"core/worker.py": source},
                           [ConditionHygieneRule()])
        assert codes(report) == ["RL008"]

    def test_non_condition_attributes_are_ignored(self, lint_tree):
        source = ("class Worker:\n"
                  "    def consume(self):\n"
                  "        self._queue.wait()\n")
        report = lint_tree({"core/worker.py": source},
                           [ConditionHygieneRule()])
        assert report.ok
