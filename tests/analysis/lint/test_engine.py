"""Engine-level behaviour: suppressions, stats, collection, the CLI."""

from __future__ import annotations

import json
import pathlib

from repro.analysis.lint import DtypePolicyRule, default_rules, run_lint
from repro.analysis.lint.engine import module_name_for
from repro.cli import main

from tests.analysis.lint.conftest import codes


class TestModuleInference:
    def test_src_repro_anchor(self):
        path = pathlib.Path("src/repro/nn/layers.py")
        assert module_name_for(path) == "repro.nn.layers"

    def test_init_maps_to_package(self):
        path = pathlib.Path("src/repro/ops/__init__.py")
        assert module_name_for(path) == "repro.ops"

    def test_non_repro_file_has_no_module(self):
        assert module_name_for(pathlib.Path("benchmarks/bench_ops.py")) is None


class TestSuppressions:
    BAD = "import numpy as np\nx = np.zeros(3)\n"

    def test_violation_fires_without_suppression(self, lint_tree):
        report = lint_tree({"core/mod.py": self.BAD}, [DtypePolicyRule()])
        assert codes(report) == ["RL003"]
        assert not report.ok

    def test_same_line_disable(self, lint_tree):
        source = ("import numpy as np\n"
                  "x = np.zeros(3)  # repro-lint: disable=RL003 (fixture)\n")
        report = lint_tree({"core/mod.py": source}, [DtypePolicyRule()])
        assert report.ok
        assert [v.code for v in report.suppressed] == ["RL003"]

    def test_standalone_comment_covers_next_line(self, lint_tree):
        source = ("import numpy as np\n"
                  "# repro-lint: disable=RL003 (fixture)\n"
                  "x = np.zeros(3)\n")
        report = lint_tree({"core/mod.py": source}, [DtypePolicyRule()])
        assert report.ok and len(report.suppressed) == 1

    def test_file_wide_disable(self, lint_tree):
        source = ("# repro-lint: disable-file=RL003\n"
                  "import numpy as np\n"
                  "x = np.zeros(3)\n"
                  "y = np.ones(4)\n")
        report = lint_tree({"core/mod.py": source}, [DtypePolicyRule()])
        assert report.ok and len(report.suppressed) == 2

    def test_suppression_is_code_specific(self, lint_tree):
        source = ("import numpy as np\n"
                  "x = np.zeros(3)  # repro-lint: disable=RL001\n")
        report = lint_tree({"core/mod.py": source}, [DtypePolicyRule()])
        assert codes(report) == ["RL003"]

    def test_comma_separated_codes(self, lint_tree):
        source = ("import numpy as np\n"
                  "x = np.zeros(3)  # repro-lint: disable=RL001,RL003\n")
        report = lint_tree({"core/mod.py": source}, [DtypePolicyRule()])
        assert report.ok and len(report.suppressed) == 1


class TestReport:
    def test_stats_payload(self, lint_tree):
        report = lint_tree({"core/mod.py": TestSuppressions.BAD},
                           default_rules())
        stats = report.stats()
        assert stats["rules_run"] == ["RL001", "RL002", "RL003", "RL004",
                                      "RL005", "RL006", "RL007", "RL008"]
        assert stats["files_scanned"] == 1
        assert stats["violations_total"] == 1
        assert stats["violations_by_code"] == {"RL003": 1}
        assert stats["suppressed_total"] == 0
        assert stats["parse_errors"] == 0

    def test_render_lists_violations_sorted(self, lint_tree):
        report = lint_tree({"core/mod.py": ("import numpy as np\n"
                                            "b = np.ones(2)\n"
                                            "a = np.zeros(3)\n")},
                           [DtypePolicyRule()])
        rendered = report.render().splitlines()
        assert "RL003" in rendered[0] and ":2:" in rendered[0]
        assert "RL003" in rendered[1] and ":3:" in rendered[1]
        assert rendered[-1].startswith("2 violation(s)")

    def test_render_clean(self, lint_tree):
        report = lint_tree({"core/mod.py": "x = 1\n"}, default_rules())
        assert report.render().startswith("clean: 0 violation(s)")

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        report = run_lint([str(tmp_path)], default_rules())
        assert not report.ok
        assert len(report.errors) == 1 and "cannot lint" in report.errors[0]
        assert report.stats()["parse_errors"] == 1


class TestCli:
    def _write_bad(self, tmp_path):
        tree = tmp_path / "src" / "repro" / "core"
        tree.mkdir(parents=True)
        (tree / "mod.py").write_text("import numpy as np\nx = np.zeros(3)\n")
        return tmp_path

    def test_exit_nonzero_on_violations(self, tmp_path, capsys):
        root = self._write_bad(tmp_path)
        assert main(["lint", str(root)]) == 1
        out = capsys.readouterr().out
        assert "RL003" in out and "1 violation(s)" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "fine.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_stats_json_written(self, tmp_path, capsys):
        root = self._write_bad(tmp_path)
        stats_path = tmp_path / "out" / "lint_stats.json"
        assert main(["lint", str(root), "--stats", str(stats_path)]) == 1
        capsys.readouterr()
        payload = json.loads(stats_path.read_text())
        assert payload["violations_by_code"] == {"RL003": 1}
        assert payload["files_scanned"] == 1

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005",
                     "RL006", "RL007", "RL008"):
            assert code in out

    def test_format_json_findings(self, tmp_path, capsys):
        root = self._write_bad(tmp_path)
        assert main(["lint", str(root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        (finding,) = payload["violations"]
        assert finding["code"] == "RL003"
        assert finding["path"].endswith("mod.py")
        assert finding["line"] == 2 and "message" in finding
        assert payload["stats"]["violations_total"] == 1


class TestUnusedSuppressionAudit:
    def test_stale_suppression_fails_the_run(self, lint_tree):
        source = "x = 1  # repro-lint: disable=RL003 (stale)\n"
        report = lint_tree({"core/mod.py": source}, [DtypePolicyRule()])
        assert not report.ok and not report.violations
        (unused,) = report.unused
        assert unused.codes == ("RL003",) and unused.line == 1
        assert "unused suppression" in report.render()
        (entry,) = report.stats()["unused_suppressions"]
        assert entry["codes"] == ["RL003"]

    def test_live_suppression_is_not_flagged(self, lint_tree):
        source = ("import numpy as np\n"
                  "x = np.zeros(3)  # repro-lint: disable=RL003 (fixture)\n")
        report = lint_tree({"core/mod.py": source}, [DtypePolicyRule()])
        assert report.ok and not report.unused

    def test_codes_outside_the_run_do_not_count(self, lint_tree):
        # An RL001 suppression is unjudgeable when only RL003 ran.
        source = "x = 1  # repro-lint: disable=RL001 (other rule)\n"
        report = lint_tree({"core/mod.py": source}, [DtypePolicyRule()])
        assert report.ok and not report.unused

    def test_stale_file_wide_suppression_flagged(self, lint_tree):
        source = "# repro-lint: disable-file=RL003\nx = 1\n"
        report = lint_tree({"core/mod.py": source}, [DtypePolicyRule()])
        assert not report.ok
        (unused,) = report.unused
        assert unused.codes == ("RL003",)

    def test_mixed_entry_reports_only_dead_codes(self, lint_tree):
        source = ("import numpy as np\n"
                  "x = np.zeros(3)  # repro-lint: disable=RL001,RL003\n")
        report = lint_tree({"core/mod.py": source}, default_rules())
        # RL003 fired (used); RL001 ran and silenced nothing — dead.
        assert not report.ok
        (unused,) = report.unused
        assert unused.codes == ("RL001",)
