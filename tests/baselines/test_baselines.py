"""Every baseline end-to-end on the tiny fixture."""

import numpy as np
import pytest

from repro.baselines import (
    AdaBoostM1,
    AdaBoostNC,
    AdaBoostNCConfig,
    BANs,
    BANsConfig,
    Bagging,
    BaselineConfig,
    SingleModel,
    SnapshotConfig,
    SnapshotEnsemble,
)


def quick_config(cls=BaselineConfig, **overrides):
    base = dict(num_models=3, epochs_per_model=2, lr=0.05, batch_size=32,
                weight_decay=0.0)
    base.update(overrides)
    return cls(**base)


ALL_METHODS = [
    (SingleModel, BaselineConfig),
    (Bagging, BaselineConfig),
    (AdaBoostM1, BaselineConfig),
    (AdaBoostNC, AdaBoostNCConfig),
    (SnapshotEnsemble, SnapshotConfig),
    (BANs, BANsConfig),
]


class TestAllMethods:
    @pytest.mark.parametrize("method_cls,config_cls", ALL_METHODS)
    def test_fit_produces_valid_result(self, method_cls, config_cls,
                                       tiny_image_split, mlp_factory):
        method = method_cls(mlp_factory, quick_config(config_cls))
        result = method.fit(tiny_image_split.train, tiny_image_split.test, rng=0)
        assert 0.0 <= result.final_accuracy <= 1.0
        assert result.total_epochs == 6
        assert all(m.alpha > 0 for m in result.members)
        # Curve checkpoints are monotone in cumulative epochs.
        epochs = [p.cumulative_epochs for p in result.curve]
        assert epochs == sorted(epochs)

    @pytest.mark.parametrize("method_cls,config_cls", ALL_METHODS)
    def test_reproducible(self, method_cls, config_cls, tiny_image_split,
                          mlp_factory):
        results = [
            method_cls(mlp_factory, quick_config(config_cls)).fit(
                tiny_image_split.train, tiny_image_split.test, rng=3)
            for _ in range(2)
        ]
        assert results[0].final_accuracy == results[1].final_accuracy


class TestSingleModel:
    def test_one_member_full_budget(self, tiny_image_split, mlp_factory):
        result = SingleModel(mlp_factory, quick_config()).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert len(result.members) == 1
        assert result.members[0].epochs == 6
        # per-epoch curve
        assert len(result.curve) == 6


class TestEnsembleSizes:
    @pytest.mark.parametrize("method_cls,config_cls", ALL_METHODS[1:])
    def test_member_count(self, method_cls, config_cls, tiny_image_split,
                          mlp_factory):
        method = method_cls(mlp_factory, quick_config(config_cls))
        result = method.fit(tiny_image_split.train, tiny_image_split.test, rng=0)
        assert len(result.ensemble) == 3
        assert len(result.members) == 3


class TestSnapshot:
    def test_uses_cyclic_schedule(self, mlp_factory):
        method = SnapshotEnsemble(mlp_factory, quick_config(SnapshotConfig))
        assert method.config.schedule == "snapshot"

    def test_snapshots_differ(self, tiny_image_split, mlp_factory):
        result = SnapshotEnsemble(mlp_factory, quick_config(SnapshotConfig)).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        w0 = next(result.ensemble.models[0].parameters()).data
        w1 = next(result.ensemble.models[1].parameters()).data
        assert not np.allclose(w0, w1)


class TestBANs:
    def test_distillation_chain(self, tiny_image_split, mlp_factory):
        config = quick_config(BANsConfig, distill_alpha=0.7, temperature=3.0)
        result = BANs(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert len(result.ensemble) == 3


class TestAdaBoost:
    def test_m1_weights_tracked(self, tiny_image_split, mlp_factory):
        result = AdaBoostM1(mlp_factory, quick_config()).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert all("epsilon" in m.extras for m in result.members)
        assert all(0.0 < m.extras["epsilon"] < 1.0 for m in result.members)

    def test_nc_penalty_tracked(self, tiny_image_split, mlp_factory):
        result = AdaBoostNC(mlp_factory, quick_config(AdaBoostNCConfig)).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert all(0.0 <= m.extras["mean_penalty"] <= 1.0
                   for m in result.members)

    def test_nc_transfer_variant(self, tiny_image_split, mlp_factory):
        config = quick_config(AdaBoostNCConfig, transfer=True)
        result = AdaBoostNC(mlp_factory, config).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert result.method == "AdaBoost.NC (transfer)"


class TestFitResultHelpers:
    def test_average_and_increase(self, tiny_image_split, mlp_factory):
        result = Bagging(mlp_factory, quick_config()).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        avg = result.average_member_accuracy()
        assert avg == pytest.approx(
            np.mean([m.test_accuracy for m in result.members]))
        assert result.increased_accuracy() == pytest.approx(
            result.final_accuracy - avg)

    def test_accuracy_at_budget(self, tiny_image_split, mlp_factory):
        result = Bagging(mlp_factory, quick_config()).fit(
            tiny_image_split.train, tiny_image_split.test, rng=0)
        assert result.accuracy_at_budget(1) is None
        assert result.accuracy_at_budget(6) is not None
