"""Negative Correlation Learning extension baseline."""

import numpy as np
import pytest

from repro.baselines import NCLConfig, NegativeCorrelationLearning
from repro.core import ensemble_diversity


@pytest.fixture
def quick_config():
    return NCLConfig(num_models=3, epochs_per_model=2, lr=0.05,
                     batch_size=32, weight_decay=0.0, penalty_lambda=0.3)


class TestNCL:
    def test_fit_valid_result(self, tiny_image_split, mlp_factory,
                              quick_config):
        method = NegativeCorrelationLearning(mlp_factory, quick_config)
        result = method.fit(tiny_image_split.train, tiny_image_split.test,
                            rng=0)
        assert len(result.ensemble) == 3
        assert 0.0 <= result.final_accuracy <= 1.0
        assert result.total_epochs == 6

    def test_penalty_increases_diversity(self, tiny_image_split, mlp_factory):
        def diversity_at(lam):
            config = NCLConfig(num_models=3, epochs_per_model=3, lr=0.05,
                               batch_size=32, weight_decay=0.0,
                               penalty_lambda=lam)
            result = NegativeCorrelationLearning(mlp_factory, config).fit(
                tiny_image_split.train, tiny_image_split.test, rng=2)
            probs = result.ensemble.member_probs(tiny_image_split.test.x)
            return ensemble_diversity(probs)

        assert diversity_at(3.0) > diversity_at(0.0)

    def test_runner_dispatch(self, tiny_image_split, mlp_factory):
        from repro.experiments.protocol import Scenario
        from repro.experiments.runner import run_method

        scenario = Scenario(name="t", split=tiny_image_split,
                            factory=mlp_factory, ensemble_size=2,
                            epochs_per_model=1, edde_first_epochs=1,
                            edde_later_epochs=1, lr=0.05, batch_size=32,
                            gamma=0.1, beta=0.7, weight_decay=0.0)
        result = run_method("ncl", scenario, rng=0)
        assert result.method == "NCL"
