"""The serving load harness: arrival processes, tail latency, QPS.

EDDE's efficiency claim is about *training* cost; the serving cost of an
ensemble is T forward passes per request, and the ROADMAP's north star
("heavy traffic … as fast as the hardware allows") demands that the
serving stack amortise it.  This harness measures exactly that, Locust
style but deterministic, against the concurrent pipeline
(:mod:`repro.serving.transport`):

* **Closed loop** — C client threads in a submit→wait→repeat cycle over
  pre-generated payloads.  Real wall-clock timing (``perf_counter``):
  this is where QPS and the p50/p95/p99 latency percentiles come from.
* **Open loop** — a Poisson arrival replay on a
  :class:`~repro.serving.faults.ManualClock`: arrivals are drawn from the
  run's seeded RNG, the clock advances to each arrival, and the batcher
  is pumped exactly when its window expires.  Nothing here depends on
  host speed — same seed, same batch compositions, same simulated
  queueing delays — so batching *policy* (batch-size distribution,
  window-induced waiting) is a reproducible, testable quantity.
  Three arrival profiles (:func:`arrival_times`): ``open`` (homogeneous
  Poisson), ``ramp`` (rate sweeps ``rate`` → ``rate_end``; the overload
  bench's saturation finder) and ``burst`` (on/off duty cycle).

Every run also answers a probe set twice — solo through
``service.predict`` and batched through the pipeline — and records
byte-for-byte equality: the throughput win must never cost bit-parity.

Members are freshly initialised MLPs (deterministic per seed): serving
cost depends on architecture and member count, not on the weights'
training history, and skipping training keeps the harness seconds-fast
at CI scale.

``repro serve-load`` and ``benchmarks/bench_serving.py`` both drive
:func:`run_load_suite` — a T × {batching on, off} sweep — and archive
``results/BENCH_serving.json``; the registered ``serving_load`` grid
runner makes single cells declarable grid cells.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.ensemble import Ensemble
from repro.models.factory import ModelFactory
from repro.models.mlp import MLP
from repro.serving.faults import ManualClock
from repro.serving.service import InferenceService, ServiceConfig
from repro.serving.transport import PipelineConfig, ServingPipeline

__all__ = [
    "LoadConfig",
    "LoadResult",
    "arrival_times",
    "build_load_service",
    "run_load_suite",
    "run_serve_load",
]


@dataclass
class LoadConfig:
    """One load-harness cell: ensemble, traffic shape, pipeline knobs."""

    ensemble_size: int = 8         # T — members serving each request
    input_dim: int = 16
    num_classes: int = 10
    hidden: tuple = (32,)
    requests: int = 256            # total timed requests (closed loop)
    rows: int = 8                  # rows per request payload
    clients: int = 16              # closed-loop concurrency
    warmup: int = 16               # untimed warmup requests
    arrival: str = "closed"        # "closed" | "open" | "ramp" | "burst"
    rate: float = 2000.0           # open-loop mean arrivals/second
    #: ``arrival="ramp"``: the mean rate sweeps linearly from ``rate``
    #: to ``rate_end`` across the run (the saturation-finding profile).
    rate_end: Optional[float] = None
    #: ``arrival="burst"``: arrivals come only during the on-phase of a
    #: ``burst_period_s`` duty cycle; ``burst_duty`` is the on fraction.
    burst_period_s: float = 0.05
    burst_duty: float = 0.5
    batching: bool = True
    max_batch_rows: int = 128
    max_wait_ms: float = 5.0
    queue_depth: int = 1024
    workers: Optional[int] = None  # member pool size (None: default)
    probe_requests: int = 16       # bit-parity probe set size
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival not in ("closed", "open", "ramp", "burst"):
            raise ValueError(f"arrival must be one of 'closed', 'open', "
                             f"'ramp', 'burst', got {self.arrival!r}")
        if self.requests < 1 or self.rows < 1 or self.clients < 1:
            raise ValueError("requests, rows and clients must be >= 1")
        if self.arrival == "burst" and not 0 < self.burst_duty <= 1:
            raise ValueError(f"burst_duty must be in (0, 1], "
                             f"got {self.burst_duty}")
        if self.arrival == "burst" and self.burst_period_s <= 0:
            raise ValueError(f"burst_period_s must be positive, "
                             f"got {self.burst_period_s}")


@dataclass
class LoadResult:
    """One cell's measurements, JSON-able."""

    config: Dict
    seed: int
    arrival: str
    batching: bool
    requests: int
    seconds: float                 # timed-phase wall seconds (closed loop)
    qps: float
    latency_ms: Dict[str, float]   # p50/p95/p99/mean
    batches_formed: int
    requests_batched: int
    mean_batch_requests: float
    parity_ok: bool                # batched == solo, byte for byte
    #: Open-loop only: simulated queueing-delay stats on the manual clock.
    open_loop: Dict = field(default_factory=dict)

    def to_payload(self) -> Dict:
        return asdict(self)


# ----------------------------------------------------------------------
def build_load_service(config: LoadConfig,
                       clock=time.monotonic) -> InferenceService:
    """A T-member MLP service, deterministic in ``config.seed``."""
    root = np.random.SeedSequence([0x5E24E10AD, int(config.seed)])
    streams = root.spawn(config.ensemble_size + 1)
    alpha_rng = np.random.default_rng(streams[-1])
    factory = ModelFactory(MLP, input_dim=config.input_dim,
                           num_classes=config.num_classes,
                           hidden=tuple(config.hidden))
    ensemble = Ensemble()
    for member in range(config.ensemble_size):
        ensemble.add(factory.build(rng=np.random.default_rng(
            streams[member])),
            alpha=float(alpha_rng.uniform(0.5, 1.5)))
    return InferenceService(ensemble, ServiceConfig(clock=clock))


def _payloads(config: LoadConfig, count: int,
              rng: np.random.Generator) -> List[np.ndarray]:
    return [rng.normal(size=(config.rows, config.input_dim))
            .astype(np.float32) for _ in range(count)]


def _pipeline_config(config: LoadConfig) -> PipelineConfig:
    return PipelineConfig(max_batch_rows=config.max_batch_rows,
                          max_wait_ms=config.max_wait_ms,
                          queue_depth=config.queue_depth,
                          workers=config.workers,
                          batching=config.batching)


def arrival_times(config: LoadConfig,
                  rng: np.random.Generator) -> np.ndarray:
    """Draw the open-loop arrival timeline for ``config``'s profile.

    * ``open``  — homogeneous Poisson at ``rate``;
    * ``ramp``  — inhomogeneous Poisson whose mean rate sweeps linearly
      from ``rate`` to ``rate_end`` across the run (each inter-arrival
      gap is drawn at the instantaneous rate) — the profile the overload
      bench uses to walk a service into saturation;
    * ``burst`` — an on/off duty cycle: gaps are drawn at ``rate`` and
      any arrival landing in an off-phase is shifted to the start of the
      next on-phase (arrival order and count are preserved).
    """
    n = config.requests
    if config.arrival == "ramp":
        end = config.rate_end if config.rate_end is not None else config.rate
        rates = np.linspace(config.rate, float(end), n, dtype=np.float64)
        gaps = rng.exponential(1.0 / np.maximum(rates, 1e-9))
        return np.cumsum(gaps)
    gaps = rng.exponential(1.0 / config.rate, size=n)
    times = np.cumsum(gaps)
    if config.arrival == "burst":
        period = config.burst_period_s
        on = period * config.burst_duty
        # Compress the timeline: only on-phase time accrues arrivals,
        # then map each arrival back to absolute (on+off) time.
        compressed = times * config.burst_duty
        cycle, offset = np.divmod(compressed, on)
        times = cycle * period + offset
    return times


def _percentiles(latencies: Sequence[float]) -> Dict[str, float]:
    sample = np.asarray(latencies, dtype=np.float64) * 1000.0
    return {"p50": float(np.percentile(sample, 50)),
            "p95": float(np.percentile(sample, 95)),
            "p99": float(np.percentile(sample, 99)),
            "mean": float(sample.mean())}


def _check_parity(config: LoadConfig, service: InferenceService,
                  rng: np.random.Generator) -> bool:
    """Solo vs micro-batched answers on a probe set, compared with ``==``."""
    probes = _payloads(config, config.probe_requests, rng)
    solo = [service.predict(x).probs.copy() for x in probes]
    pipeline = ServingPipeline(service, PipelineConfig(
        max_batch_rows=config.max_batch_rows, workers=0,
        queue_depth=max(config.queue_depth, len(probes)))
    ).start(pump=False)
    tickets = [pipeline.submit(x) for x in probes]
    while any(not ticket.done for ticket in tickets):
        pipeline.batcher.pump_once()
    batched = [pipeline.result(ticket).probs for ticket in tickets]
    pipeline.close()
    return all(np.array_equal(a, b) for a, b in zip(solo, batched))


# ----------------------------------------------------------------------
def _run_closed_loop(config: LoadConfig, service: InferenceService,
                     rng: np.random.Generator):
    """C threads in submit→wait→repeat; real-time QPS and percentiles."""
    payloads = _payloads(config, config.requests + config.warmup, rng)
    warmup, timed = payloads[:config.warmup], payloads[config.warmup:]
    latencies: List[float] = []
    lock = threading.Lock()
    shares = np.array_split(np.arange(len(timed)), config.clients)

    with ServingPipeline(service, _pipeline_config(config)) as pipeline:
        for x in warmup:
            pipeline.predict(x)

        def client(indices) -> None:
            mine = []
            for i in indices:
                begin = time.perf_counter()
                pipeline.predict(timed[i])
                mine.append(time.perf_counter() - begin)
            with lock:
                latencies.extend(mine)

        threads = [threading.Thread(target=client, args=(share,),
                                    name=f"load-client-{n}")
                   for n, share in enumerate(shares) if len(share)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seconds = time.perf_counter() - started
        stats = (pipeline.batcher.batches_formed,
                 pipeline.batcher.requests_batched) \
            if pipeline.batcher else (0, 0)
    return latencies, seconds, stats


def _run_open_loop(config: LoadConfig, rng: np.random.Generator):
    """Poisson replay on a manual clock: deterministic batching policy."""
    clock = ManualClock()
    service = build_load_service(config, clock=clock)
    pipeline = ServingPipeline(service, _pipeline_config(config))
    pipeline.start(pump=False)   # manual pumping at exact window expiries
    arrivals = arrival_times(config, rng)
    payloads = _payloads(config, config.requests, rng)
    window = config.max_wait_ms / 1000.0
    delays: List[float] = []
    batch_sizes: List[int] = []
    tickets = []

    def pump() -> None:
        drained = pipeline.batcher.pump_once() if pipeline.batcher else 0
        if drained:
            batch_sizes.append(drained)

    oldest: Optional[float] = None
    for arrive, x in zip(arrivals, payloads):
        # Pump every window expiry that precedes this arrival.
        while oldest is not None and oldest + window <= arrive:
            clock.now = oldest + window
            pump()
            oldest = None if pipeline.batcher is None or \
                not pipeline.batcher.depth() else clock.now
        clock.now = float(arrive)
        ticket = pipeline.submit(x)
        tickets.append((ticket, float(arrive)))
        if ticket.done:              # batching off: answered inline
            delays.append(0.0)
        elif oldest is None:
            oldest = float(arrive)
        if pipeline.batcher is not None and \
                pipeline.batcher.depth() * config.rows >= \
                config.max_batch_rows:
            pump()                   # prefix full: batch forms immediately
            oldest = None
    while pipeline.batcher is not None and pipeline.batcher.depth():
        clock.advance(window)
        pump()
    if pipeline.batcher is not None:
        for ticket, arrive in tickets:
            delays.append(max(0.0, ticket.wait(timeout=1.0).latency))
    pipeline.close()
    sizes = np.asarray(batch_sizes or [1], dtype=np.float64)
    delay_ms = np.asarray(delays, dtype=np.float64) * 1000.0
    return {
        "profile": config.arrival,
        "simulated_seconds": float(arrivals[-1]),
        "batch_size_mean": float(sizes.mean()),
        "batch_size_max": int(sizes.max()),
        "queueing_delay_ms": {
            "p50": float(np.percentile(delay_ms, 50)),
            "p99": float(np.percentile(delay_ms, 99)),
            "max": float(delay_ms.max()),
        },
    }


def run_serve_load(config: LoadConfig) -> LoadResult:
    """Run one load cell; pure function of ``config`` (incl. its seed),
    up to the wall-clock timings the closed loop exists to measure."""
    rng = np.random.default_rng(
        np.random.SeedSequence([0x10AD5EED, int(config.seed)]))
    service = build_load_service(config)
    parity_ok = _check_parity(config, service, rng)

    open_stats: Dict = {}
    if config.arrival != "closed":
        open_stats = _run_open_loop(config, rng)

    latencies, seconds, (batches, batched) = _run_closed_loop(
        config, service, rng)
    return LoadResult(
        config=asdict(config), seed=config.seed, arrival=config.arrival,
        batching=config.batching, requests=len(latencies),
        seconds=float(seconds),
        qps=float(len(latencies) / seconds) if seconds > 0 else 0.0,
        latency_ms=_percentiles(latencies),
        batches_formed=batches, requests_batched=batched,
        mean_batch_requests=float(batched / batches) if batches else 0.0,
        parity_ok=bool(parity_ok),
        open_loop=open_stats,
    )


# ----------------------------------------------------------------------
def run_load_suite(ensemble_sizes: Sequence[int] = (1, 4, 8),
                   seed: int = 0, **overrides) -> Dict:
    """The benchmark sweep: T × {batching on, off} (+ one open-loop cell).

    Returns the ``BENCH_serving.json`` payload: per-cell QPS and latency
    percentiles, the batched-vs-solo speedup per T, and the aggregate
    bit-parity verdict.
    """
    cells = []
    speedups: Dict[str, float] = {}
    for size in ensemble_sizes:
        by_batching = {}
        for batching in (False, True):
            result = run_serve_load(LoadConfig(
                ensemble_size=int(size), batching=batching, seed=seed,
                **overrides))
            cells.append(result.to_payload())
            by_batching[batching] = result
        off, on = by_batching[False], by_batching[True]
        speedups[str(size)] = float(on.qps / off.qps) if off.qps else 0.0
    open_loop = run_serve_load(LoadConfig(
        ensemble_size=int(ensemble_sizes[-1]), arrival="open",
        batching=True, seed=seed, **overrides))
    cells.append(open_loop.to_payload())
    return {
        "harness": "serve-load",
        "seed": int(seed),
        "ensemble_sizes": [int(size) for size in ensemble_sizes],
        "cells": cells,
        "qps_speedup_batched": speedups,
        "parity_ok": bool(all(cell["parity_ok"] for cell in cells)),
    }
