"""Multi-seed replication as a thin grid over the ``seed`` factor.

These used to hand-roll their own seed loops in
``repro.experiments.replication``; they are now the smallest possible
grids — one method (or several) × the seed list, executed in memory with
rich results retained — and return the same
:class:`~repro.experiments.replication.ReplicatedResult` the analysis
helpers and tests consume.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.grid.executor import run_grid
from repro.experiments.grid.runners import scenario_scope
from repro.experiments.grid.spec import GridSpec
from repro.experiments.protocol import Scenario
from repro.experiments.replication import ReplicatedResult

_SCOPE = "replicate-scenario"


def _replicate_grid(methods: Sequence[str], seeds: Sequence[int],
                    overrides: dict) -> GridSpec:
    return GridSpec(
        name="replicate",
        factors={"method": list(methods), "scenario": [_SCOPE],
                 "seed": list(seeds)},
        base=dict(overrides),
        checkpoint=False,
    )


def run_replicated(method: str, scenario: Scenario,
                   seeds: Sequence[int] = (0, 1, 2),
                   **overrides) -> ReplicatedResult:
    """Fit ``method`` once per seed and aggregate final accuracies."""
    return compare_replicated([method], scenario, seeds=seeds,
                              **overrides)[method]


def compare_replicated(methods: Sequence[str], scenario: Scenario,
                       seeds: Sequence[int] = (0, 1, 2),
                       **overrides) -> Dict[str, ReplicatedResult]:
    """Replicate several methods on one scenario (shared seed list)."""
    spec = _replicate_grid(methods, seeds, overrides)
    with scenario_scope(_SCOPE, scenario):
        grid = run_grid(spec, keep_results=True)
    replicated = {method: ReplicatedResult(method=method)
                  for method in methods}
    for record in grid.records:
        if record.status != "done":
            raise RuntimeError(
                f"replication run {record.run_id} failed: {record.error}")
        entry = replicated[record.factors["method"]]
        entry.results.append(record.result)
        entry.accuracies.append(float(record.metrics["final_accuracy"]))
        entry.member_averages.append(
            float(record.metrics["average_member_accuracy"]))
        entry.method = record.meta.get("method_label", entry.method)
    return replicated
