"""Sharded grid execution with an atomic per-run manifest.

The executor partitions the run table round-robin across ``num_shards``
(run ``i`` belongs to shard ``i % num_shards``) and executes its shard's
runs either in-process or across a ``multiprocessing`` pool.  Every
completed run is recorded as one atomically-written JSON file under
``<out>/<grid>/manifest/<run_id>.json`` — the unit of resumability: a
killed grid re-invoked with ``resume=True`` skips every run whose
manifest entry is already ``done`` (and, for the run that died mid-fit,
continues from its last round checkpoint via PR 2's
:class:`~repro.core.checkpointing.CheckpointManager`).

Because runs seed their RNG from the run table alone (see
:mod:`~repro.experiments.grid.runners`) and aggregation folds records in
run-table order, the aggregate of any shard/worker/resume combination is
bit-identical to an uninterrupted single-shard execution.

State directory layout::

    <out>/<grid_name>/
      grid.json                  # spec payload + spec_hash (resume guard)
      manifest/<run_id>.json     # one atomic entry per completed run
      runs/<run_id>/checkpoints/ # per-round training state (mid-run kills)
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.grid.aggregate import (
    aggregate_records,
    jsonable,
    significance_matrix,
)
from repro.experiments.grid.runners import RunContext, resolve_runner
from repro.experiments.grid.spec import GridSpec, RunSpec

_GRID_HEADER = "grid.json"
_PRIMARY_METRIC = "final_accuracy"


class GridStateError(RuntimeError):
    """An out-directory that cannot be (re)used for this spec."""


@dataclass
class RunRecord:
    """One manifest entry: a run's outcome, metrics and metadata."""

    index: int
    run_id: str
    grid: str
    factors: Dict[str, Any]
    method: str
    scenario: str
    seed: int
    status: str                      # "done" | "failed"
    metrics: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)
    seconds: float = 0.0
    error: str = ""
    result: Any = None               # rich object, in-memory runs only

    def to_payload(self) -> dict:
        return {
            "index": self.index, "run_id": self.run_id, "grid": self.grid,
            "factors": jsonable(self.factors), "method": self.method,
            "scenario": self.scenario, "seed": self.seed,
            "status": self.status, "metrics": jsonable(self.metrics),
            "meta": jsonable(self.meta), "seconds": self.seconds,
            "error": self.error,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RunRecord":
        fields = dict(payload)
        fields.pop("spec_hash", None)
        return cls(**fields)


def _atomic_write_json(path: pathlib.Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp{os.getpid()}"
    try:
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _read_json(path: pathlib.Path) -> Optional[dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


# ----------------------------------------------------------------------
# Single-run execution (shared by the serial path and pool workers).

def execute_run(spec: GridSpec, run: RunSpec,
                out_dir: Optional[pathlib.Path], resume: bool,
                keep_result: bool = False) -> Tuple[RunRecord, bool]:
    """Execute (or skip) one run; returns ``(record, executed)``.

    With an out directory, a ``done`` manifest entry for this spec hash
    short-circuits the run — that single check is what makes a killed
    grid resumable without re-running finished work.
    """
    manifest_path = run_dir = None
    if out_dir is not None:
        grid_dir = pathlib.Path(out_dir) / spec.name
        manifest_path = grid_dir / "manifest" / f"{run.run_id}.json"
        run_dir = grid_dir / "runs" / run.run_id
        entry = _read_json(manifest_path)
        if entry is not None and entry.get("status") == "done" \
                and entry.get("spec_hash") == spec.spec_hash:
            return RunRecord.from_payload(entry), False

    context = RunContext(spec=spec, run_dir=run_dir, resume=resume,
                         keep_result=keep_result)
    if spec.runner_module:
        importlib.import_module(spec.runner_module)
    runner = resolve_runner(run.runner)
    start = time.perf_counter()
    try:
        output = runner(run, context)
    except KeyboardInterrupt:
        raise                        # a kill is a kill: leave no manifest
    except Exception as error:       # noqa: BLE001 - isolate per-run faults
        record = RunRecord(
            index=run.index, run_id=run.run_id, grid=run.grid,
            factors=run.factor_dict, method=run.method,
            scenario=run.scenario, seed=run.seed, status="failed",
            seconds=time.perf_counter() - start,
            error=f"{type(error).__name__}: {error}")
    else:
        record = RunRecord(
            index=run.index, run_id=run.run_id, grid=run.grid,
            factors=run.factor_dict, method=run.method,
            scenario=run.scenario, seed=run.seed, status="done",
            metrics=output.metrics, meta=output.meta,
            seconds=time.perf_counter() - start, result=output.result)
    if manifest_path is not None:
        payload = record.to_payload()
        payload["spec_hash"] = spec.spec_hash
        _atomic_write_json(manifest_path, payload)
    return record, True


def _pool_execute(args: tuple) -> dict:
    spec_payload, run_payload, out_dir, resume = args
    spec = GridSpec.from_payload(spec_payload)
    run = RunSpec.from_payload(run_payload)
    record, _ = execute_run(
        spec, run, pathlib.Path(out_dir) if out_dir else None, resume)
    return record.to_payload()


# ----------------------------------------------------------------------
# The sharded executor.

class GridExecutor:
    """Executes one shard of a grid's run table."""

    def __init__(self, spec: GridSpec, out_dir=None,
                 shard_index: int = 0, num_shards: int = 1,
                 workers: int = 1, resume: bool = False,
                 keep_results: bool = False):
        if num_shards < 1 or not 0 <= shard_index < num_shards:
            raise ValueError(f"bad shard {shard_index}/{num_shards}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if out_dir is None and workers > 1:
            raise ValueError("parallel workers need an out_dir for their "
                             "manifest (in-memory grids run serially)")
        if keep_results and workers > 1:
            raise ValueError("keep_results needs workers=1: pool workers "
                             "return JSON payloads, which cannot carry "
                             "live result objects")
        self.spec = spec
        self.out_dir = pathlib.Path(out_dir) if out_dir is not None else None
        self.shard_index = shard_index
        self.num_shards = num_shards
        self.workers = workers
        self.resume = resume
        self.keep_results = keep_results
        self.runs = spec.expand()
        if self.out_dir is not None:
            self._check_state_dir()

    @property
    def grid_dir(self) -> Optional[pathlib.Path]:
        if self.out_dir is None:
            return None
        return self.out_dir / self.spec.name

    def shard_runs(self) -> List[RunSpec]:
        return [run for run in self.runs
                if run.index % self.num_shards == self.shard_index]

    # -- state-directory guards ---------------------------------------
    def _check_state_dir(self) -> None:
        header_path = self.grid_dir / _GRID_HEADER
        header = _read_json(header_path)
        if header is not None and header.get("spec_hash") != self.spec.spec_hash:
            raise GridStateError(
                f"{self.grid_dir} holds state for a different spec "
                f"(hash {header.get('spec_hash')} != {self.spec.spec_hash}); "
                f"use a fresh --out directory")
        if header is None:
            _atomic_write_json(header_path, {
                "name": self.spec.name, "spec": self.spec.to_payload(),
                "spec_hash": self.spec.spec_hash})
        if not self.resume:
            stale = [run.run_id for run in self.shard_runs()
                     if (self.grid_dir / "manifest"
                         / f"{run.run_id}.json").is_file()]
            if stale:
                raise GridStateError(
                    f"{self.grid_dir} already has manifest entries for "
                    f"{len(stale)} of this shard's runs (e.g. {stale[0]}); "
                    f"pass resume=True/--resume to skip completed runs, or "
                    f"use a fresh --out directory")

    # -- execution -----------------------------------------------------
    def execute(self) -> List[RunRecord]:
        """Run this shard; returns its records in run-table order."""
        runs = self.shard_runs()
        if self.workers == 1:
            records = [execute_run(self.spec, run, self.out_dir, self.resume,
                                   keep_result=self.keep_results)[0]
                       for run in runs]
        else:
            spec_payload = self.spec.to_payload()
            out = str(self.out_dir)
            tasks = [(spec_payload, run.to_payload(), out, self.resume)
                     for run in runs]
            with multiprocessing.Pool(processes=self.workers) as pool:
                payloads = pool.map(_pool_execute, tasks, chunksize=1)
            records = [RunRecord.from_payload(p) for p in payloads]
        return sorted(records, key=lambda record: record.index)


# ----------------------------------------------------------------------
# Whole-grid convenience + the aggregate artifact payload.

@dataclass
class GridResult:
    """A completed (or partially completed) grid with its aggregates."""

    spec: GridSpec
    records: List[RunRecord]
    aggregates: List[dict]
    significance: List[dict]
    missing: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.missing and all(
            record.status == "done" for record in self.records)

    @property
    def failures(self) -> List[RunRecord]:
        return [record for record in self.records
                if record.status == "failed"]

    def find(self, **factors) -> List[RunRecord]:
        return [record for record in self.records
                if all(record.factors.get(name) == value
                       for name, value in factors.items())]

    def one(self, **factors) -> RunRecord:
        matches = self.find(**factors)
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} runs match {factors} in grid "
                           f"{self.spec.name!r} (expected exactly 1)")
        return matches[0]

    def metric(self, name: str, **factors):
        return self.one(**factors).metrics[name]

    def group(self, **factors) -> Optional[dict]:
        from repro.experiments.grid.aggregate import find_group
        return find_group(self.aggregates, **factors)

    def to_payload(self) -> dict:
        return {
            "grid": self.spec.name,
            "spec": self.spec.to_payload(),
            "spec_hash": self.spec.spec_hash,
            "complete": self.complete,
            "missing": list(self.missing),
            "runs": [record.to_payload() for record in self.records],
            "aggregates": jsonable(self.aggregates),
            "significance": jsonable(self.significance),
        }


def collect_records(spec: GridSpec,
                    out_dir) -> Tuple[List[RunRecord], List[str]]:
    """Read every manifest entry of ``spec``'s run table from ``out_dir``.

    Returns ``(records, missing_run_ids)`` — the aggregation input and
    the coverage gap (runs other shards have not finished yet).
    """
    manifest_dir = pathlib.Path(out_dir) / spec.name / "manifest"
    records: List[RunRecord] = []
    missing: List[str] = []
    for run in spec.expand():
        entry = _read_json(manifest_dir / f"{run.run_id}.json")
        if entry is None or entry.get("spec_hash") != spec.spec_hash:
            missing.append(run.run_id)
            continue
        records.append(RunRecord.from_payload(entry))
    return records, missing


def grid_result(spec: GridSpec, records: Sequence[RunRecord],
                missing: Sequence[str] = ()) -> GridResult:
    """Aggregate ``records`` into a :class:`GridResult` (one pass)."""
    ordered = sorted(records, key=lambda record: record.index)
    group_by = spec.group_factors()
    aggregates = aggregate_records(ordered, group_by=group_by)
    significance = []
    if "method" in group_by and any(
            _PRIMARY_METRIC in entry["metrics"] for entry in aggregates):
        significance = significance_matrix(aggregates, _PRIMARY_METRIC,
                                           versus="method")
    return GridResult(spec=spec, records=ordered, aggregates=aggregates,
                      significance=significance, missing=list(missing))


def run_grid(spec: GridSpec, out_dir=None, num_shards: int = 1,
             workers: int = 1, resume: bool = False,
             keep_results: bool = False, artifact_dir=None) -> GridResult:
    """Execute a whole grid (every shard) and aggregate it.

    ``out_dir=None`` runs fully in memory (no manifest, no per-run
    checkpoints) — the mode :func:`~repro.experiments.grid.replicate.
    run_replicated` and fast tests use.  With an out directory the grid
    is durable: killing and re-invoking with ``resume=True`` completes
    the remaining runs.  ``keep_results=True`` retains each run's live
    result object on its record and therefore requires the in-memory
    mode — a durable grid re-reads records from the JSON manifest, which
    cannot carry them.  ``artifact_dir`` additionally writes the
    ``GRID_<name>.json`` aggregate artifact via
    :mod:`~repro.experiments.grid.reporting`.
    """
    if keep_results and out_dir is not None:
        raise ValueError("keep_results needs out_dir=None: a durable grid "
                         "re-reads its records from the JSON manifest, "
                         "which cannot carry live result objects")
    records: List[RunRecord] = []
    for shard_index in range(num_shards):
        executor = GridExecutor(
            spec, out_dir=out_dir, shard_index=shard_index,
            num_shards=num_shards, workers=workers, resume=resume,
            keep_results=keep_results)
        records.extend(executor.execute())
    missing: List[str] = []
    if out_dir is not None:
        records, missing = collect_records(spec, out_dir)
    result = grid_result(spec, records, missing)
    if artifact_dir is not None:
        from repro.experiments.grid.reporting import write_grid_artifact
        write_grid_artifact(result, directory=artifact_dir)
    return result
