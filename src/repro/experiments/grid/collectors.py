"""Metric collectors: fold a FitResult into a JSON-able metrics dict.

A collector is a registered ``fn(run, result, scenario) -> dict``; the
run's spec names one (``collect="standard"`` by default) and the runner
applies it right after the fit, inside the worker process — so the
manifest entry (and hence the aggregate) never needs the model weights.

Everything a collector returns must be JSON-serializable: scalars are
aggregated (mean ± std across seeds), lists/matrices ride along for
renderers (Fig. 7's curves, Fig. 8's similarity heatmaps).
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.analysis.bias_variance import zero_one_decomposition
from repro.analysis.similarity import ensemble_div_h, ensemble_similarity_matrix
from repro.core.results import CurvePoint, FitResult
from repro.experiments.grid.aggregate import jsonable
from repro.experiments.grid.spec import RunSpec
from repro.experiments.protocol import Scenario

CollectorFn = Callable[[RunSpec, FitResult, Scenario], Dict[str, Any]]

_COLLECTORS: Dict[str, CollectorFn] = {}


def register_collector(name: str, fn: CollectorFn,
                       replace: bool = False) -> None:
    if name in _COLLECTORS and not replace:
        raise ValueError(f"collector {name!r} is already registered")
    _COLLECTORS[name] = fn


def resolve_collector(name: str) -> CollectorFn:
    if name not in _COLLECTORS:
        raise KeyError(f"unknown collector {name!r}; registered: "
                       f"{', '.join(sorted(_COLLECTORS))}")
    return _COLLECTORS[name]


def standard_metrics(run: RunSpec, result: FitResult,
                     scenario: Scenario) -> Dict[str, Any]:
    """The columns every effectiveness table needs (Tables II/III/V)."""
    return {
        "final_accuracy": float(result.final_accuracy),
        "average_member_accuracy": float(result.average_member_accuracy()),
        "increased_accuracy": float(result.increased_accuracy()),
        "total_epochs": int(result.total_epochs),
        "num_members": len(result.ensemble),
    }


def diversity_metrics(run: RunSpec, result: FitResult,
                      scenario: Scenario) -> Dict[str, Any]:
    """Table IV / Table VI / Fig. 8: Div_H and the pairwise similarity."""
    metrics = standard_metrics(run, result, scenario)
    test = scenario.split.test
    if len(result.ensemble) >= 2:
        metrics["diversity"] = float(ensemble_div_h(
            result.ensemble, test.x, max_models=len(result.ensemble)))
        metrics["similarity_matrix"] = jsonable(ensemble_similarity_matrix(
            result.ensemble, test.x, max_models=len(result.ensemble)))
    else:
        metrics["diversity"] = float("nan")
        metrics["similarity_matrix"] = []
    return metrics


def bias_variance_metrics(run: RunSpec, result: FitResult,
                          scenario: Scenario) -> Dict[str, Any]:
    """Fig. 1: the 0/1-loss bias/variance decomposition of the members."""
    metrics = standard_metrics(run, result, scenario)
    test = scenario.split.test
    member_probs = result.ensemble.member_probs(test.x)
    if len(member_probs) >= 2:
        point = zero_one_decomposition(member_probs, test.y,
                                       method=result.method)
        metrics["bias"] = float(point.bias)
        metrics["variance"] = float(point.variance)
    else:
        metrics["bias"] = float("nan")
        metrics["variance"] = float("nan")
    return metrics


def curve_metrics(run: RunSpec, result: FitResult,
                  scenario: Scenario) -> Dict[str, Any]:
    """Fig. 7: the accuracy-vs-cumulative-epochs curve plus the standards."""
    metrics = standard_metrics(run, result, scenario)
    metrics["curve"] = [
        {"cumulative_epochs": int(p.cumulative_epochs),
         "ensemble_accuracy": float(p.ensemble_accuracy),
         "num_models": int(p.num_models)}
        for p in result.curve]
    return metrics


def record_fit_result(record) -> FitResult:
    """Rebuild a curve-rendering FitResult shim from a run record.

    The analysis curve helpers (:func:`repro.analysis.render_curves` and
    friends) consume :class:`FitResult` objects; a record produced by the
    ``curve`` collector carries everything they read (method label,
    curve points, final accuracy) — the ensemble itself stayed in the
    worker.
    """
    meta = record.meta if hasattr(record, "meta") else record.get("meta", {})
    metrics = (record.metrics if hasattr(record, "metrics")
               else record.get("metrics", {}))
    method = meta.get("method_label") or (
        record.method if hasattr(record, "method") else record.get("method", ""))
    curve = [CurvePoint(**point) for point in metrics.get("curve", [])]
    return FitResult(method=method, ensemble=None, curve=curve,
                     total_epochs=int(metrics.get("total_epochs", 0)),
                     final_accuracy=float(metrics.get("final_accuracy",
                                                      float("nan"))))


register_collector("standard", standard_metrics)
register_collector("diversity", diversity_metrics)
register_collector("bias_variance", bias_variance_metrics)
register_collector("curve", curve_metrics)
