"""Result archiving shared by the benchmark harnesses and the grid CLI.

Rendered tables go to ``<results>/<name>.txt`` (and the live terminal),
grid aggregates to ``<results>/GRID_<name>.json`` — both via the same
directory-creation and atomic-write rules, so benches and ``repro grid``
never disagree about where artifacts land.  The default directory is
``results/`` under the current working directory, overridable with
``REPRO_RESULTS_DIR``; ``benchmarks/_common.py`` pins it to the repo
root explicitly.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Optional


def default_results_dir() -> pathlib.Path:
    return pathlib.Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


def ensure_results_dir(directory=None) -> pathlib.Path:
    """Resolve (and create, parents included) the results directory."""
    directory = (pathlib.Path(directory) if directory is not None
                 else default_results_dir())
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def emit(name: str, text: str, capsys=None, directory=None) -> pathlib.Path:
    """Print ``text`` to the real terminal and archive ``<name>.txt``."""
    directory = ensure_results_dir(directory)
    path = directory / f"{name}.txt"
    path.write_text(text + "\n")
    if capsys is not None:
        with capsys.disabled():
            print(f"\n{text}\n")
    else:  # pragma: no cover - direct invocation
        print(f"\n{text}\n")
    return path


def write_json(name: str, payload: Any, directory=None) -> pathlib.Path:
    """Atomically archive ``<name>.json`` (tmp file + ``os.replace``)."""
    directory = ensure_results_dir(directory)
    path = directory / f"{name}.json"
    tmp = directory / f".{name}.json.tmp{os.getpid()}"
    try:
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True,
                                  default=str) + "\n")
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def read_json(name: str, directory=None) -> Optional[Any]:
    """Load a previously archived ``<name>.json`` (None if absent/corrupt)."""
    path = (pathlib.Path(directory) if directory is not None
            else default_results_dir()) / f"{name}.json"
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def write_grid_artifact(result, directory=None) -> pathlib.Path:
    """Archive a grid's aggregate artifact as ``GRID_<name>.json``."""
    return write_json(f"GRID_{result.spec.name}", result.to_payload(),
                      directory=directory)
