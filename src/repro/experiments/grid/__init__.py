"""Declarative experiment grids: spec -> run table -> shards -> aggregates.

The orchestration layer above :mod:`repro.experiments`: a
:class:`GridSpec` declares factors (method, scenario, seed, any config
override), :func:`run_grid` executes the expanded run table — optionally
sharded across processes with per-run checkpoint/resume — and one
aggregation pass produces mean ± std per group plus a coarse
significance screen.  Every benchmark table/figure and the ``repro
grid`` CLI subcommand run through this package.
"""

from repro.experiments.grid.aggregate import (
    aggregate_records,
    find_group,
    sample_std,
    significance_matrix,
    standard_error,
    z_screen,
)
from repro.experiments.grid.collectors import (
    record_fit_result,
    register_collector,
    resolve_collector,
)
from repro.experiments.grid.executor import (
    GridExecutor,
    GridResult,
    GridStateError,
    RunRecord,
    collect_records,
    execute_run,
    grid_result,
    run_grid,
)
from repro.experiments.grid.replicate import compare_replicated, run_replicated
from repro.experiments.grid.reporting import (
    emit,
    ensure_results_dir,
    write_grid_artifact,
    write_json,
)
from repro.experiments.grid.runners import (
    RunContext,
    RunOutput,
    beta_teacher_rng,
    register_runner,
    register_scenario,
    resolve_runner,
    resolve_scenario,
    run_rng,
    scenario_scope,
)
from repro.experiments.grid.spec import (
    GridSpec,
    GridSpecError,
    RunSpec,
    expand_runs,
    stable_digest,
)

__all__ = [
    "GridExecutor", "GridResult", "GridSpec", "GridSpecError",
    "GridStateError", "RunContext", "RunOutput", "RunRecord", "RunSpec",
    "aggregate_records", "beta_teacher_rng", "collect_records",
    "compare_replicated", "emit",
    "ensure_results_dir", "execute_run", "expand_runs", "find_group",
    "grid_result", "record_fit_result", "register_collector",
    "register_runner", "register_scenario", "resolve_collector",
    "resolve_runner", "resolve_scenario", "run_grid", "run_replicated",
    "run_rng", "sample_std", "scenario_scope", "significance_matrix",
    "stable_digest", "standard_error", "write_grid_artifact", "write_json",
    "z_screen",
]
