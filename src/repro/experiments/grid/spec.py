"""Declarative grid specs and their deterministic run-table expansion.

A :class:`GridSpec` is a *factor table*: named factors, each with a list
of levels, optionally pruned by declarative constraints and enriched by
named cases (method + override bundles, as in the paper's Table VI
variants).  Expansion walks the cartesian product in declared factor
order and yields a stable, fully-resolved :class:`RunSpec` per surviving
cell — the *run table* every other grid component (executor, manifest,
aggregator) operates on.

Stability guarantees, relied on by the sharded executor and the
resume/aggregation tests:

* expanding the same spec always yields the same runs in the same order;
* ``run_id`` is content-derived (grid name + factor assignment + cell
  ordinal), so a run keeps its id no matter how many shards execute the
  table or which shard it lands in;
* ``spec_hash`` fingerprints the whole spec, so a resumed grid can refuse
  a directory that was produced by a different spec.

Reserved factor names: ``method``, ``scenario``, ``seed`` and ``case``
map onto :class:`RunSpec` fields; every other factor is treated as a
free-form config override (e.g. a ``gamma`` factor sweeps
``EDDEConfig.gamma`` — the paper's Table V).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

RESERVED_FACTORS = ("method", "scenario", "seed", "case")

_SPEC_FIELDS = {
    "name", "factors", "cases", "base", "constraints", "runner", "collect",
    "runner_module", "data_seed", "profile_ops", "checkpoint", "keep_last",
    "max_retries", "group_by",
}


class GridSpecError(ValueError):
    """A malformed spec, caught at construction/parse time."""


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved cell of the run table."""

    index: int                    # position in the expanded table
    run_id: str                   # stable content-derived identifier
    grid: str                     # owning GridSpec.name
    factors: Tuple[Tuple[str, Any], ...]   # full factor assignment
    method: str                   # resolved method ("" if runner-specific)
    scenario: str                 # scenario name (registry or protocol)
    seed: int                     # replication seed factor
    overrides: Tuple[Tuple[str, Any], ...]  # resolved config overrides
    runner: str                   # runner registry key
    collect: str                  # metric-collector registry key

    @property
    def factor_dict(self) -> Dict[str, Any]:
        return dict(self.factors)

    @property
    def override_dict(self) -> Dict[str, Any]:
        return dict(self.overrides)

    def to_payload(self) -> dict:
        payload = asdict(self)
        payload["factors"] = dict(self.factors)
        payload["overrides"] = dict(self.overrides)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "RunSpec":
        return cls(
            index=int(payload["index"]), run_id=payload["run_id"],
            grid=payload["grid"],
            factors=_freeze(payload["factors"]),
            method=payload["method"], scenario=payload["scenario"],
            seed=int(payload["seed"]),
            overrides=_freeze(payload["overrides"]),
            runner=payload["runner"], collect=payload["collect"])


def _freeze(mapping: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple((str(key), value) for key, value in mapping.items())


def canonical_json(value: Any) -> str:
    """Deterministic JSON used for hashing specs and factor assignments."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def stable_digest(value: Any, length: int = 10) -> str:
    """Stable hex digest of any JSON-able value (PYTHONHASHSEED-proof)."""
    return hashlib.sha1(canonical_json(value).encode("utf-8")).hexdigest()[:length]


@dataclass
class GridSpec:
    """A declarative experiment grid: factors -> runs -> aggregates.

    Attributes
    ----------
    name:
        Grid identifier; names the state directory and the
        ``results/GRID_<name>.json`` artifact.
    factors:
        Ordered mapping of factor name to its levels.  A missing ``seed``
        factor defaults to ``[0]`` so every grid aggregates over at least
        one replication seed.
    cases:
        Optional named bundles, e.g. the Table VI ablation variants: each
        value may set ``method``, ``runner`` and ``overrides`` for the
        runs of that case.  When present and no explicit ``case`` factor
        is declared, a ``case`` factor over all bundle names is appended.
    base:
        Overrides applied to every run (case/factor overrides win).
    constraints:
        Declarative pruning: each entry is a partial factor assignment
        (values may be lists, meaning membership); a cell matching *all*
        entries of any constraint is dropped from the run table.
    runner / collect:
        Registry keys (see :mod:`~repro.experiments.grid.runners` and
        :mod:`~repro.experiments.grid.collectors`).  A case bundle may
        override ``runner`` per cell.
    runner_module:
        Optional dotted module imported before runner resolution, so
        sharded worker processes see the same registrations as the
        parent (needed for project-specific runners under ``spawn``).
    checkpoint / keep_last / max_retries:
        Per-run training fault tolerance, threaded into the PR 2
        machinery by the method runner.
    group_by:
        Aggregation grouping; defaults to every factor except ``seed``.
    """

    name: str
    factors: Dict[str, List[Any]]
    cases: Optional[Dict[str, dict]] = None
    base: Dict[str, Any] = field(default_factory=dict)
    constraints: List[Dict[str, Any]] = field(default_factory=list)
    runner: str = "method"
    collect: str = "standard"
    runner_module: Optional[str] = None
    data_seed: int = 0
    profile_ops: bool = False
    checkpoint: bool = True
    keep_last: int = 1
    max_retries: Optional[int] = None
    group_by: Optional[List[str]] = None

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).replace("_", "").replace(
                "-", "").isalnum():
            raise GridSpecError(
                f"grid name must be a [-_a-zA-Z0-9]+ slug, got {self.name!r}")
        self.factors = {str(k): list(v) for k, v in dict(self.factors).items()}
        if self.cases is not None and "case" not in self.factors:
            self.factors["case"] = list(self.cases)
        if "seed" not in self.factors:
            self.factors["seed"] = [0]
        for factor, levels in self.factors.items():
            if not levels:
                raise GridSpecError(f"factor {factor!r} has no levels")
        if self.cases is not None:
            unknown = [c for c in self.factors["case"] if c not in self.cases]
            if unknown:
                raise GridSpecError(
                    f"case factor references unknown bundle(s): {unknown}")
        for constraint in self.constraints:
            if not isinstance(constraint, dict) or not constraint:
                raise GridSpecError(
                    f"constraints must be non-empty dicts, got {constraint!r}")
            for factor in constraint:
                if factor not in self.factors:
                    raise GridSpecError(
                        f"constraint names unknown factor {factor!r}")

    # -- identity ------------------------------------------------------
    def to_payload(self) -> dict:
        payload = {
            "name": self.name,
            "factors": self.factors,
            "base": self.base,
            "constraints": self.constraints,
            "runner": self.runner,
            "collect": self.collect,
            "data_seed": self.data_seed,
            "profile_ops": self.profile_ops,
            "checkpoint": self.checkpoint,
            "keep_last": self.keep_last,
            "max_retries": self.max_retries,
        }
        if self.cases is not None:
            payload["cases"] = self.cases
        if self.runner_module:
            payload["runner_module"] = self.runner_module
        if self.group_by is not None:
            payload["group_by"] = self.group_by
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "GridSpec":
        if not isinstance(payload, dict):
            raise GridSpecError(f"grid spec must be an object, "
                                f"got {type(payload).__name__}")
        unknown = sorted(set(payload) - _SPEC_FIELDS)
        if unknown:
            raise GridSpecError(f"unknown spec field(s): {', '.join(unknown)}")
        missing = [key for key in ("name", "factors") if key not in payload]
        if missing:
            raise GridSpecError(f"spec is missing: {', '.join(missing)}")
        return cls(**payload)

    @classmethod
    def from_json(cls, path) -> "GridSpec":
        path = pathlib.Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise GridSpecError(f"cannot read grid spec {path}: {error}")
        return cls.from_payload(payload)

    @property
    def spec_hash(self) -> str:
        return stable_digest(self.to_payload(), length=12)

    def group_factors(self) -> List[str]:
        if self.group_by is not None:
            return list(self.group_by)
        return [factor for factor in self.factors if factor != "seed"]

    # -- expansion -----------------------------------------------------
    def expand(self) -> List[RunSpec]:
        """The deterministic run table for this spec."""
        runs: List[RunSpec] = []
        names = list(self.factors)
        for index, combo in enumerate(
                itertools.product(*(self.factors[n] for n in names))):
            assignment = dict(zip(names, combo))
            if self._pruned(assignment):
                continue
            runs.append(self._resolve(len(runs), assignment))
        if not runs:
            raise GridSpecError(
                f"grid {self.name!r}: constraints pruned every cell")
        return runs

    def _pruned(self, assignment: Dict[str, Any]) -> bool:
        for constraint in self.constraints:
            if all(assignment[factor] in value
                   if isinstance(value, (list, tuple))
                   else assignment[factor] == value
                   for factor, value in constraint.items()):
                return True
        return False

    def _resolve(self, ordinal: int, assignment: Dict[str, Any]) -> RunSpec:
        overrides = dict(self.base)
        runner = self.runner
        method = assignment.get("method", "")
        if self.cases is not None:
            bundle = self.cases[assignment["case"]]
            method = bundle.get("method", method)
            runner = bundle.get("runner", runner)
            overrides.update(bundle.get("overrides", {}))
        for factor, value in assignment.items():
            if factor not in RESERVED_FACTORS:
                overrides[factor] = value
        run_id = (f"r{ordinal:04d}-"
                  + stable_digest({"grid": self.name, "cell": assignment}))
        return RunSpec(
            index=ordinal, run_id=run_id, grid=self.name,
            factors=_freeze(assignment),
            method=str(method), scenario=str(assignment.get("scenario", "")),
            seed=int(assignment.get("seed", 0)),
            overrides=_freeze(overrides), runner=str(runner),
            collect=str(self.collect))


def expand_runs(spec: GridSpec) -> List[RunSpec]:
    """Module-level alias for :meth:`GridSpec.expand` (reads better in docs)."""
    return spec.expand()
