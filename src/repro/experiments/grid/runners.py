"""Run executors: how one cell of the run table turns into metrics.

A *runner* is a registered callable ``fn(run, context) -> RunOutput``.
The default ``"method"`` runner resolves the run's scenario, fits the
run's ensemble method via :func:`repro.experiments.runner.run_method`
under PR 2's fault tolerance (per-run round checkpoints, engine-level
resume after a kill) and hands the :class:`~repro.core.results.FitResult`
to the run's metric collector.  ``"beta_probe"`` reproduces Fig. 5's
teacher/probe protocol one β per run, and the two beyond-paper ablation
variants from :mod:`repro.experiments.variants` are registered so Table
VI's extended cases are plain grid cells.

Per-run RNG derivation is the crux of shard-independence: every run's
generator is seeded from a :class:`numpy.random.SeedSequence` built out
of the grid name, the run's ``seed`` factor and its non-seed factor
assignment — never from the shard, worker or execution order — so a run
produces bit-identical results wherever and whenever it executes.
"""

from __future__ import annotations

import contextlib
import pathlib
import shutil
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Sequence

import numpy as np

from repro.core.checkpointing import (
    CheckpointError,
    CheckpointManager,
    FaultTolerance,
    RetryPolicy,
)
from repro.experiments.grid.collectors import resolve_collector
from repro.experiments.grid.spec import GridSpec, RunSpec, stable_digest
from repro.experiments.protocol import Scenario, build_scenario
from repro.experiments.runner import run_method
from repro.experiments.variants import (
    run_edde_correlate_previous_model,
    run_edde_cumulative_weights,
)


@dataclass
class RunContext:
    """Execution environment the executor hands to a runner."""

    spec: GridSpec
    run_dir: Optional[pathlib.Path] = None   # per-run state (checkpoints)
    resume: bool = False                     # honour on-disk round checkpoints
    keep_result: bool = False                # retain the FitResult object


@dataclass
class RunOutput:
    """What a runner returns for one run."""

    metrics: Dict[str, Any]
    meta: Dict[str, Any] = field(default_factory=dict)
    result: Any = None                       # optional rich object (in-memory)


RunnerFn = Callable[[RunSpec, RunContext], RunOutput]

_RUNNERS: Dict[str, RunnerFn] = {}
_SCENARIOS: Dict[str, Callable[[int], Scenario]] = {}


def register_runner(name: str, fn: RunnerFn, replace: bool = False) -> None:
    if name in _RUNNERS and not replace:
        raise ValueError(f"runner {name!r} is already registered")
    _RUNNERS[name] = fn


def resolve_runner(name: str) -> RunnerFn:
    if name not in _RUNNERS:
        raise KeyError(f"unknown runner {name!r}; registered: "
                       f"{', '.join(sorted(_RUNNERS))}")
    return _RUNNERS[name]


def register_scenario(name: str, builder: Callable[[int], Scenario],
                      replace: bool = False) -> None:
    """Register a named scenario provider beyond the protocol's builders.

    ``builder(data_seed)`` must return a :class:`Scenario`.  Providers
    registered in the parent process are visible to forked shard workers;
    under a spawning start method, register them from the spec's
    ``runner_module`` so child processes re-register on import.
    """
    if name in _SCENARIOS and not replace:
        raise ValueError(f"scenario provider {name!r} is already registered")
    _SCENARIOS[name] = builder


@contextlib.contextmanager
def scenario_scope(name: str, scenario: Scenario) -> Iterator[None]:
    """Temporarily serve a prebuilt scenario object under ``name``.

    Used by :func:`~repro.experiments.grid.replicate.run_replicated` to
    grid over a caller-constructed scenario without touching the global
    registry permanently.
    """
    previous = _SCENARIOS.get(name)
    _SCENARIOS[name] = lambda _seed: scenario
    try:
        yield
    finally:
        if previous is None:
            _SCENARIOS.pop(name, None)
        else:
            _SCENARIOS[name] = previous


def resolve_scenario(name: str, data_seed: int = 0) -> Scenario:
    """A registered provider if one exists, else the protocol's builder."""
    if name in _SCENARIOS:
        return _SCENARIOS[name](data_seed)
    return build_scenario(name, rng=data_seed)


# ----------------------------------------------------------------------
# Per-run RNG derivation.

def _entropy_words(run: RunSpec, salt: str = "",
                   exclude: Sequence[str] = ()) -> list:
    skip = {"seed", *exclude}
    cell = {name: value for name, value in run.factors if name not in skip}
    words = [int(stable_digest({"grid": run.grid, "cell": cell,
                                "salt": salt}, length=8), 16),
             int(run.seed) & 0xFFFFFFFF]
    return words


def run_rng(run: RunSpec, salt: str = "",
            exclude: Sequence[str] = ()) -> np.random.Generator:
    """The run's deterministic generator (shard- and order-independent).

    ``salt`` derives auxiliary streams for a run; ``exclude`` drops the
    named factors from the stream's cell so runs differing only in those
    factors share it (e.g. the β-probe's teacher, whose stream must not
    depend on the ``beta`` factor — see :func:`beta_teacher_rng`).
    """
    return np.random.default_rng(np.random.SeedSequence(
        _entropy_words(run, salt=salt, exclude=exclude)))


# Factors the beta_probe runner consumes itself (they never reach
# run_method); the teacher stream is derived from a cell without them.
BETA_PROBE_CONSUMED = ("beta", "n_folds", "probe_epochs", "teacher_epochs")


def beta_teacher_rng(run: RunSpec) -> np.random.Generator:
    """The β-probe teacher's generator, shared across one (scenario, seed).

    Derived from a cell that excludes every runner-consumed factor
    (:data:`BETA_PROBE_CONSUMED`), so grid cells differing only in β —
    or in probe length — retrain a bit-identical teacher on an identical
    fold split, exactly like the shared teacher of ``run_beta_sweep``.
    """
    return run_rng(run, salt="beta-teacher", exclude=BETA_PROBE_CONSUMED)


# ----------------------------------------------------------------------
# The default method runner.

def _fault_tolerance(run: RunSpec, context: RunContext,
                     scenario: Scenario) -> Optional[FaultTolerance]:
    spec = context.spec
    retry = (RetryPolicy(max_retries=spec.max_retries)
             if spec.max_retries is not None else None)
    if not spec.checkpoint or context.run_dir is None:
        if retry is None:
            return None
        return FaultTolerance(retry=retry)
    manager = CheckpointManager(context.run_dir / "checkpoints",
                                keep_last=spec.keep_last)
    state = None
    if context.resume and manager.latest_round() is not None:
        try:
            state = manager.load(scenario.factory)
        except CheckpointError:
            state = None    # unusable round files -> train from scratch
    return FaultTolerance(checkpoint=manager, resume_from=state, retry=retry)


def _discard_checkpoints(context: RunContext) -> None:
    if context.run_dir is not None:
        shutil.rmtree(context.run_dir / "checkpoints", ignore_errors=True)


def method_runner(run: RunSpec, context: RunContext) -> RunOutput:
    """Fit ``run.method`` on ``run.scenario`` and collect its metrics."""
    if not run.method:
        raise ValueError(f"run {run.run_id} has no method "
                         f"(factor or case bundle must set one)")
    scenario = resolve_scenario(run.scenario, context.spec.data_seed)
    fault_tolerance = _fault_tolerance(run, context, scenario)
    resumed = bool(fault_tolerance is not None
                   and fault_tolerance.resume_from is not None)
    result = run_method(run.method, scenario, rng=run_rng(run),
                        fault_tolerance=fault_tolerance,
                        profile_ops=context.spec.profile_ops,
                        **run.override_dict)
    # The run finished: its round checkpoints only matter for mid-run
    # kills, so drop them to bound grid disk usage.
    _discard_checkpoints(context)
    metrics = resolve_collector(run.collect)(run, result, scenario)
    meta = {"method_label": result.method, "resumed_from_round": resumed}
    for key in ("round_seconds", "faults", "op_profile"):
        if key in result.metadata:
            meta[key] = result.metadata[key]
    return RunOutput(metrics=metrics, meta=meta,
                     result=result if context.keep_result else None)


# ----------------------------------------------------------------------
# Fig. 5: one β probe per run, sharing a deterministic teacher.

def beta_probe_runner(run: RunSpec, context: RunContext) -> RunOutput:
    """Train the fold teacher and probe one β (paper Sec. IV-B / Fig. 5)."""
    from repro.core.trainer import TrainingConfig, train_model
    from repro.core.transfer import beta_probe
    from repro.data.folds import merge_folds, split_folds

    overrides = run.override_dict
    # A declared ``beta`` factor lands in overrides too; consume it here.
    beta = float(overrides.pop("beta", run.factor_dict.get("beta", 1.0)))
    n_folds = int(overrides.pop("n_folds", 6))
    probe_epochs = int(overrides.pop("probe_epochs", 5))
    teacher_epochs = overrides.pop("teacher_epochs", None)
    if overrides:
        raise ValueError(f"beta_probe runner got unknown overrides: "
                         f"{sorted(overrides)}")

    scenario = resolve_scenario(run.scenario, context.spec.data_seed)
    # The teacher's stream is β-free by construction: every β cell of one
    # (scenario, seed) group retrains the *same* teacher on the same fold
    # split, exactly like run_beta_sweep, yet stays parallelizable.
    teacher_rng = beta_teacher_rng(run)
    folds = split_folds(scenario.split.train, n_folds, rng=teacher_rng)
    train_folds, seen_fold, unseen_fold = folds[:-2], folds[-2], folds[-1]

    teacher = scenario.factory.build(rng=teacher_rng)
    teacher_set = merge_folds(train_folds + [seen_fold],
                              name=f"{run.grid}-teacher")
    teacher_epochs = teacher_epochs or max(2, scenario.epochs_per_model)
    config = TrainingConfig(epochs=int(teacher_epochs), lr=scenario.lr,
                            batch_size=scenario.batch_size,
                            augment=scenario.augment)
    train_model(teacher, teacher_set, config, rng=teacher_rng)

    probe = beta_probe(
        scenario.factory, scenario.split.train, beta, teacher,
        train_folds, seen_fold, unseen_fold,
        probe_epochs=probe_epochs, lr=scenario.lr,
        batch_size=scenario.batch_size, rng=run_rng(run, salt="beta-probe"))
    metrics = {
        "beta": probe.beta,
        "accuracy_seen_fold": float(probe.accuracy_seen_fold),
        "accuracy_unseen_fold": float(probe.accuracy_unseen_fold),
        "gap": float(probe.gap),
    }
    return RunOutput(metrics=metrics,
                     result=probe if context.keep_result else None)


# ----------------------------------------------------------------------
# Drift-aware serving: replay a drift schedule through the closed
# detect -> repair loop (repro.experiments.drift), one replay per cell.

#: DriftReplayConfig fields a grid cell may override.
SERVE_DRIFT_OVERRIDES = (
    "ensemble_size", "baseline_size", "pretrain_epochs", "lr",
    "batch_size", "label_delay", "max_repairs",
)


def serve_drift_runner(run: RunSpec, context: RunContext) -> RunOutput:
    """One drift replay per cell: schedule in, repair metrics out.

    The schedule comes from (in precedence order) a ``schedule``
    override/factor — a preset name or a JSON schedule payload — or the
    run's ``scenario`` when it names a preset, so drift scenarios ride
    the ordinary scenario axis of a grid.
    """
    from repro.experiments.drift import (
        DRIFT_SCHEDULES,
        DriftReplayConfig,
        run_drift_replay,
    )

    overrides = run.override_dict
    schedule = overrides.pop("schedule",
                             run.factor_dict.get("schedule", None))
    if schedule is None:
        if run.scenario not in DRIFT_SCHEDULES:
            raise ValueError(
                f"run {run.run_id} declares no drift schedule: set a "
                f"'schedule' factor or use a preset scenario name "
                f"({', '.join(sorted(DRIFT_SCHEDULES))})")
        schedule = run.scenario
    kwargs = {name: overrides.pop(name)
              for name in SERVE_DRIFT_OVERRIDES if name in overrides}
    if overrides:
        raise ValueError(f"serve_drift runner got unknown overrides: "
                         f"{sorted(overrides)}")
    result = run_drift_replay(DriftReplayConfig(schedule=schedule, **kwargs),
                              seed=run.seed)
    payload = result.to_payload()
    meta = {"schedule": payload.pop("schedule"),
            "repair_events": payload.pop("repair_events"),
            "accuracy_curve": payload.pop("accuracy_curve"),
            "detection_statistics": payload.pop("detection_statistics")}
    payload.pop("seed")
    return RunOutput(metrics=payload, meta=meta,
                     result=result if context.keep_result else None)


# ----------------------------------------------------------------------
# Serving load: one pipeline throughput/latency cell per run
# (repro.experiments.serve_load), T x batching declarable as factors.

#: LoadConfig fields a grid cell may set (as factors or overrides).
SERVING_LOAD_OVERRIDES = (
    "ensemble_size", "batching", "requests", "rows", "clients", "warmup",
    "arrival", "rate", "rate_end", "burst_period_s", "burst_duty",
    "max_batch_rows", "max_wait_ms", "workers",
    "probe_requests", "input_dim", "num_classes",
)


def serving_load_runner(run: RunSpec, context: RunContext) -> RunOutput:
    """One load-harness cell: pipeline config in, QPS/latency/parity out.

    ``ensemble_size`` and ``batching`` ride the ordinary factor axes, so
    a T × {on, off} sweep is a plain 2-factor grid; wall-clock numbers
    (QPS, percentiles) are measurements, not reproducible aggregates —
    only ``parity_ok`` is a deterministic bit.
    """
    from repro.experiments.serve_load import LoadConfig, run_serve_load

    kwargs = {}
    overrides = run.override_dict
    for name in SERVING_LOAD_OVERRIDES:
        if name in overrides:
            kwargs[name] = overrides.pop(name)
        elif name in run.factor_dict:
            kwargs[name] = run.factor_dict[name]
    if overrides:
        raise ValueError(f"serving_load runner got unknown overrides: "
                         f"{sorted(overrides)}")
    result = run_serve_load(LoadConfig(seed=run.seed, **kwargs))
    metrics = {
        "qps": result.qps,
        "latency_p50_ms": result.latency_ms["p50"],
        "latency_p95_ms": result.latency_ms["p95"],
        "latency_p99_ms": result.latency_ms["p99"],
        "mean_batch_requests": result.mean_batch_requests,
        "parity_ok": result.parity_ok,
    }
    meta = {"batching": result.batching, "arrival": result.arrival,
            "requests": result.requests,
            "batches_formed": result.batches_formed}
    if result.open_loop:
        meta["open_loop"] = result.open_loop
    return RunOutput(metrics=metrics, meta=meta,
                     result=result if context.keep_result else None)


SERVE_OVERLOAD_OVERRIDES = (
    "load_factor", "resilient", "ensemble_size", "rows", "member_seconds",
    "max_batch_rows", "max_wait_ms", "queue_depth", "target_delay_ms",
    "interval_ms", "slo_ms", "horizon_s", "input_dim", "num_classes",
)


def serve_overload_runner(run: RunSpec, context: RunContext) -> RunOutput:
    """One virtual-time overload cell: offered load in, goodput/p99 out.

    ``load_factor`` (× analytic capacity) and ``resilient`` ride the
    factor axes, so the bench's {0.5×, 1×, 2×} × {resilient, baseline}
    grid is a plain 2-factor sweep.  Fully deterministic: the cell runs
    on a manual clock, so every metric is a reproducible bit pattern.
    """
    from repro.experiments.serve_overload import (
        OverloadConfig,
        analytic_capacity,
        run_overload_cell,
    )

    merged = {**run.factor_dict, **run.override_dict}
    factor = float(merged.pop("load_factor", 1.0))
    resilient = bool(merged.pop("resilient", True))
    unknown = set(merged) - set(SERVE_OVERLOAD_OVERRIDES)
    if unknown:
        raise ValueError(f"serve_overload runner got unknown overrides: "
                         f"{sorted(unknown)}")
    config = OverloadConfig(seed=run.seed, **merged)
    cell = run_overload_cell(config, rate=factor * analytic_capacity(config),
                             resilient=resilient)
    metrics = {
        "goodput_rps": cell["goodput_rps"],
        "latency_p50_ms": cell["latency_ms"]["p50"],
        "latency_p99_ms": cell["latency_ms"]["p99"],
        "shed": cell["shed"],
        "brownout_batches": cell["brownout_batches"],
        "conserved": cell["conserved"],
    }
    meta = {"rate": cell["rate"], "resilient": cell["resilient"],
            "requests": cell["requests"], "parity": cell["parity"]}
    return RunOutput(metrics=metrics, meta=meta,
                     result=cell if context.keep_result else None)


SERVE_CHAOS_OVERRIDES = ("schedules", "events", "horizon_s", "base_rate")


def serve_chaos_runner(run: RunSpec, context: RunContext) -> RunOutput:
    """One chaos campaign: seeded schedules in, invariant verdicts out."""
    from repro.experiments.serve_chaos import ChaosConfig, run_chaos_suite

    merged = {**run.factor_dict, **run.override_dict}
    unknown = set(merged) - set(SERVE_CHAOS_OVERRIDES)
    if unknown:
        raise ValueError(f"serve_chaos runner got unknown overrides: "
                         f"{sorted(unknown)}")
    payload = run_chaos_suite(ChaosConfig(seed=run.seed, **merged))
    metrics = {
        "ok": payload["ok"],
        "schedules": payload["schedules"],
        "shed": payload["total_shed"],
        "failed": payload["total_failed"],
        "member_deaths": payload["total_member_deaths"],
    }
    meta = {"event_kinds": payload["event_kinds"],
            "failed_seeds": payload["failed_seeds"],
            "base_rate_rps": payload["base_rate_rps"]}
    return RunOutput(metrics=metrics, meta=meta,
                     result=payload if context.keep_result else None)


# ----------------------------------------------------------------------
# Beyond-paper EDDE variants (Table VI, REPRO_EXTENDED_ABLATION=1).

def _variant_runner(variant_fn) -> RunnerFn:
    def runner(run: RunSpec, context: RunContext) -> RunOutput:
        scenario = resolve_scenario(run.scenario, context.spec.data_seed)
        result = variant_fn(scenario, rng=run_rng(run), **run.override_dict)
        metrics = resolve_collector(run.collect)(run, result, scenario)
        return RunOutput(metrics=metrics,
                         meta={"method_label": result.method},
                         result=result if context.keep_result else None)
    return runner


register_runner("method", method_runner)
register_runner("beta_probe", beta_probe_runner)
register_runner("serve_drift", serve_drift_runner)
register_runner("serving_load", serving_load_runner)
register_runner("serve_overload", serve_overload_runner)
register_runner("serve_chaos", serve_chaos_runner)
register_runner("edde_cumulative_weights",
                _variant_runner(run_edde_cumulative_weights))
register_runner("edde_correlate_previous_model",
                _variant_runner(run_edde_correlate_previous_model))
