"""One-pass aggregation of a run table into the paper's tables.

The aggregator folds every completed :class:`~repro.experiments.grid.
executor.RunRecord` once, grouped by the spec's non-seed factors, and
reports ``mean ± std`` (sample std, ``ddof=1``), the standard error and
the replication count per numeric metric — the statistics behind the
paper's Tables II-VI and every "EDDE beats X" claim with error bars.

Records are sorted by run-table index before folding, so the aggregate
of an n-shard execution is *bit-identical* to the single-shard aggregate
of the same spec (asserted in ``tests/experiments/test_grid.py`` and the
CI grid-smoke job).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np


def sample_std(values: Sequence[float]) -> float:
    """Sample standard deviation (``ddof=1``); 0.0 for fewer than 2 values.

    The n=1 guard keeps single-seed grids (and ``ReplicatedResult`` with
    one seed) finite instead of warning-and-NaN-ing.
    """
    if len(values) < 2:
        return 0.0
    return float(np.std(np.asarray(values, dtype=np.float64), ddof=1))


def standard_error(values: Sequence[float]) -> float:
    """Standard error of the mean under the sample-std convention."""
    if not values:
        return float("nan")
    return sample_std(values) / math.sqrt(len(values))


def z_screen(mean_a: float, stderr_a: float,
             mean_b: float, stderr_b: float, z: float = 1.0) -> bool:
    """Whether mean ``a`` exceeds ``b`` by ``z`` combined standard errors.

    A coarse two-sample z-style screen, not a formal test — enough to
    separate 'real ordering' from single-seed noise in grid summaries.
    Callers must have a spread estimate on both sides: with n < 2 the
    stderr degenerates to 0 and any nonzero difference would pass, so
    :func:`significance_matrix` omits such pairs instead of calling this.
    """
    spread = math.hypot(stderr_a, stderr_b)
    return bool(mean_a - mean_b > z * spread)


def _numeric(value: Any) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float, np.integer, np.floating)):
        return float(value)
    return None


def aggregate_records(records: Iterable, group_by: Sequence[str],
                      metrics: Optional[Sequence[str]] = None) -> List[dict]:
    """Fold completed run records into per-group summary statistics.

    Parameters
    ----------
    records:
        ``RunRecord``-like objects (``.index``, ``.status``, ``.factors``,
        ``.metrics`` attributes, or plain dicts with the same keys).
    group_by:
        Factor names defining a group (typically every factor but
        ``seed``).
    metrics:
        Restrict to these metric names; by default every scalar metric
        observed in the records is aggregated.

    Returns a list (stable group order = first appearance in run-table
    order) of ``{"group": {...}, "n": int, "metrics": {name: {"mean",
    "std", "stderr", "n"}}}`` entries.
    """
    rows = sorted((_as_row(record) for record in records),
                  key=lambda row: row["index"])
    groups: Dict[str, dict] = {}
    order: List[str] = []
    for row in rows:
        if row["status"] != "done":
            continue
        group = {name: row["factors"].get(name) for name in group_by}
        key = repr(sorted(group.items(), key=lambda item: item[0]))
        if key not in groups:
            groups[key] = {"group": group, "n": 0, "values": {}}
            order.append(key)
        entry = groups[key]
        entry["n"] += 1
        for name, value in row["metrics"].items():
            if metrics is not None and name not in metrics:
                continue
            number = _numeric(value)
            if number is None:
                continue
            entry["values"].setdefault(name, []).append(number)

    aggregated = []
    for key in order:
        entry = groups[key]
        summary = {}
        for name in sorted(entry["values"]):
            values = entry["values"][name]
            summary[name] = {
                "mean": float(np.mean(values)),
                "std": sample_std(values),
                "stderr": standard_error(values),
                "n": len(values),
            }
        aggregated.append({"group": entry["group"], "n": entry["n"],
                           "metrics": summary})
    return aggregated


def find_group(aggregates: List[dict], **factors) -> Optional[dict]:
    """The aggregate entry whose group matches every given factor value."""
    for entry in aggregates:
        if all(entry["group"].get(name) == value
               for name, value in factors.items()):
            return entry
    return None


def significance_matrix(aggregates: List[dict], metric: str,
                        versus: str = "method", z: float = 1.0) -> List[dict]:
    """Pairwise z-screen outcomes between levels of ``versus`` per group.

    Groups are re-keyed by every group factor *except* ``versus``; within
    each, all ordered pairs of ``versus`` levels are screened on
    ``metric``.  Pairs where either side has fewer than 2 replications
    are omitted (one seed gives no spread estimate, so a z-screen would
    flag any nonzero difference).  Feeds the "significantly better"
    annotations of the grid artifact.
    """
    buckets: Dict[str, dict] = {}
    order: List[str] = []
    for entry in aggregates:
        stats = entry["metrics"].get(metric)
        level = entry["group"].get(versus)
        if stats is None or level is None:
            continue
        context = {name: value for name, value in entry["group"].items()
                   if name != versus}
        key = repr(sorted(context.items(), key=lambda item: item[0]))
        if key not in buckets:
            buckets[key] = {"context": context, "levels": {}}
            order.append(key)
        buckets[key]["levels"][level] = stats

    outcomes = []
    for key in order:
        bucket = buckets[key]
        pairs = {}
        for a, stats_a in bucket["levels"].items():
            for b, stats_b in bucket["levels"].items():
                if a == b:
                    continue
                if stats_a["n"] < 2 or stats_b["n"] < 2:
                    continue
                pairs[f"{a}>{b}"] = z_screen(
                    stats_a["mean"], stats_a["stderr"],
                    stats_b["mean"], stats_b["stderr"], z=z)
        outcomes.append({"context": bucket["context"], "metric": metric,
                         "z": z, "pairs": pairs})
    return outcomes


def _as_row(record) -> dict:
    if isinstance(record, dict):
        return {"index": int(record["index"]),
                "status": record.get("status", "done"),
                "factors": dict(record.get("factors", {})),
                "metrics": dict(record.get("metrics", {}))}
    return {"index": record.index, "status": record.status,
            "factors": dict(record.factors), "metrics": dict(record.metrics)}


def jsonable(value: Any):
    """Recursively coerce numpy scalars/arrays for ``json.dumps``."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    return value
