"""Multi-seed replication of experiments.

Every accuracy in the paper's tables is a single training run; at the
scaled-down budgets of this reproduction, single-seed differences of
±1-2 points are within noise (EXPERIMENTS.md).  These helpers repeat any
method over several seeds and aggregate mean ± standard deviation, so
claims like "EDDE beats Snapshot" can be checked with error bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.results import FitResult
from repro.experiments.protocol import Scenario
from repro.experiments.runner import run_method


@dataclass
class ReplicatedResult:
    """Aggregate of one method across seeds."""

    method: str
    accuracies: List[float] = field(default_factory=list)
    member_averages: List[float] = field(default_factory=list)
    results: List[FitResult] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def std(self) -> float:
        return float(np.std(self.accuracies))

    @property
    def stderr(self) -> float:
        return self.std / np.sqrt(max(1, len(self.accuracies)))

    def summary(self) -> str:
        return (f"{self.method}: {self.mean:.4f} ± {self.std:.4f} "
                f"(n={len(self.accuracies)})")


def run_replicated(method: str, scenario: Scenario,
                   seeds: Sequence[int] = (0, 1, 2),
                   **overrides) -> ReplicatedResult:
    """Fit ``method`` once per seed and aggregate final accuracies."""
    replicated = ReplicatedResult(method=method)
    for seed in seeds:
        result = run_method(method, scenario, rng=seed, **overrides)
        replicated.results.append(result)
        replicated.accuracies.append(result.final_accuracy)
        replicated.member_averages.append(result.average_member_accuracy())
        replicated.method = result.method
    return replicated


def compare_replicated(methods: Sequence[str], scenario: Scenario,
                       seeds: Sequence[int] = (0, 1, 2)
                       ) -> Dict[str, ReplicatedResult]:
    """Replicate several methods on one scenario (shared seed list)."""
    return {method: run_replicated(method, scenario, seeds=seeds)
            for method in methods}


def significantly_better(a: ReplicatedResult, b: ReplicatedResult,
                         z: float = 1.0) -> bool:
    """Whether ``a``'s mean exceeds ``b``'s by ``z`` combined stderrs.

    A coarse two-sample z-style screen, not a formal test — enough to
    separate 'real ordering' from single-seed noise in bench summaries.
    """
    spread = np.hypot(a.stderr, b.stderr)
    return bool(a.mean - b.mean > z * spread)
