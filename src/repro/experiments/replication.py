"""Multi-seed replication aggregates.

Every accuracy in the paper's tables is a single training run; at the
scaled-down budgets of this reproduction, single-seed differences of
±1-2 points are within noise (EXPERIMENTS.md).  :class:`ReplicatedResult`
aggregates a method's runs across seeds as mean ± standard deviation, so
claims like "EDDE beats Snapshot" can be checked with error bars.

The seed loops themselves live one layer up:
:func:`repro.experiments.grid.run_replicated` and
:func:`~repro.experiments.grid.compare_replicated` execute the runs as
declarative grids and return these aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.results import FitResult


@dataclass
class ReplicatedResult:
    """Aggregate of one method across seeds."""

    method: str
    accuracies: List[float] = field(default_factory=list)
    member_averages: List[float] = field(default_factory=list)
    results: List[FitResult] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def std(self) -> float:
        """Sample standard deviation (``ddof=1``); 0.0 for n < 2.

        The paper-style ``mean ± std`` columns estimate the spread of the
        seed population, so the sample convention applies; the guard
        keeps single-seed summaries finite instead of warning-and-NaN.
        """
        if len(self.accuracies) < 2:
            return 0.0
        return float(np.std(self.accuracies, ddof=1))

    @property
    def stderr(self) -> float:
        return self.std / np.sqrt(max(1, len(self.accuracies)))

    def summary(self) -> str:
        return (f"{self.method}: {self.mean:.4f} ± {self.std:.4f} "
                f"(n={len(self.accuracies)})")


def significantly_better(a: ReplicatedResult, b: ReplicatedResult,
                         z: float = 1.0) -> bool:
    """Whether ``a``'s mean exceeds ``b``'s by ``z`` combined stderrs.

    A coarse two-sample z-style screen, not a formal test — enough to
    separate 'real ordering' from single-seed noise in bench summaries.
    """
    spread = np.hypot(a.stderr, b.stderr)
    return bool(a.mean - b.mean > z * spread)
