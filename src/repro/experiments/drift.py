"""The drift-serving replay driver: schedule in, repair story out.

Wires the whole drift stack together — a
:class:`~repro.data.drift.DriftStream`, an ensemble pre-trained on the
stream's stationary baseline, an
:class:`~repro.serving.service.InferenceService` exposing per-member
outputs, a :class:`~repro.serving.monitor.DriftMonitor` and a
:class:`~repro.serving.repair.RepairLoop` — and replays the schedule
batch by batch under a :class:`~repro.serving.faults.ManualClock` driven
by the stream's own timestamps.  The replay is a pure function of
``(config, seed)``: same schedule + same seed → bit-identical
predictions, alarms, repairs and metrics.

The result quantifies the closed loop's three claims:

* **Detection** — first-alarm batch index and its latency behind the
  schedule's drift onset;
* **Degradation** — served accuracy before drift, under drift
  (pre-repair), and after the last accepted repair;
* **Repair cost** — wall-clock seconds per repair cycle and the
  accept/rollback audit trail.

``repro serve-drift`` turns :func:`run_drift_replay` into
``results/BENCH_drift.json``; the registered ``serve_drift`` grid runner
makes drift replays declarable grid cells (schedules are JSON payloads
or named presets, so a schedule literal is a legal factor level).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.data.drift import DriftSchedule, DriftStream
from repro.data.synthetic_images import ImageConfig
from repro.core.checkpointing import CheckpointManager
from repro.core.ensemble import Ensemble
from repro.core.trainer import TrainingConfig, train_model
from repro.models.factory import ModelFactory
from repro.models.mlp import MLP
from repro.serving.faults import ManualClock
from repro.serving.monitor import DriftMonitor, MonitorConfig
from repro.serving.repair import RepairConfig, RepairEvent, RepairLoop
from repro.serving.service import InferenceService, ServiceConfig

__all__ = [
    "DRIFT_SCHEDULES",
    "DriftReplayConfig",
    "DriftReplayResult",
    "run_drift_replay",
]

#: Named schedule presets (grid factor levels, CLI ``--schedule``).
DRIFT_SCHEDULES: Dict[str, DriftSchedule] = {
    # Tight enough for CI: detection + one repair cycle in seconds.
    "smoke": DriftSchedule.step(pre_batches=16, drift_batches=28,
                                covariate=0.85, batch_size=24),
    # The benchmark schedule: longer stationary calibration, moderate
    # drift, a drifted tail long enough to measure post-repair serving.
    "step-moderate": DriftSchedule.step(pre_batches=24, drift_batches=40,
                                        covariate=0.8, batch_size=32),
    # Covariate + label drift combined.
    "step-skewed": DriftSchedule(phases=[
        {"batches": 24},
        {"batches": 40, "covariate": 0.8, "label_skew": 1.0},
    ], batch_size=32),
}


def resolve_schedule(schedule: Union[str, dict, DriftSchedule],
                     ) -> DriftSchedule:
    """A preset name, a JSON payload, or the schedule itself."""
    if isinstance(schedule, DriftSchedule):
        return schedule
    if isinstance(schedule, str):
        if schedule not in DRIFT_SCHEDULES:
            raise ValueError(f"unknown drift schedule {schedule!r}; "
                             f"presets: {', '.join(sorted(DRIFT_SCHEDULES))}")
        return DRIFT_SCHEDULES[schedule]
    return DriftSchedule.from_payload(schedule)


@dataclass
class DriftReplayConfig:
    """Everything one drift replay needs besides the seed."""

    schedule: Union[str, dict, DriftSchedule] = "step-moderate"
    image: ImageConfig = field(default_factory=lambda: ImageConfig(
        num_classes=6, image_size=8, prototypes_per_class=2,
        noise_std=0.35, jitter=1, occlusion_prob=0.2, mix_prob=0.1,
        label_noise=0.0, name="drift-serving"))
    ensemble_size: int = 4
    baseline_size: int = 480      # stationary pre-training samples
    pretrain_epochs: int = 6
    lr: float = 0.05
    batch_size: int = 32
    hidden: tuple = (48,)
    label_delay: int = 0          # batches until a batch's labels arrive
    max_repairs: int = 2
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    repair: RepairConfig = field(default_factory=lambda: RepairConfig(
        min_buffer_batches=8, train_epochs=6, lr=0.05))
    checkpoint_dir: Optional[str] = None


@dataclass
class DriftReplayResult:
    """The replay's full story, JSON-able for benchmarks and grids."""

    schedule: dict
    seed: int
    drift_onset: Optional[int]
    detection_batch: Optional[int]
    detection_latency: Optional[int]       # batches past the onset
    detection_statistics: List[str]
    pre_drift_accuracy: Optional[float]
    drifted_accuracy: Optional[float]      # drift onset -> first repair
    post_repair_accuracy: Optional[float]  # after the last accepted swap
    final_alpha_mass: float
    member_swaps: int
    repair_events: List[RepairEvent]
    accuracy_curve: List[float]
    repair_wall_seconds: float

    @property
    def recovered(self) -> Optional[float]:
        """Post-repair accuracy gain over the drifted trough."""
        if self.post_repair_accuracy is None or \
                self.drifted_accuracy is None:
            return None
        return self.post_repair_accuracy - self.drifted_accuracy

    def to_payload(self) -> dict:
        events = []
        for event in self.repair_events:
            events.append({
                "outcome": event.outcome,
                "reason": event.reason,
                "worst_member": event.worst_member,
                "teacher_member": event.teacher_member,
                "beta": event.beta,
                "pre_accuracy": event.pre_accuracy,
                "candidate_accuracy": event.candidate_accuracy,
                "post_accuracy": event.post_accuracy,
                "wall_seconds": event.wall_seconds,
                "checkpoint": event.checkpoint,
            })
        return {
            "schedule": self.schedule,
            "seed": self.seed,
            "drift_onset": self.drift_onset,
            "detection_batch": self.detection_batch,
            "detection_latency": self.detection_latency,
            "detection_statistics": self.detection_statistics,
            "pre_drift_accuracy": self.pre_drift_accuracy,
            "drifted_accuracy": self.drifted_accuracy,
            "post_repair_accuracy": self.post_repair_accuracy,
            "recovered": self.recovered,
            "final_alpha_mass": self.final_alpha_mass,
            "member_swaps": self.member_swaps,
            "repair_events": events,
            "accuracy_curve": self.accuracy_curve,
            "repair_wall_seconds": self.repair_wall_seconds,
        }


def _mean(values: List[float]) -> Optional[float]:
    return float(np.mean(values)) if values else None


def run_drift_replay(config: Optional[DriftReplayConfig] = None,
                     seed: int = 0) -> DriftReplayResult:
    """Replay ``config.schedule`` through the full detect→repair loop."""
    config = config or DriftReplayConfig()
    schedule = resolve_schedule(config.schedule)
    # Independent named streams: the stream's draws must not depend on
    # how many members we pre-train, nor training on the schedule shape.
    entropy = np.random.SeedSequence([0x00D21F7, int(seed) & 0xFFFFFFFF])
    stream_seq, train_seq, repair_seq = entropy.spawn(3)
    stream = DriftStream(config.image, schedule,
                         rng=np.random.default_rng(stream_seq))
    baseline = stream.baseline_dataset(config.baseline_size)

    image = config.image
    factory = ModelFactory(
        MLP, input_dim=image.channels * image.image_size * image.image_size,
        num_classes=image.num_classes, hidden=tuple(config.hidden))

    train_rng = np.random.default_rng(train_seq)
    ensemble = Ensemble()
    training = TrainingConfig(epochs=config.pretrain_epochs, lr=config.lr,
                              batch_size=config.batch_size,
                              schedule="constant")
    for _ in range(config.ensemble_size):
        model = factory.build(rng=train_rng)
        train_model(model, baseline, training, rng=train_rng)
        ensemble.add(model, alpha=1.0)

    clock = ManualClock()
    service = InferenceService(ensemble, config=ServiceConfig(
        expose_member_probs=True, clock=clock,
        batch_size=max(config.batch_size, schedule.batch_size)))
    monitor = DriftMonitor(config.monitor, clock=clock)
    checkpoints = CheckpointManager(config.checkpoint_dir) \
        if config.checkpoint_dir else None
    loop = RepairLoop(service, monitor, factory, config=config.repair,
                      rng=np.random.default_rng(repair_seq),
                      checkpoints=checkpoints)

    onset = schedule.drift_onset()
    detection_batch = None
    detection_statistics: List[str] = []
    first_repair_batch = None
    last_repair_batch = None
    curve: List[float] = []
    pending = deque()
    for batch in stream:
        clock.advance(batch.timestamp - clock())
        prediction = service.predict(batch.x)
        curve.append(float((prediction.labels == batch.y).mean()))
        pending.append((prediction, batch))
        if len(pending) <= config.label_delay:
            continue
        seen, labelled = pending.popleft()
        monitor.observe(seen, labels=labelled.y,
                        timestamp=labelled.timestamp)
        loop.buffer.append(labelled.x, labelled.y)
        if detection_batch is None and monitor.first_alarm is not None:
            detection_batch = labelled.index
            detection_statistics = sorted(
                name for name, on in monitor.first_alarm.alarms.items()
                if on)
        if loop.repairs >= config.max_repairs:
            continue
        event = loop.maybe_repair()
        if event is not None and event.outcome == "repaired":
            if first_repair_batch is None:
                first_repair_batch = batch.index
            last_repair_batch = batch.index

    pre = curve[:onset] if onset is not None else curve
    drift_end = first_repair_batch if first_repair_batch is not None \
        else len(curve)
    drifted = curve[onset:drift_end] if onset is not None else []
    post = curve[last_repair_batch + 1:] \
        if last_repair_batch is not None else []
    return DriftReplayResult(
        schedule=schedule.to_payload(),
        seed=int(seed),
        drift_onset=onset,
        detection_batch=detection_batch,
        detection_latency=None if detection_batch is None or onset is None
        else max(0, detection_batch - onset),
        detection_statistics=detection_statistics,
        pre_drift_accuracy=_mean(pre),
        drifted_accuracy=_mean(drifted),
        post_repair_accuracy=_mean(post),
        final_alpha_mass=service.health().effective_alpha_mass,
        member_swaps=service.health().member_swaps,
        repair_events=loop.events,
        accuracy_curve=curve,
        repair_wall_seconds=float(sum(event.wall_seconds
                                      for event in loop.events)),
    )
