"""Beyond-paper EDDE variants used by the extended ablation bench.

DESIGN.md Sec. 5 flags two design choices of Algorithm 1 worth ablating:

* Eq. 14 restarts the weight update from the *initial* uniform weights
  ``W₁`` every round.  :func:`run_edde_cumulative_weights` compounds from
  ``W_{t-1}`` instead, like classic AdaBoost.
* Eq. 10 negatively correlates against the *ensemble* soft target
  ``H_{t-1}``.  :func:`run_edde_correlate_previous_model` correlates
  against only the previous base model ``h_{t-1}``.
"""

from __future__ import annotations

from repro.core import EDDETrainer
from repro.core.results import FitResult
from repro.experiments.protocol import Scenario
from repro.utils.rng import RngLike


def run_edde_cumulative_weights(scenario: Scenario, rng: RngLike = 0,
                                **overrides) -> FitResult:
    """EDDE with AdaBoost-style compounding sample weights."""
    from repro.experiments.runner import make_edde_config

    config = make_edde_config(scenario, **overrides)
    config.update_weights_from_initial = False
    result = EDDETrainer(scenario.factory, config).fit(
        scenario.split.train, scenario.split.test, rng=rng)
    result.method = "EDDE (weights from W_{t-1})"
    return result


def run_edde_correlate_previous_model(scenario: Scenario, rng: RngLike = 0,
                                      **overrides) -> FitResult:
    """EDDE whose diversity term pushes away from h_{t-1} instead of H_{t-1}."""
    from repro.experiments.runner import make_edde_config

    config = make_edde_config(scenario, **overrides)
    config.correlate_target = "previous"
    result = EDDETrainer(scenario.factory, config).fit(
        scenario.split.train, scenario.split.test, rng=rng)
    result.method = "EDDE (correlate h_{t-1} only)"
    return result
