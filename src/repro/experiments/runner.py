"""Experiment runners: one function per paper table/figure.

Each runner takes a :class:`~repro.experiments.protocol.Scenario` plus an
RNG seed and returns plain data structures that the corresponding
``benchmarks/bench_*.py`` renders.  Keeping the runners inside the library
(rather than in the benches) makes them importable from user code and from
the test-suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.bias_variance import BiasVariance, zero_one_decomposition
from repro.analysis.similarity import ensemble_div_h, ensemble_similarity_matrix
from repro.baselines import (
    AdaBoostM1,
    AdaBoostNC,
    AdaBoostNCConfig,
    BANs,
    BANsConfig,
    Bagging,
    BaselineConfig,
    NCLConfig,
    NegativeCorrelationLearning,
    SingleModel,
    SnapshotConfig,
    SnapshotEnsemble,
)
from repro.core import EDDEConfig, EDDETrainer
from repro.core.checkpointing import (
    CheckpointManager,
    FaultTolerance,
    RetryPolicy,
)
from repro.core.results import FitResult
from repro.core.transfer import BetaProbeResult, beta_probe
from repro.data.folds import merge_folds, split_folds
from repro.core.trainer import TrainingConfig, train_model
from repro.experiments.protocol import Scenario
from repro.utils.rng import RngLike, new_rng, spawn_rng

ALL_METHODS = ("single", "bans", "bagging", "adaboost_m1", "adaboost_nc",
               "snapshot", "edde")


def _baseline_config(scenario: Scenario, cls=BaselineConfig, **overrides):
    config = cls(
        num_models=scenario.ensemble_size,
        epochs_per_model=scenario.epochs_per_model,
        lr=scenario.lr,
        batch_size=scenario.batch_size,
        weight_decay=scenario.weight_decay,
        augment=scenario.augment,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def make_edde_config(scenario: Scenario, budget: Optional[int] = None,
                     **overrides) -> EDDEConfig:
    """EDDE configuration matching the scenario's protocol.

    On NLP scenarios the paper gives EDDE only *half* the group budget
    (Table III) — honoured via the scenario's ``edde_half_budget`` note.
    """
    budget = budget or scenario.total_budget
    if scenario.notes.get("edde_half_budget"):
        budget = max(scenario.edde_first_epochs, budget // 2)
    config = EDDEConfig(
        num_models=scenario.edde_num_models(budget),
        gamma=scenario.gamma,
        beta=scenario.beta,
        first_epochs=scenario.edde_first_epochs,
        later_epochs=scenario.edde_later_epochs,
        lr=scenario.lr,
        batch_size=scenario.batch_size,
        weight_decay=scenario.weight_decay,
        augment=scenario.augment,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def make_fault_tolerance(scenario: Scenario,
                         checkpoint_dir=None,
                         resume: bool = False,
                         keep_last: int = 3,
                         max_retries: Optional[int] = None,
                         retry_lr_decay: float = 0.5) -> FaultTolerance:
    """Build the fault-tolerance bundle a ``fit`` call expects.

    ``checkpoint_dir`` enables per-round checkpoints (retaining the last
    ``keep_last``); ``resume=True`` additionally loads the latest round
    from that directory (raising
    :class:`~repro.core.checkpointing.CheckpointError` when it is missing
    or corrupt); ``max_retries`` enables divergence recovery.
    """
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires a checkpoint_dir")
    manager = None
    state = None
    if checkpoint_dir is not None:
        manager = CheckpointManager(checkpoint_dir, keep_last=keep_last)
        if resume:
            state = manager.load(scenario.factory)
    retry = None
    if max_retries is not None:
        retry = RetryPolicy(max_retries=max_retries, lr_decay=retry_lr_decay)
    return FaultTolerance(checkpoint=manager, resume_from=state, retry=retry)


def run_method(method: str, scenario: Scenario, rng: RngLike = 0,
               callbacks: Optional[Sequence] = None,
               fault_tolerance: Optional[FaultTolerance] = None,
               checkpoint_dir=None, resume: bool = False,
               keep_last: int = 3, max_retries: Optional[int] = None,
               profile_ops: bool = False,
               **overrides) -> FitResult:
    """Fit one method on a scenario; ``overrides`` adjust its config.

    ``callbacks`` are extra :class:`~repro.core.callbacks.Callback`
    instances forwarded to the method's
    :class:`~repro.core.engine.EnsembleEngine` — every method runs through
    the same engine, so the same callbacks work across all of them.  The
    same holds for fault tolerance: pass a prebuilt
    :class:`~repro.core.checkpointing.FaultTolerance`, or let the
    convenience keywords (``checkpoint_dir``/``resume``/``keep_last``/
    ``max_retries``) build one via :func:`make_fault_tolerance`.

    ``profile_ops=True`` wraps the whole fit in the op profiler
    (:func:`repro.ops.profile_ops`) and stores the per-op summary in
    ``result.metadata["op_profile"]``.
    """
    if fault_tolerance is None:
        fault_tolerance = make_fault_tolerance(
            scenario, checkpoint_dir=checkpoint_dir, resume=resume,
            keep_last=keep_last, max_retries=max_retries)
    rng = new_rng(rng)
    train, test = scenario.split.train, scenario.split.test

    def dispatch() -> FitResult:
        if method == "edde":
            config = make_edde_config(scenario, **overrides)
            return EDDETrainer(scenario.factory, config).fit(
                train, test, rng=rng, callbacks=callbacks,
                fault_tolerance=fault_tolerance)
        if method == "ncl":
            config = _baseline_config(scenario, cls=NCLConfig, **overrides)
            return NegativeCorrelationLearning(scenario.factory, config).fit(
                train, test, rng=rng, callbacks=callbacks,
                fault_tolerance=fault_tolerance)
        baseline_classes = {
            "single": (SingleModel, BaselineConfig),
            "bagging": (Bagging, BaselineConfig),
            "adaboost_m1": (AdaBoostM1, BaselineConfig),
            "adaboost_nc": (AdaBoostNC, AdaBoostNCConfig),
            "snapshot": (SnapshotEnsemble, SnapshotConfig),
            "bans": (BANs, BANsConfig),
        }
        if method not in baseline_classes:
            raise ValueError(
                f"unknown method '{method}'; known: {ALL_METHODS + ('ncl',)}")
        method_cls, config_cls = baseline_classes[method]
        config = _baseline_config(scenario, cls=config_cls, **overrides)
        return method_cls(scenario.factory, config).fit(
            train, test, rng=rng, callbacks=callbacks,
            fault_tolerance=fault_tolerance)

    if not profile_ops:
        return dispatch()
    from repro.ops import profile_ops as _profile_ops

    with _profile_ops() as profiler:
        result = dispatch()
    result.metadata["op_profile"] = profiler.summary()
    return result


def run_effectiveness(scenario: Scenario,
                      methods: Sequence[str] = ALL_METHODS,
                      rng: RngLike = 0) -> Dict[str, FitResult]:
    """Tables II/III: every method at the scenario's equal budget."""
    rng = new_rng(rng)
    return {method: run_method(method, scenario, rng=spawn_rng(rng))
            for method in methods}


def run_diversity_analysis(scenario: Scenario, num_models: int = 8,
                           rng: RngLike = 0) -> Dict[str, dict]:
    """Table IV + Fig. 8: Snapshot vs EDDE vs AdaBoost.NC diversity.

    The paper gives Snapshot and AdaBoost.NC a *larger* epoch budget (400)
    than EDDE (250); the same ratio is kept here by letting EDDE's shorter
    later cycles reduce its total.
    """
    rng = new_rng(rng)
    test = scenario.split.test
    outputs: Dict[str, dict] = {}

    plans = {
        "Snapshot Ensemble": ("snapshot", {"num_models": num_models}),
        "EDDE": ("edde", {"num_models": num_models}),
        "AdaBoost.NC": ("adaboost_nc", {"num_models": num_models}),
    }
    for label, (method, overrides) in plans.items():
        result = run_method(method, scenario, rng=spawn_rng(rng), **overrides)
        matrix = ensemble_similarity_matrix(result.ensemble, test.x,
                                            max_models=num_models)
        outputs[label] = {
            "result": result,
            "similarity_matrix": matrix,
            "diversity": ensemble_div_h(result.ensemble, test.x,
                                        max_models=num_models),
            "average_accuracy": result.average_member_accuracy(),
            "ensemble_accuracy": result.final_accuracy,
            "increased_accuracy": result.increased_accuracy(),
            "training_epochs": result.total_epochs,
        }
    return outputs


def run_gamma_sweep(scenario: Scenario,
                    gammas: Sequence[float] = (0.0, 0.1, 0.3, 0.5, 1.0),
                    rng: RngLike = 0) -> Dict[float, FitResult]:
    """Table V: ensemble accuracy as γ varies."""
    rng = new_rng(rng)
    seeds = [spawn_rng(rng) for _ in gammas]
    return {gamma: run_method("edde", scenario, rng=seed, gamma=gamma)
            for gamma, seed in zip(gammas, seeds)}


def run_ablation(scenario: Scenario, rng: RngLike = 0,
                 extended: bool = False) -> Dict[str, dict]:
    """Table VI: EDDE vs its ablated variants.

    ``extended=True`` adds two beyond-paper ablations flagged in DESIGN.md:
    compounding weight updates from ``W_{t-1}`` and negative correlation
    against only the previous *model* instead of the ensemble.
    """
    rng = new_rng(rng)
    test = scenario.split.test

    variants = {
        "EDDE": {},
        "EDDE (normal loss)": {"gamma": 0.0},
        "EDDE (transfer all)": {"beta": 1.0},
        "EDDE (transfer none)": {"beta": 0.0},
    }
    outputs: Dict[str, dict] = {}
    for label, overrides in variants.items():
        result = run_method("edde", scenario, rng=spawn_rng(rng), **overrides)
        outputs[label] = _diversity_summary(result, test)

    # AdaBoost.NC with full-weight transfer, at the paper's 2x budget ratio.
    nc_result = run_method("adaboost_nc", scenario, rng=spawn_rng(rng),
                           transfer=True)
    outputs["AdaBoost.NC (transfer)"] = _diversity_summary(nc_result, test)

    if extended:
        from repro.experiments.variants import (
            run_edde_correlate_previous_model,
            run_edde_cumulative_weights,
        )
        cumulative = run_edde_cumulative_weights(scenario, rng=spawn_rng(rng))
        outputs["EDDE (weights from W_{t-1})"] = _diversity_summary(cumulative, test)
        prev_only = run_edde_correlate_previous_model(scenario, rng=spawn_rng(rng))
        outputs["EDDE (correlate h_{t-1} only)"] = _diversity_summary(prev_only, test)
    return outputs


def _diversity_summary(result: FitResult, test) -> dict:
    diversity = float("nan")
    if len(result.ensemble) >= 2:
        diversity = ensemble_div_h(result.ensemble, test.x)
    return {
        "result": result,
        "ensemble_accuracy": result.final_accuracy,
        "diversity": diversity,
        "average_accuracy": result.average_member_accuracy(),
    }


def run_bias_variance(scenario: Scenario,
                      methods: Sequence[str] = ("bans", "adaboost_nc",
                                                "snapshot", "edde"),
                      rng: RngLike = 0) -> List[BiasVariance]:
    """Fig. 1: per-method bias/variance of base models at equal budget."""
    rng = new_rng(rng)
    test = scenario.split.test
    points = []
    for method in methods:
        result = run_method(method, scenario, rng=spawn_rng(rng))
        member_probs = result.ensemble.member_probs(test.x)
        if len(member_probs) < 2:
            continue
        point = zero_one_decomposition(member_probs, test.y,
                                       method=result.method)
        points.append(point)
    return points


def run_beta_sweep(scenario: Scenario,
                   betas: Sequence[float] = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4),
                   n_folds: int = 6,
                   probe_epochs: int = 5,
                   teacher_epochs: Optional[int] = None,
                   rng: RngLike = 0) -> List[BetaProbeResult]:
    """Fig. 5: student accuracy on the teacher-seen vs unseen fold per β."""
    rng = new_rng(rng)
    folds = split_folds(scenario.split.train, n_folds, rng=rng)
    train_folds, seen_fold, unseen_fold = folds[:-2], folds[-2], folds[-1]

    teacher = scenario.factory.build(rng=rng)
    teacher_set = merge_folds(train_folds + [seen_fold], name="fig5-teacher")
    teacher_epochs = teacher_epochs or max(2, scenario.epochs_per_model)
    config = TrainingConfig(epochs=teacher_epochs, lr=scenario.lr,
                            batch_size=scenario.batch_size,
                            augment=scenario.augment)
    train_model(teacher, teacher_set, config, rng=rng)

    probes = []
    for beta in betas:
        probes.append(beta_probe(
            scenario.factory, scenario.split.train, beta, teacher,
            train_folds, seen_fold, unseen_fold,
            probe_epochs=probe_epochs, lr=scenario.lr,
            batch_size=scenario.batch_size, rng=spawn_rng(rng),
        ))
    return probes
