"""Per-table/figure experiment protocols and runners."""

from repro.experiments.protocol import Scenario, build_scenario, scale
from repro.experiments.runner import (
    ALL_METHODS,
    make_edde_config,
    run_ablation,
    run_beta_sweep,
    run_bias_variance,
    run_diversity_analysis,
    run_effectiveness,
    run_gamma_sweep,
    run_method,
)
from repro.experiments.variants import (
    run_edde_correlate_previous_model,
    run_edde_cumulative_weights,
)
from repro.experiments.replication import (
    ReplicatedResult,
    significantly_better,
)

# run_replicated / compare_replicated moved up a layer: they are thin
# grids now — import them from repro.experiments.grid.

__all__ = [
    "Scenario",
    "build_scenario",
    "scale",
    "ALL_METHODS",
    "run_method",
    "make_edde_config",
    "run_effectiveness",
    "run_diversity_analysis",
    "run_gamma_sweep",
    "run_ablation",
    "run_bias_variance",
    "run_beta_sweep",
    "run_edde_cumulative_weights",
    "run_edde_correlate_previous_model",
    "ReplicatedResult",
    "significantly_better",
]
