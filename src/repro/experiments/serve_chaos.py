"""The chaos suite: seeded fault schedules replayed against the pipeline.

Overload benches measure *performance* under stress; this harness checks
*correctness* under compound failure.  Each run draws a
:class:`~repro.serving.faults.ChaosSchedule` — arrival-rate storms, pump
stalls, slow-member bursts, executor-task deaths — from one seeded RNG
and replays it in virtual time through the same
:func:`~repro.experiments.serve_overload.replay` mechanics the overload
suite uses, with admission control and brownout armed.  A (config, seed)
pair therefore names the entire run: every storm arrival, every shed,
every breaker transition, bit for bit.

What each replay asserts (the *invariants*, not point predictions):

* **No deadlock** — every admitted ticket resolves (completed or
  failed); the pipeline's ``pending`` count drains to zero.
* **No torn batch** — every completed answer has exactly its request's
  row count and the service's class count; a batch is never split
  mid-request, whatever died while it was forming.
* **Conservation** — the overload ledger balances:
  ``submitted = admitted + shed`` and
  ``admitted = completed + failed``.  Shedding happens only at the
  front door, so chaos can refuse work but never lose it.
* **Fault containment** — injected task deaths
  (:class:`~repro.serving.faults.InjectedThreadDeath`, a
  ``BaseException``) surface as member skips and breaker charges, never
  as an unresolved ticket.

``repro serve-chaos`` and the CI ``chaos-smoke`` job run
:func:`run_chaos_suite` over many seeds; the acceptance bar is 100
consecutive schedules with every invariant green.

With ``lock_sanitizer=True`` (``repro serve-chaos --lock-sanitizer``)
every schedule additionally replays inside
:func:`repro.concurrency.lock_order_mode`: the pipeline is *constructed*
under the mode, so its locks become rank-checked proxies and the seeded
schedules double as a race/deadlock detector — any acquisition against
the declared order surfaces as a ``lock_order`` invariant failure naming
both locks and the thread, instead of a once-in-a-blue-moon hang.  The
sanitizer never blocks or reorders anything, so a sanitized replay's
ledger is bit-identical to an unsanitized one (the test suite asserts
exactly that).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.concurrency import LockOrderError, lock_order_mode
from repro.experiments.serve_overload import (
    OverloadConfig,
    _payloads,
    _pipeline,
    analytic_capacity,
    build_overload_service,
    replay,
)
from repro.serving.faults import (
    BurstySlowMember,
    ChaosSchedule,
    DyingMember,
    ManualClock,
)
from repro.serving.pressure import PressureConfig

__all__ = [
    "ChaosConfig",
    "chaos_arrivals",
    "run_chaos_schedule",
    "run_chaos_suite",
]


@dataclass
class ChaosConfig:
    """One chaos campaign: the service model plus the disturbance draw."""

    #: The virtual-time service/pipeline model (smaller than the
    #: overload bench's: chaos runs many schedules).
    service: OverloadConfig = field(default_factory=lambda: OverloadConfig(
        ensemble_size=5, input_dim=12, num_classes=6, hidden=(16,),
        rows=4, member_seconds=0.002, max_batch_rows=16, max_wait_ms=2.0,
        queue_depth=32, target_delay_ms=20.0, interval_ms=50.0,
        pressure=PressureConfig(target_delay_ms=20.0, levels=2,
                                min_members=2, enter_pressure=1.0,
                                exit_pressure=0.4, sustain=2)))
    #: Baseline arrival rate; ``None`` → 75% of analytic capacity, so
    #: storms (2–6× multipliers) push decisively past saturation.
    base_rate: Optional[float] = None
    horizon_s: float = 2.0         # arrival window per schedule
    events: int = 5                # disturbances drawn per schedule
    schedules: int = 10            # seeds replayed by the suite
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ValueError(
                f"horizon_s must be positive, got {self.horizon_s}")
        if self.events < 0 or self.schedules < 1:
            raise ValueError("need events >= 0 and schedules >= 1")

    def rate(self) -> float:
        if self.base_rate is not None:
            return float(self.base_rate)
        return 0.75 * analytic_capacity(self.service)


# ----------------------------------------------------------------------
def chaos_arrivals(config: ChaosConfig, schedule: ChaosSchedule,
                   rng: np.random.Generator) -> np.ndarray:
    """Storm-modulated Poisson arrivals over ``[0, horizon_s)``.

    Each inter-arrival gap is drawn at the instantaneous rate (base ×
    the stacked storm multipliers at the current instant) — the same
    per-gap construction as the load harness's ramp profile, so storms
    genuinely multiply traffic inside their windows and nowhere else.
    """
    base = config.rate()
    times: List[float] = []
    now = 0.0
    while True:
        rate = base * schedule.rate_multiplier(now)
        now += float(rng.exponential(1.0 / rate))
        if now >= config.horizon_s:
            return np.asarray(times, dtype=np.float64)
        times.append(now)


def _apply_schedule(service, schedule: ChaosSchedule,
                    clock: ManualClock) -> None:
    """Wrap live members per the schedule's slow/death windows."""
    for event in schedule.of_kind("slow"):
        member = service.members[event.member]
        member.model = BurstySlowMember(
            member.model, event.magnitude,
            windows=[(event.start, event.end)], clock=clock)
    for event in schedule.of_kind("death"):
        member = service.members[event.member]
        member.model = DyingMember(
            member.model, windows=[(event.start, event.end)], clock=clock)


def _unstall(schedule: ChaosSchedule):
    """Map a pump-due time to the earliest instant no stall covers it."""
    stalls = schedule.of_kind("stall")

    def shift(t: float) -> float:
        moved = True
        while moved:
            moved = False
            for event in stalls:
                if event.start <= t < event.end:
                    t = event.end
                    moved = True
        return t

    return shift


# ----------------------------------------------------------------------
def run_chaos_schedule(config: ChaosConfig, seed: int,
                       lock_sanitizer: bool = False) -> Dict:
    """Draw one schedule from ``seed``, replay it, check every invariant.

    ``lock_sanitizer=True`` builds and replays the pipeline inside
    :func:`~repro.concurrency.lock_order_mode`; a
    :class:`~repro.concurrency.LockOrderError` anywhere in the replay
    fails the run's ``lock_order`` invariant (instead of deadlocking).
    """
    rng = np.random.default_rng(
        np.random.SeedSequence([0xC4A05, int(config.seed), int(seed)]))
    schedule = ChaosSchedule.draw(rng, horizon=config.horizon_s,
                                  members=config.service.ensemble_size,
                                  events=config.events)
    clock = ManualClock()
    lock_order_failure: Optional[str] = None
    with lock_order_mode(lock_sanitizer):
        service = build_overload_service(config.service, clock)
        _apply_schedule(service, schedule, clock)
        pipeline = _pipeline(config.service, service, resilient=True)
        arrivals = chaos_arrivals(config, schedule, rng)
        payloads = _payloads(config.service, len(arrivals), rng)
        try:
            record = replay(pipeline, clock, arrivals, payloads,
                            unstall=_unstall(schedule))
        except LockOrderError as violation:
            lock_order_failure = str(violation)
            record = None
        stats = pipeline.stats()
        pipeline.close()

    if record is None:
        return {
            "seed": int(seed),
            "events": [asdict(event) for event in schedule.events],
            "arrivals": int(len(arrivals)),
            "submitted": stats.submitted, "admitted": stats.admitted,
            "shed": stats.shed, "completed": stats.completed,
            "failed": stats.failed,
            "member_deaths": 0, "brownout_batches": 0,
            "invariants": {"lock_order": False},
            "lock_order_error": lock_order_failure,
            "ok": False,
        }

    completed = record.completed()
    shape = (config.service.rows, config.service.num_classes)
    deaths = sum(getattr(member.model, "deaths", 0)
                 for member in service.members)
    invariants = {
        "no_deadlock": stats.pending == 0 and
        all(ticket.done for _, _, ticket in record.tickets),
        "no_torn_batch": all(
            prediction.probs.shape == shape
            for _, _, prediction in completed),
        "conserved": bool(stats.conserved) and
        stats.submitted == stats.admitted + stats.shed and
        stats.admitted == stats.completed + stats.failed,
        "ledger_matches_replay":
        stats.shed == len(record.shed) and
        stats.completed == len(completed),
    }
    if lock_sanitizer:
        invariants["lock_order"] = True     # no LockOrderError escaped
    levels = [prediction.brownout_level for _, _, prediction in completed]
    return {
        "seed": int(seed),
        "events": [asdict(event) for event in schedule.events],
        "arrivals": int(len(arrivals)),
        "submitted": stats.submitted, "admitted": stats.admitted,
        "shed": stats.shed, "completed": stats.completed,
        "failed": stats.failed,
        "member_deaths": int(deaths),
        "brownout_batches": int(sum(1 for level in levels if level > 0)),
        "invariants": invariants,
        "ok": all(invariants.values()),
    }


def run_chaos_suite(config: Optional[ChaosConfig] = None,
                    lock_sanitizer: bool = False) -> Dict:
    """Replay ``config.schedules`` seeded schedules; all must hold."""
    config = config or ChaosConfig()
    runs = [run_chaos_schedule(config, seed, lock_sanitizer=lock_sanitizer)
            for seed in range(config.schedules)]
    failed = [run["seed"] for run in runs if not run["ok"]]
    kinds = {kind: sum(sum(1 for event in run["events"]
                           if event["kind"] == kind) for run in runs)
             for kind in ChaosSchedule.KINDS}
    return {
        "harness": "serve-chaos",
        "seed": int(config.seed),
        "schedules": int(config.schedules),
        "lock_sanitizer": bool(lock_sanitizer),
        "lock_order_violations": sum(
            1 for run in runs if run.get("lock_order_error")),
        "base_rate_rps": float(config.rate()),
        "event_kinds": kinds,
        "total_submitted": sum(run["submitted"] for run in runs),
        "total_shed": sum(run["shed"] for run in runs),
        "total_failed": sum(run["failed"] for run in runs),
        "total_member_deaths": sum(run["member_deaths"] for run in runs),
        "failed_seeds": failed,
        "runs": runs,
        "ok": not failed,
    }
