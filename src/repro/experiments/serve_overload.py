"""The overload suite: capacity, goodput and tail latency under saturation.

The load harness (:mod:`repro.experiments.serve_load`) measures the
pipeline *below* saturation; this suite measures what happens *at and
past* it — the regime admission control and brownout (PR 9) exist for.
Everything runs in **virtual time** on a
:class:`~repro.serving.faults.ManualClock`:

* every member is wrapped in :class:`~repro.serving.faults.SlowMember`
  with a fixed virtual service time, and the executor runs inline
  (``workers=0``), so serving a batch advances the clock by exactly
  ``live members × member_seconds`` — a deterministic single-server
  queueing model in which brownout (fewer members per batch) genuinely
  raises capacity;
* :func:`replay` drives Poisson arrivals through the pipeline with
  textbook event-list mechanics: the clock jumps to each arrival, the
  batcher is pumped at every window expiry / full-prefix instant that
  precedes it, and a submission that lands while the server is mid-batch
  is back-stamped to its true arrival time so sojourn-based admission
  sees honest queue delays.

Nothing depends on host speed: a (config, seed) pair names every batch
composition, shed decision and brownout transition bit-for-bit.

The suite itself (:func:`run_overload_suite`):

1. **Capacity** — a ramp-profile cell (:func:`arrival_times`) walks the
   offered rate through saturation; measured capacity is the completion
   rate after the first shed (the server is continuously busy from
   there on).
2. **Cells** — {0.5×, 1×, 2×} measured capacity, each served twice:
   *resilient* (admission control + brownout) vs *baseline* (neither,
   deep queue).  Per cell: goodput (completions within ``slo_ms``, per
   second of makespan), p50/p99 latency, shed/brownout counters.
3. **Acceptance** — at 2× capacity the resilient pipeline must hold
   p99 ≤ 5× the 0.5×-load p99 and goodput ≥ 80% of capacity, while the
   baseline visibly collapses (standing-queue p99, goodput through the
   floor).  ``benchmarks/bench_overload.py`` asserts these booleans and
   archives ``results/BENCH_overload.json``.
4. **Brownout parity** — a browned-out answer from the 2× cell is
   replayed through a fresh :class:`~repro.core.ensemble.Ensemble` built
   from exactly ``members_used``; the bytes must match (Eq. 16
   renormalisation is the *definition* of brownout correctness).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.ensemble import Ensemble
from repro.experiments.serve_load import (
    LoadConfig,
    arrival_times,
    build_load_service,
)
from repro.serving.errors import ServiceUnavailable
from repro.serving.faults import ManualClock, SlowMember
from repro.serving.pressure import PressureConfig
from repro.serving.service import InferenceService
from repro.serving.transport import PipelineConfig, ServingPipeline

__all__ = [
    "OverloadConfig",
    "Replay",
    "build_overload_service",
    "measure_capacity",
    "replay",
    "run_overload_cell",
    "run_overload_suite",
]


@dataclass
class OverloadConfig:
    """The overload suite's knobs: service model, traffic, resilience."""

    ensemble_size: int = 6
    input_dim: int = 16
    num_classes: int = 10
    hidden: tuple = (32,)
    rows: int = 4                  # rows per request payload
    #: Virtual seconds each member burns per forward call — the knob
    #: that fixes the model's capacity independent of host speed.
    member_seconds: float = 0.002
    max_batch_rows: int = 32
    max_wait_ms: float = 2.0
    queue_depth: int = 64
    target_delay_ms: float = 20.0  # admission-control target sojourn
    interval_ms: float = 50.0      # admission-control grace interval
    pressure: PressureConfig = field(default_factory=lambda: PressureConfig(
        target_delay_ms=20.0, levels=2, min_members=2,
        enter_pressure=1.0, exit_pressure=0.4, sustain=2))
    #: Goodput counts only completions at or under this latency.
    slo_ms: float = 200.0
    load_factors: tuple = (0.5, 1.0, 2.0)
    horizon_s: float = 3.0         # arrival window per cell
    capacity_requests: int = 512   # ramp length for the capacity probe
    seed: int = 0

    def __post_init__(self) -> None:
        if self.member_seconds <= 0:
            raise ValueError(
                f"member_seconds must be positive, got {self.member_seconds}")
        if self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {self.slo_ms}")
        if self.horizon_s <= 0:
            raise ValueError(
                f"horizon_s must be positive, got {self.horizon_s}")


# ----------------------------------------------------------------------
def _load_config(config: OverloadConfig, requests: int, arrival: str,
                 rate: float, rate_end: Optional[float] = None) -> LoadConfig:
    return LoadConfig(
        ensemble_size=config.ensemble_size, input_dim=config.input_dim,
        num_classes=config.num_classes, hidden=tuple(config.hidden),
        rows=config.rows, requests=int(requests), arrival=arrival,
        rate=float(rate), rate_end=rate_end,
        max_batch_rows=config.max_batch_rows,
        max_wait_ms=config.max_wait_ms, queue_depth=config.queue_depth,
        seed=config.seed)


def build_overload_service(config: OverloadConfig,
                           clock: ManualClock) -> InferenceService:
    """The load harness's MLP service with virtual-time member cost."""
    service = build_load_service(
        _load_config(config, 1, "open", 1.0), clock=clock)
    for member in service.members:
        member.model = SlowMember(member.model, config.member_seconds,
                                  clock=clock)
    return service


def analytic_capacity(config: OverloadConfig) -> float:
    """Requests/second a full batch of all-T members can sustain."""
    per_batch = max(config.max_batch_rows // config.rows, 1)
    service_time = config.ensemble_size * config.member_seconds
    return per_batch / service_time


# ----------------------------------------------------------------------
@dataclass
class Replay:
    """What one virtual-time replay did, ticket by ticket."""

    #: (request index, arrival time, ticket) for every admitted request.
    tickets: List[Tuple[int, float, object]]
    #: (request index, arrival time, error code, retry_after) per shed.
    shed: List[Tuple[int, float, str, Optional[float]]]

    def completed(self):
        return [(index, arrive, ticket.wait(0))
                for index, arrive, ticket in self.tickets
                if ticket.done and not ticket.failed]

    def latencies(self) -> np.ndarray:
        return np.asarray(
            [prediction.latency for _, _, prediction in self.completed()],
            dtype=np.float64)


def replay(pipeline: ServingPipeline, clock: ManualClock,
           arrivals: np.ndarray, payloads: List[np.ndarray],
           unstall: Callable[[float], float] = lambda t: t) -> Replay:
    """Drive Poisson arrivals through the pipeline in virtual time.

    Single-server event mechanics: before each arrival, every batch
    whose window has expired (or whose prefix is full) is pumped at its
    due instant — ``unstall`` may push a due time later (the chaos
    harness's pump-stall windows).  Serving advances the clock (the
    members are :class:`SlowMember`-wrapped), so a batch that runs past
    the next arrival leaves the clock there: that arrival is then
    *back-stamped* — submitted with the clock rewound to its true
    arrival time so its ``enqueued`` stamp, and every sojourn computed
    from it, matches the timeline — and the clock restored.

    The pipeline must be built on ``clock`` with ``workers=0`` and
    started with ``pump=False``.
    """
    batcher = pipeline.batcher
    window = pipeline.config.max_wait_ms / 1000.0
    max_rows = pipeline.config.max_batch_rows

    def next_due() -> Optional[float]:
        head = batcher.head_enqueued()
        if head is None:
            return None
        due = head + window
        if batcher.depth() * payload_rows >= max_rows:
            due = min(due, max(clock.now, head))   # prefix full: form now
        return unstall(due)

    payload_rows = int(len(payloads[0]))
    tickets: List[Tuple[int, float, object]] = []
    shed: List[Tuple[int, float, str, Optional[float]]] = []
    for index, (arrive, x) in enumerate(zip(arrivals, payloads)):
        arrive = float(arrive)
        while clock.now < arrive:
            due = next_due()
            if due is None or due > arrive:
                break
            clock.now = max(clock.now, due)
            batcher.pump_once()
        resume = clock.now
        clock.now = arrive
        try:
            tickets.append((index, arrive, pipeline.submit(x)))
        except ServiceUnavailable as error:
            shed.append((index, arrive,
                         getattr(error, "code", "unavailable"),
                         getattr(error, "retry_after", None)))
        clock.now = max(resume, arrive)
    while True:
        due = next_due()
        if due is None:
            break
        clock.now = max(clock.now, due)
        if not batcher.pump_once():
            break                      # defensive: nothing drained
    return Replay(tickets=tickets, shed=shed)


# ----------------------------------------------------------------------
def _pipeline(config: OverloadConfig, service: InferenceService,
              resilient: bool, brownout: Optional[bool] = None,
              ) -> ServingPipeline:
    brownout = resilient if brownout is None else brownout
    pipe = ServingPipeline(service, PipelineConfig(
        max_batch_rows=config.max_batch_rows,
        max_wait_ms=config.max_wait_ms,
        # The baseline has no backpressure story: an effectively
        # unbounded queue is what lets its latency collapse show.
        queue_depth=config.queue_depth if resilient else 1_000_000,
        workers=0, batching=True,
        target_delay_ms=config.target_delay_ms if resilient else None,
        interval_ms=config.interval_ms,
        brownout=brownout,
        pressure=config.pressure if brownout else None))
    return pipe.start(pump=False)


def _payloads(config: OverloadConfig, count: int,
              rng: np.random.Generator) -> List[np.ndarray]:
    return [rng.normal(size=(config.rows, config.input_dim))
            .astype(np.float32) for _ in range(count)]


def run_overload_cell(config: OverloadConfig, rate: float,
                      resilient: bool, requests: Optional[int] = None,
                      arrival: str = "open",
                      rate_end: Optional[float] = None,
                      brownout: Optional[bool] = None) -> Dict:
    """One virtual-time cell at ``rate`` requests/second.

    Returns the cell's measurements plus (for browned-out resilient
    cells) one ``parity`` sample: a served answer re-computed through a
    fresh sub-ensemble of exactly ``members_used`` and compared ``==``.
    """
    if requests is None:
        requests = max(int(rate * config.horizon_s), 16)
    load = _load_config(config, requests, arrival, rate, rate_end)
    rng = np.random.default_rng(
        np.random.SeedSequence([0x0E210AD, int(config.seed)]))
    clock = ManualClock()
    service = build_overload_service(config, clock)
    pipeline = _pipeline(config, service, resilient, brownout)
    arrivals = arrival_times(load, rng)
    payloads = _payloads(config, requests, rng)
    record = replay(pipeline, clock, arrivals, payloads)
    stats = pipeline.stats()
    parity = _brownout_parity(service, record, payloads)
    pipeline.close()

    completed = record.completed()
    latencies = record.latencies()
    slo = config.slo_ms / 1000.0
    makespan = max(
        [float(arrivals[-1])] +
        [arrive + prediction.latency for _, arrive, prediction in completed])
    good = int((latencies <= slo).sum()) if latencies.size else 0
    first_shed = record.shed[0][1] if record.shed else None
    levels = [prediction.brownout_level for _, _, prediction in completed]
    return {
        "rate": float(rate), "resilient": bool(resilient),
        "arrival": arrival, "requests": int(requests),
        "submitted": stats.submitted, "admitted": stats.admitted,
        "shed": stats.shed, "completed": stats.completed,
        "failed": stats.failed, "conserved": bool(stats.conserved),
        "makespan_s": float(makespan),
        "goodput_rps": float(good / makespan) if makespan > 0 else 0.0,
        "slo_violations": int(latencies.size - good),
        "latency_ms": {
            "p50": float(np.percentile(latencies, 50) * 1000)
            if latencies.size else 0.0,
            "p99": float(np.percentile(latencies, 99) * 1000)
            if latencies.size else 0.0,
            "max": float(latencies.max() * 1000) if latencies.size else 0.0,
        },
        "first_shed_at_s": first_shed,
        "brownout_batches": int(sum(1 for level in levels if level > 0)),
        "max_brownout_level": int(max(levels) if levels else 0),
        "parity": parity,
    }


def _brownout_parity(service: InferenceService, record: Replay,
                     payloads: List[np.ndarray]) -> Optional[Dict]:
    """Re-derive one browned-out answer from first principles.

    Brownout's correctness claim is that serving the healthiest K *is*
    Eq. 16 over that subset — so a fresh :class:`Ensemble` holding
    exactly ``members_used`` (roster order, same α) must reproduce the
    served probabilities byte for byte.
    """
    for index, _arrive, prediction in record.completed():
        if prediction.brownout_level <= 0:
            continue
        by_index = {member.index: member for member in service.members}
        subset = Ensemble()
        for used in prediction.members_used:
            member = by_index[used]
            subset.add(member.model, alpha=member.alpha)
        expected = subset.predict_probs(payloads[index])
        return {
            "request": int(index),
            "level": int(prediction.brownout_level),
            "members_used": [int(m) for m in prediction.members_used],
            "ok": bool(np.array_equal(expected, prediction.probs)),
        }
    return None


# ----------------------------------------------------------------------
def measure_capacity(config: OverloadConfig) -> Dict:
    """Walk a ramp through saturation; capacity = post-shed completion rate.

    The ramp sweeps 0.2×→3× the analytic capacity estimate.  From the
    first shed onward the server is continuously busy, so the completion
    rate over that span is the measured capacity; if the ramp never
    sheds (a mis-tuned model), the analytic estimate is returned and
    flagged.
    """
    guess = analytic_capacity(config)
    cell = run_overload_cell(
        config, rate=0.2 * guess, rate_end=3.0 * guess,
        requests=config.capacity_requests, arrival="ramp",
        resilient=True, brownout=False)
    measured = None
    if cell["first_shed_at_s"] is not None:
        t_sat = cell["first_shed_at_s"]
        span = cell["makespan_s"] - t_sat
        served_after = cell["completed"] * \
            max(0.0, 1.0 - t_sat / cell["makespan_s"])
        if span > 0:
            # Completions are near-uniform past saturation; the pro-rata
            # count over the busy span is exact enough for a load knob.
            measured = served_after / span
    return {
        "analytic_rps": float(guess),
        "measured_rps": float(measured if measured else guess),
        "from_ramp": measured is not None,
        "ramp_cell": cell,
    }


def run_overload_suite(config: Optional[OverloadConfig] = None) -> Dict:
    """Capacity probe + the {0.5×, 1×, 2×} × {resilient, baseline} grid.

    Returns the ``BENCH_overload.json`` payload, acceptance booleans
    included.
    """
    config = config or OverloadConfig()
    capacity = measure_capacity(config)
    rps = capacity["measured_rps"]
    cells = []
    by_key: Dict[Tuple[float, bool], Dict] = {}
    for factor in config.load_factors:
        for resilient in (True, False):
            cell = run_overload_cell(config, rate=factor * rps,
                                     resilient=resilient)
            cell["load_factor"] = float(factor)
            cells.append(cell)
            by_key[(float(factor), resilient)] = cell

    low, high = min(config.load_factors), max(config.load_factors)
    p99_low = by_key[(low, True)]["latency_ms"]["p99"]
    resilient_high = by_key[(high, True)]
    baseline_high = by_key[(high, False)]
    p99_bound = 5.0 * p99_low
    goodput_floor = 0.8 * rps
    acceptance = {
        "p99_bounded": resilient_high["latency_ms"]["p99"] <= p99_bound,
        "goodput_held": resilient_high["goodput_rps"] >= goodput_floor,
        "baseline_collapsed":
            baseline_high["latency_ms"]["p99"] > p99_bound and
            baseline_high["goodput_rps"] <
            resilient_high["goodput_rps"],
        "conserved": all(cell["conserved"] for cell in cells),
        "brownout_engaged": resilient_high["brownout_batches"] > 0,
        "brownout_parity_ok":
            resilient_high["parity"] is None or
            bool(resilient_high["parity"]["ok"]),
    }
    return {
        "harness": "serve-overload",
        "seed": int(config.seed),
        "config": asdict(config),
        "capacity": {key: value for key, value in capacity.items()
                     if key != "ramp_cell"},
        "capacity_ramp": capacity["ramp_cell"],
        "cells": cells,
        "p99_bound_ms": float(p99_bound),
        "goodput_floor_rps": float(goodput_floor),
        "acceptance": acceptance,
        "ok": all(acceptance.values()),
    }
