"""Experimental protocol: the paper's settings, scaled to CPU budgets.

Every benchmark builds a :class:`Scenario` by name ("c10-resnet",
"c100-densenet", "imdb-textcnn", ...).  A scenario bundles the synthetic
dataset, the model factory and the per-method epoch budgets, keeping the
paper's *ratios* intact:

* all multi-model baselines and Snapshot get the same total budget, split
  evenly into ``ensemble_size`` models/cycles (Sec. V-A's "methods in the
  same group are trained for 200 epochs");
* EDDE trains its first model for one Snapshot-cycle worth of epochs and
  later models for a shorter cycle, so the same budget buys more base
  models (paper: ResNet 40→30, DenseNet 50→25, TextCNN 20→10, i.e. later
  cycles are 50-75% of the first);
* the paper's γ/β defaults per architecture are preserved (γ=0.1, β=0.7
  for ResNet; γ=0.2, β=0.5 for DenseNet; TextCNN transfers embedding +
  convolutions).

``REPRO_SCALE`` (float env var, default 1) multiplies all epoch budgets,
and ``REPRO_TRAIN_SIZE``/``REPRO_TEST_SIZE`` override dataset sizes, so the
same benches scale from smoke-test to paper-scale runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.data import (
    cifar_augment,  # noqa: F401 - re-exported for Scenario users (see below)
    make_cifar10_like,
    make_cifar100_like,
    make_imdb_like,
    make_mr_like,
)
from repro.data.dataset import TrainTestSplit
from repro.models import DenseNetCIFAR, ModelFactory, ResNetCIFAR, TextCNN
from repro.models.textcnn import textcnn_conv_beta
from repro.utils.rng import RngLike


def scale() -> float:
    """Global budget multiplier from the ``REPRO_SCALE`` env var."""
    return float(os.environ.get("REPRO_SCALE", "1"))


def _scaled(epochs: int) -> int:
    return max(1, int(round(epochs * scale())))


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@dataclass
class Scenario:
    """One dataset/model pairing with its full training protocol."""

    name: str
    split: TrainTestSplit
    factory: ModelFactory
    ensemble_size: int
    epochs_per_model: int       # baselines: per model; Snapshot: per cycle
    edde_first_epochs: int
    edde_later_epochs: int
    lr: float
    batch_size: int
    gamma: float
    beta: Optional[float]
    augment: Optional[Callable] = None
    weight_decay: float = 1e-4
    notes: dict = field(default_factory=dict)

    @property
    def total_budget(self) -> int:
        return self.ensemble_size * self.epochs_per_model

    def edde_num_models(self, budget: Optional[int] = None) -> int:
        """How many EDDE rounds fit in the (same) total budget."""
        budget = budget or self.total_budget
        remaining = budget - self.edde_first_epochs
        return max(1, 1 + remaining // self.edde_later_epochs)


def _cv_split(maker, rng: RngLike, **overrides) -> TrainTestSplit:
    train_size = _env_int("REPRO_TRAIN_SIZE", 1200)
    test_size = _env_int("REPRO_TEST_SIZE", 600)
    return maker(rng=rng, train_size=train_size, test_size=test_size, **overrides)


def _nlp_split(maker, rng: RngLike) -> TrainTestSplit:
    train_size = _env_int("REPRO_TRAIN_SIZE", 1200)
    test_size = _env_int("REPRO_TEST_SIZE", 600)
    return maker(rng=rng, train_size=train_size, test_size=test_size)


def build_scenario(name: str, rng: RngLike = 0) -> Scenario:
    """Construct a named scenario.

    Names: ``{c10,c100}-{resnet,densenet}`` and ``{imdb,mr}-textcnn``.
    """
    parts = name.split("-")
    if len(parts) != 2:
        raise ValueError(f"scenario name must be '<dataset>-<model>', got '{name}'")
    dataset_name, model_name = parts

    if dataset_name in ("c10", "c100"):
        maker = make_cifar10_like if dataset_name == "c10" else make_cifar100_like
        split = _cv_split(maker, rng)
        num_classes = split.num_classes
        # No train-time augmentation at benchmark scale: with crop+flip the
        # synthetic task never saturates within CPU budgets, which hides the
        # overfitting plateau the paper's ensemble comparisons live in.
        # (Pass augment=cifar_augment(2) to a Scenario manually to restore
        # the paper's preprocessing at larger REPRO_SCALE.)
        if model_name == "resnet":
            factory = ModelFactory(ResNetCIFAR, depth=8, num_classes=num_classes,
                                   base_width=8)
            # Paper protocol: lr 0.1, gamma 0.1; EDDE's later cycles are
            # 75% of the first (40 -> 30).  The paper's beta=0.7 was tuned
            # on real CIFAR; on this synthetic substrate the adaptive
            # procedure of Sec. IV-B selects a beta that re-initialises
            # roughly the classifier head (~0.97 by parameter fraction) —
            # see bench_fig5_beta_selection.py.
            return Scenario(
                name=name, split=split, factory=factory,
                ensemble_size=5, epochs_per_model=_scaled(8),
                edde_first_epochs=_scaled(8), edde_later_epochs=_scaled(6),
                lr=0.1, batch_size=32, gamma=0.1, beta=0.97,
            )
        if model_name == "densenet":
            factory = ModelFactory(DenseNetCIFAR, depth=10, num_classes=num_classes,
                                   growth=5)
            # Paper protocol: lr 0.2, gamma 0.2; EDDE's later cycles are
            # 50% of the first (50 -> 25).  beta as for ResNet (see above).
            return Scenario(
                name=name, split=split, factory=factory,
                ensemble_size=5, epochs_per_model=_scaled(8),
                edde_first_epochs=_scaled(8), edde_later_epochs=_scaled(4),
                lr=0.2, batch_size=32, gamma=0.2, beta=0.9,
            )
        raise ValueError(f"unknown CV model '{model_name}'")

    if dataset_name in ("imdb", "mr"):
        if model_name != "textcnn":
            raise ValueError(f"NLP scenarios use 'textcnn', got '{model_name}'")
        maker = make_imdb_like if dataset_name == "imdb" else make_mr_like
        split = _nlp_split(maker, rng)
        factory = ModelFactory(TextCNN, vocab_size=split.vocab_size,
                               num_classes=2, embedding_dim=16,
                               filters_per_width=8)
        # NLP transfer: embedding + all convolutions (paper Sec. V-A).
        beta = textcnn_conv_beta(factory.build(rng=0))
        # The paper uses batches of 128 (IMDB) / 50 (MR) on 25k/10k-doc
        # corpora; at the synthetic corpus size that leaves too few SGD
        # steps per epoch, so the batch scales down with the data.
        batch_size = 32
        # Paper: 20 epochs/model baselines, EDDE 20 first / 10 later and
        # only *half* the group budget (Table III) — ratios preserved.
        return Scenario(
            name=name, split=split, factory=factory,
            ensemble_size=5, epochs_per_model=_scaled(8),
            edde_first_epochs=_scaled(8), edde_later_epochs=_scaled(4),
            lr=0.1, batch_size=batch_size, gamma=0.1, beta=beta,
            notes={"edde_half_budget": True},
        )

    raise ValueError(f"unknown dataset '{dataset_name}'")
