"""Optimizers and learning-rate schedules.

The paper trains everything with SGD + momentum.  Two schedules matter:

* :class:`StepLR` — the paper's "divide by 10 at 50% and 75% of budget".
* :class:`SnapshotCyclicLR` — cosine-annealed warm restarts (Loshchilov &
  Hutter 2017), the engine of the Snapshot Ensemble baseline.
"""

from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.schedules import (
    ConstantLR,
    CosineAnnealingLR,
    LRSchedule,
    SnapshotCyclicLR,
    StepLR,
)

__all__ = [
    "SGD",
    "Adam",
    "LRSchedule",
    "ConstantLR",
    "StepLR",
    "CosineAnnealingLR",
    "SnapshotCyclicLR",
]
