"""Learning-rate schedules.

:class:`SnapshotCyclicLR` implements the cosine-annealed warm-restart
schedule of Loshchilov & Hutter (2017) exactly as Snapshot Ensemble uses it:
within each cycle the rate decays from ``base_lr`` to ~0 on a half-cosine,
and resets at the cycle boundary — the restart is what kicks the model out
of its local minimum so the next snapshot differs.
"""

from __future__ import annotations

import math


class LRSchedule:
    """Maps an epoch index (0-based) to a learning rate."""

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    def __init__(self, lr: float):
        self.lr = lr

    def lr_at(self, epoch: int) -> float:
        return self.lr


class StepLR(LRSchedule):
    """The paper's default: divide by ``factor`` at given budget fractions.

    With ``milestones=(0.5, 0.75)`` and ``factor=10`` this is exactly the
    protocol in Sec. V-A: "divide the learning rate by 10 when the training
    is at 50% and 75% of the total training epochs".
    """

    def __init__(self, base_lr: float, total_epochs: int,
                 milestones=(0.5, 0.75), factor: float = 10.0):
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.base_lr = base_lr
        self.total_epochs = total_epochs
        self.milestones = tuple(sorted(milestones))
        self.factor = factor

    def lr_at(self, epoch: int) -> float:
        lr = self.base_lr
        for fraction in self.milestones:
            if epoch >= fraction * self.total_epochs:
                lr /= self.factor
        return lr


class CosineAnnealingLR(LRSchedule):
    """Single half-cosine decay from ``base_lr`` to ``min_lr``."""

    def __init__(self, base_lr: float, total_epochs: int, min_lr: float = 0.0):
        self.base_lr = base_lr
        self.total_epochs = max(1, total_epochs)
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs - 1) / max(1, self.total_epochs - 1) \
            if self.total_epochs > 1 else 0.0
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class SnapshotCyclicLR(LRSchedule):
    """Cosine annealing with warm restarts every ``cycle_length`` epochs.

    Equation (2) of the Snapshot Ensembles paper:
    ``lr(t) = (lr0 / 2) * (cos(pi * mod(t, C) / C) + 1)``.
    """

    def __init__(self, base_lr: float, cycle_length: int):
        if cycle_length <= 0:
            raise ValueError("cycle_length must be positive")
        self.base_lr = base_lr
        self.cycle_length = cycle_length

    def lr_at(self, epoch: int) -> float:
        position = epoch % self.cycle_length
        return (self.base_lr / 2.0) * (math.cos(math.pi * position / self.cycle_length) + 1.0)

    def is_cycle_end(self, epoch: int) -> bool:
        """True on the last epoch of a cycle (snapshot time)."""
        return (epoch + 1) % self.cycle_length == 0
