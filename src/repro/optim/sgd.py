"""SGD with momentum, Nesterov, and decoupled L2 weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Stochastic gradient descent — the paper's training protocol.

    Parameters
    ----------
    parameters:
        Trainable parameters.
    lr:
        Initial learning rate (0.1 for ResNet/TextCNN, 0.2 for DenseNet in
        the paper's protocol).
    momentum:
        Classical momentum coefficient.
    weight_decay:
        L2 penalty added to the gradient (not applied to gradients that are
        ``None``, i.e. parameters untouched this step).
    nesterov:
        Use Nesterov's lookahead variant.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float,
                 momentum: float = 0.9, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity -= self.lr * grad
                if self.nesterov:
                    param.data += self.momentum * velocity - self.lr * grad
                else:
                    param.data += velocity
            else:
                param.data -= self.lr * grad
