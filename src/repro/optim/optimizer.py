"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from repro.nn.module import Parameter


class Optimizer:
    """Holds a parameter list and applies gradient updates.

    Subclasses implement :meth:`step`; learning-rate schedules mutate
    :attr:`lr` between epochs via :meth:`set_lr`.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def set_lr(self, lr: float) -> None:
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
