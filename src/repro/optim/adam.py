"""Adam optimizer (used by some beyond-paper examples and tests)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
