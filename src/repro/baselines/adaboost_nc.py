"""AdaBoost.NC baseline (Wang, Chen & Yao, 2010).

AdaBoost.NC augments AdaBoost with an *ambiguity* penalty: samples on
which the ensemble and its members disagree get their boosting weight
modulated by a diversity term, so later models are pushed toward samples
where the ensemble is confidently unanimous-and-wrong.

The per-sample ambiguity follows the paper's Eq. 1 (correct/incorrect
coding): ``amb_t(i) = ½ Σ_{k≤t} α_k (H_i − h_{k,i})`` with signs in
{+1, −1}, normalised to [0, 1] by the total α mass.  The penalty is
``p_t(i) = 1 − |amb_t(i)|`` and the weight update is

``w_{t+1}(i) ∝ w_t(i) · p_t(i)^λ · exp(α_t · 1[h_t(x_i) ≠ y_i])``

with λ controlling the diversity pressure (the original paper sweeps λ;
2 is a common setting and our default).  Like AdaBoost.M1, each round
trains a fresh randomly-initialised network on a ``D_t`` resample; the
``transfer`` flag reproduces Table VI's "AdaBoost.NC (transfer)" variant
by initialising each new model with *all* of the previous model's weights.

The penalty needs every member's train-set outputs — they come straight
from the engine's prediction cache, so each member is still evaluated on
the training set exactly once over the whole fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineConfig, EnsembleMethod
from repro.core.callbacks import Callback
from repro.core.checkpointing import FaultTolerance
from repro.core.diversity import correctness_sign
from repro.core.engine import EnsembleEngine, RoundOutcome
from repro.core.ensemble import average_probs
from repro.core.results import FitResult
from repro.data.dataset import Dataset
from repro.data.loader import weighted_sample
from repro.nn import predict_probs
from repro.utils.rng import RngLike, new_rng, spawn_rng

_EPS = 1e-10


@dataclass
class AdaBoostNCConfig(BaselineConfig):
    """AdaBoost.NC hyperparameters: λ (diversity pressure) and transfer."""

    penalty_lambda: float = 2.0
    transfer: bool = False


class AdaBoostNC(EnsembleMethod):
    name = "AdaBoost.NC"

    def __init__(self, factory, config: Optional[AdaBoostNCConfig] = None):
        super().__init__(factory, config or AdaBoostNCConfig())

    def fit(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            rng: RngLike = None,
            callbacks: Optional[Sequence[Callback]] = None,
            fault_tolerance: Optional[FaultTolerance] = None) -> FitResult:
        fault = fault_tolerance or FaultTolerance()
        rng = new_rng(rng)
        config: AdaBoostNCConfig = self.config
        n = len(train_set)
        # Boosting weights stay float64 (multiplicative replay precision).
        state = {"weights": np.full(n, 1.0 / n, dtype=np.float64), "previous_model": None}
        if fault.resume_from is not None and fault.resume_from.round:
            saved = fault.resume_from.arrays.get("sample_weights")
            if saved is not None:
                state["weights"] = np.array(saved)
            state["previous_model"] = fault.resume_from.ensemble.models[-1]

        def round_fn(engine: EnsembleEngine, index: int) -> RoundOutcome:
            member_rng = spawn_rng(rng)
            model = self.factory.build(rng=member_rng)
            if config.transfer and state["previous_model"] is not None:
                model.load_state_dict(state["previous_model"].state_dict())
            sample = weighted_sample(train_set, state["weights"],
                                     rng=member_rng)
            logger = engine.train_member(model, sample,
                                         self.config.training_config(),
                                         rng=member_rng)

            train_probs = predict_probs(model, train_set.x)
            misclassified = train_probs.argmax(axis=1) != train_set.y
            weights = state["weights"]
            epsilon = float(np.clip(weights[misclassified].sum(),
                                    _EPS, 1 - _EPS))
            alpha = float(0.5 * np.log((1 - epsilon) / epsilon)
                          + 0.5 * np.log(train_set.num_classes - 1))
            alpha = max(alpha, 1e-3)

            # All prior members' train outputs are cached; only the new
            # member's (computed above) completes the penalty inputs.
            member_train_probs = engine.cache.member_probs_list("train") \
                + [train_probs]
            alphas = engine.cache.alphas + [alpha]
            penalty = self._penalty(member_train_probs, alphas, train_set.y)
            weights = weights * (penalty ** config.penalty_lambda) \
                * np.exp(alpha * misclassified)
            weights = np.clip(weights, _EPS, None)
            state["weights"] = weights / weights.sum()
            state["previous_model"] = model
            engine.checkpoint_extra["sample_weights"] = state["weights"]

            return RoundOutcome(model=model, alpha=alpha,
                                epochs=self.config.epochs_per_model,
                                train_accuracy=logger.last("train_accuracy"),
                                extras={"epsilon": epsilon,
                                        "mean_penalty": float(penalty.mean())},
                                precomputed={"train": train_probs})

        engine = self.engine(
            train_set, test_set, callbacks, cache_train=True,
            method=self.name if not config.transfer
            else "AdaBoost.NC (transfer)", fault_tolerance=fault)
        engine.track_rng(rng)
        return engine.run(self.config.num_models, round_fn,
                          resume_from=fault.resume_from)

    @staticmethod
    def _penalty(member_train_probs, alphas, labels) -> np.ndarray:
        """``p_t(i) = 1 − |amb_t(i)|`` from the hard correct/incorrect coding."""
        ensemble_predictions = average_probs(member_train_probs, alphas).argmax(axis=1)
        ensemble_sign = correctness_sign(ensemble_predictions, labels)
        alpha_total = float(np.sum(alphas)) + _EPS
        amb = np.zeros(len(labels), dtype=np.float64)
        for probs, alpha in zip(member_train_probs, alphas):
            member_sign = correctness_sign(probs.argmax(axis=1), labels)
            amb += alpha * (ensemble_sign - member_sign)
        amb = 0.5 * amb / alpha_total        # now in [-1, 1]
        return 1.0 - np.abs(amb)
