"""Common scaffolding for the paper's baseline ensemble methods.

All baselines share one interface: ``method.fit(train_set, test_set, rng)``
returning a :class:`~repro.core.results.FitResult`, so the benchmark
harnesses can sweep methods uniformly (Tables II/III, Fig. 7).

The round loop — member records, the running Fig. 7 curve, per-round
timing, and the member-prediction cache that keeps the curve at one model
evaluation per member — lives in :class:`~repro.core.engine.EnsembleEngine`;
:meth:`EnsembleMethod.engine` builds one wired to this baseline's config.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.callbacks import Callback
from repro.core.checkpointing import CheckpointError, FaultTolerance
from repro.core.engine import EnsembleEngine
from repro.core.results import FitResult
from repro.core.trainer import TrainingConfig
from repro.data.dataset import Dataset
from repro.models.factory import ModelFactory
from repro.utils.rng import RngLike


@dataclass
class BaselineConfig:
    """Shared hyperparameters of the baseline methods.

    ``num_models`` base models, each trained ``epochs_per_model`` epochs
    under the paper's step LR schedule (Snapshot overrides the schedule).
    """

    num_models: int = 4
    epochs_per_model: int = 10
    lr: float = 0.1
    batch_size: int = 64
    momentum: float = 0.9
    weight_decay: float = 1e-4
    schedule: str = "step"
    grad_clip: float = 5.0
    augment: Optional[Callable] = None
    verbose: bool = False

    def training_config(self, epochs: Optional[int] = None) -> TrainingConfig:
        return TrainingConfig(
            epochs=epochs or self.epochs_per_model,
            lr=self.lr,
            batch_size=self.batch_size,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            schedule=self.schedule,
            grad_clip=self.grad_clip,
            augment=self.augment,
            verbose=self.verbose,
        )

    def total_epochs(self) -> int:
        return self.num_models * self.epochs_per_model


class EnsembleMethod:
    """Abstract base: subclasses implement :meth:`fit`.

    Every ``fit`` accepts a :class:`~repro.core.checkpointing.
    FaultTolerance` bundle; the engine built by :meth:`engine` wires its
    checkpoint manager and retry policy in, so per-round checkpointing and
    divergence recovery work identically across methods.  Round-based
    methods additionally support ``fault_tolerance.resume_from``;
    continuous ones (Single Model, Snapshot, NCL) reject it via
    :meth:`reject_resume` because their state lives inside one training
    run (optimiser momentum, LR-cycle position) that per-round
    checkpoints do not capture.
    """

    name = "abstract"

    def __init__(self, factory: ModelFactory, config: BaselineConfig):
        self.factory = factory
        self.config = config

    def fit(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            rng: RngLike = None,
            callbacks: Optional[Sequence[Callback]] = None,
            fault_tolerance: Optional[FaultTolerance] = None) -> FitResult:
        raise NotImplementedError

    def engine(self, train_set: Dataset, test_set: Optional[Dataset],
               callbacks: Optional[Sequence[Callback]] = None,
               cache_train: bool = False, record_curve: bool = True,
               method: Optional[str] = None,
               fault_tolerance: Optional[FaultTolerance] = None) -> EnsembleEngine:
        """An :class:`EnsembleEngine` labelled and tuned for this method.

        ``cache_train=True`` additionally caches member outputs on the
        training set — for methods whose weight updates read them
        (the AdaBoosts, BANs' teacher targets).
        """
        fault = fault_tolerance or FaultTolerance()
        return EnsembleEngine(
            method or self.name, train_set, test_set, callbacks=callbacks,
            cache_train=cache_train, record_curve=record_curve,
            verbose=self.config.verbose,
            retry_policy=fault.retry, checkpoint=fault.checkpoint,
        )

    def reject_resume(self,
                      fault_tolerance: Optional[FaultTolerance]) -> None:
        """Fail fast when resume is requested for a continuous method."""
        if fault_tolerance is not None and fault_tolerance.resume_from is not None:
            raise CheckpointError(
                f"{self.name} trains its members inside one continuous "
                "run; checkpoint resume is not supported for it")
