"""Common scaffolding for the paper's baseline ensemble methods.

All baselines share one interface: ``method.fit(train_set, test_set, rng)``
returning a :class:`~repro.core.results.FitResult`, so the benchmark
harnesses can sweep methods uniformly (Tables II/III, Fig. 7).

:class:`IncrementalEvaluator` caches each member's softmax outputs on the
test set so the ensemble-accuracy-after-every-member curve costs one model
evaluation per member instead of re-running the whole ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.ensemble import average_probs
from repro.core.results import CurvePoint, FitResult, MemberRecord
from repro.core.trainer import TrainingConfig
from repro.data.dataset import Dataset
from repro.models.factory import ModelFactory
from repro.nn import accuracy, predict_probs
from repro.utils.rng import RngLike


@dataclass
class BaselineConfig:
    """Shared hyperparameters of the baseline methods.

    ``num_models`` base models, each trained ``epochs_per_model`` epochs
    under the paper's step LR schedule (Snapshot overrides the schedule).
    """

    num_models: int = 4
    epochs_per_model: int = 10
    lr: float = 0.1
    batch_size: int = 64
    momentum: float = 0.9
    weight_decay: float = 1e-4
    schedule: str = "step"
    grad_clip: float = 5.0
    augment: Optional[Callable] = None
    verbose: bool = False

    def training_config(self, epochs: Optional[int] = None) -> TrainingConfig:
        return TrainingConfig(
            epochs=epochs or self.epochs_per_model,
            lr=self.lr,
            batch_size=self.batch_size,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            schedule=self.schedule,
            grad_clip=self.grad_clip,
            augment=self.augment,
            verbose=self.verbose,
        )

    def total_epochs(self) -> int:
        return self.num_models * self.epochs_per_model


class IncrementalEvaluator:
    """Caches member test-set outputs for cheap running ensemble accuracy."""

    def __init__(self, test_set: Optional[Dataset]):
        self.test_set = test_set
        self.member_probs: List[np.ndarray] = []
        self.alphas: List[float] = []

    def add(self, model, alpha: float = 1.0) -> float:
        """Register a member; returns its individual test accuracy (nan if
        no test set was provided)."""
        if self.test_set is None:
            return float("nan")
        probs = predict_probs(model, self.test_set.x)
        self.member_probs.append(probs)
        self.alphas.append(alpha)
        return accuracy(probs, self.test_set.y)

    def ensemble_accuracy(self) -> float:
        if self.test_set is None or not self.member_probs:
            return float("nan")
        combined = average_probs(self.member_probs, self.alphas)
        return accuracy(combined, self.test_set.y)


class EnsembleMethod:
    """Abstract base: subclasses implement :meth:`fit`."""

    name = "abstract"

    def __init__(self, factory: ModelFactory, config: BaselineConfig):
        self.factory = factory
        self.config = config

    def fit(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            rng: RngLike = None) -> FitResult:
        raise NotImplementedError

    def _record(self, result: FitResult, evaluator: IncrementalEvaluator,
                index: int, alpha: float, epochs: int, cumulative: int,
                train_accuracy: float, test_accuracy: float,
                **extras) -> None:
        """Append member record + curve point in one step."""
        result.members.append(MemberRecord(
            index=index, alpha=alpha, epochs=epochs,
            train_accuracy=train_accuracy, test_accuracy=test_accuracy,
            extras=extras,
        ))
        ensemble_accuracy = evaluator.ensemble_accuracy()
        if not np.isnan(ensemble_accuracy):
            result.curve.append(CurvePoint(cumulative, ensemble_accuracy,
                                           len(result.members)))
