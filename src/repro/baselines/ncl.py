"""Negative Correlation Learning (Liu & Yao, 1999) — extension baseline.

NCL is the ancestor of the paper's diversity line (Sec. II-B): *all* base
networks train simultaneously, each with a penalty that negatively
correlates its output against the current ensemble mean,

    L_i = CE(y, h_i(x)) − λ · ||h_i(x) − H̄(x)||²  with  H̄ = mean_j h_j,

which is the soft-output analogue the EDDE authors adapt into their
sequential, budgeted setting.  NCL is not in the paper's result tables —
it is included here because the paper's argument ("simultaneous NCL
penalties are unfit for budgeted deep ensembles") is testable: NCL costs a
full forward pass of *every* member per step and cannot exploit knowledge
transfer.

The implementation refreshes the ensemble-mean soft target once per epoch
(a standard practical relaxation; exact per-batch means would multiply
the epoch cost by the ensemble size again).

All members finish training together, so the running per-member curve is
meaningless here; the members join the engine at the end and one final
curve point is recorded, as in the original formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineConfig, EnsembleMethod
from repro.core.callbacks import Callback
from repro.core.checkpointing import FaultTolerance
from repro.core.engine import RoundOutcome
from repro.core.losses import diversity_driven_loss
from repro.core.results import CurvePoint, FitResult
from repro.core.trainer import TrainingConfig
from repro.data.dataset import Dataset
from repro.nn import predict_probs
from repro.utils.rng import RngLike, new_rng, spawn_rng


@dataclass
class NCLConfig(BaselineConfig):
    """λ controls the strength of the negative-correlation penalty."""

    penalty_lambda: float = 0.2


class NegativeCorrelationLearning(EnsembleMethod):
    """Simultaneous NCL over ``num_models`` networks.

    ``epochs_per_model`` is interpreted as *sweeps*: in each sweep every
    member trains one epoch against the ensemble mean of the others, so
    the total epoch budget matches the other methods' accounting.
    """

    name = "NCL"

    def __init__(self, factory, config: Optional[NCLConfig] = None):
        super().__init__(factory, config or NCLConfig())

    def fit(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            rng: RngLike = None,
            callbacks: Optional[Sequence[Callback]] = None,
            fault_tolerance: Optional[FaultTolerance] = None) -> FitResult:
        self.reject_resume(fault_tolerance)
        rng = new_rng(rng)
        config: NCLConfig = self.config
        models = [self.factory.build(rng=spawn_rng(rng))
                  for _ in range(config.num_models)]
        sweeps = config.epochs_per_model

        engine = self.engine(train_set, test_set, callbacks,
                             record_curve=False,
                             fault_tolerance=fault_tolerance)
        for sweep in range(sweeps):
            # Refresh soft targets once per sweep.
            member_probs = [predict_probs(m, train_set.x) for m in models]
            mean_probs = np.mean(member_probs, axis=0)
            for index, model in enumerate(models):
                others = (mean_probs * len(models) - member_probs[index]) \
                    / max(1, len(models) - 1)
                loss_fn = self._make_loss(others, config.penalty_lambda)
                epoch_config = TrainingConfig(
                    epochs=1, lr=config.lr, batch_size=config.batch_size,
                    momentum=config.momentum,
                    weight_decay=config.weight_decay, schedule="constant",
                    augment=config.augment)
                engine.train_member(model, train_set, epoch_config,
                                    loss_fn=loss_fn, rng=spawn_rng(rng))

        for model in models:
            engine.complete_round(RoundOutcome(
                model=model, alpha=1.0, epochs=sweeps,
                train_accuracy=float("nan")))
        result = engine.finish()
        if test_set is not None:
            result.curve.append(CurvePoint(result.total_epochs,
                                           result.final_accuracy,
                                           len(result.ensemble)))
        return result

    @staticmethod
    def _make_loss(ensemble_probs: np.ndarray, penalty_lambda: float):
        def loss_fn(logits, labels, indices):
            return diversity_driven_loss(logits, labels,
                                         ensemble_probs[indices],
                                         gamma=penalty_lambda)
        return loss_fn
