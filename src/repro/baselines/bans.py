"""Born-Again Networks baseline (Furlanello et al., ICML 2018).

A chain of identically-architected students: generation 1 trains on the
hard labels; generation k+1 is randomly initialised and trained to match
both the labels and the *full softmax distribution* of generation k
(knowledge distillation).  The final prediction averages all generations'
softmax outputs ("BAN ensemble" in the original paper).

This is the method the paper contrasts EDDE against most directly: both
use soft targets, but BANs pulls the student *toward* the teacher while
EDDE pushes the student *away from* the ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import BaselineConfig, EnsembleMethod
from repro.core.callbacks import Callback
from repro.core.checkpointing import FaultTolerance
from repro.core.engine import EnsembleEngine, RoundOutcome
from repro.core.results import FitResult
from repro.data.dataset import Dataset
from repro.nn.losses import distillation_loss
from repro.utils.rng import RngLike, new_rng, spawn_rng


@dataclass
class BANsConfig(BaselineConfig):
    """Distillation mix (0 = labels only, 1 = teacher only) and temperature."""

    distill_alpha: float = 0.5
    temperature: float = 2.0


class BANs(EnsembleMethod):
    name = "BANs"

    def __init__(self, factory, config: Optional[BANsConfig] = None):
        super().__init__(factory, config or BANsConfig())

    def fit(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            rng: RngLike = None,
            callbacks: Optional[Sequence[Callback]] = None,
            fault_tolerance: Optional[FaultTolerance] = None) -> FitResult:
        fault = fault_tolerance or FaultTolerance()
        rng = new_rng(rng)
        config: BANsConfig = self.config

        def round_fn(engine: EnsembleEngine, index: int) -> RoundOutcome:
            member_rng = spawn_rng(rng)
            model = self.factory.build(rng=member_rng)
            # Teacher targets come from the cache: the previous generation's
            # train-set outputs were stored when it joined the ensemble.
            # (Checked against the cache, not ``index``: the first teacher
            # may have been skipped by the retry policy, or restored from
            # a checkpoint on resume.)
            teacher_probs = (engine.cache.member_probs("train")
                             if len(engine.ensemble) > 0 else None)
            loss_fn = self._make_loss(teacher_probs, config)
            logger = engine.train_member(model, train_set,
                                         config.training_config(),
                                         loss_fn=loss_fn, rng=member_rng)
            return RoundOutcome(model=model, alpha=1.0,
                                epochs=config.epochs_per_model,
                                train_accuracy=logger.last("train_accuracy"))

        engine = self.engine(train_set, test_set, callbacks, cache_train=True,
                             fault_tolerance=fault)
        engine.track_rng(rng)
        return engine.run(config.num_models, round_fn,
                          resume_from=fault.resume_from)

    @staticmethod
    def _make_loss(teacher_probs, config: BANsConfig):
        if teacher_probs is None:
            return None  # first generation: plain cross-entropy

        def loss_fn(logits, labels, indices):
            batch = len(labels)
            uniform = np.full(batch, 1.0 / batch, dtype=np.float64)
            return distillation_loss(
                logits, labels, teacher_probs[indices],
                alpha=config.distill_alpha,
                temperature=config.temperature,
                weights=uniform,
            )

        return loss_fn
