"""AdaBoost.M1 baseline (Freund & Schapire, 1997), multiclass via SAMME.

Each round trains a randomly initialised network on a resample drawn from
the current boosting distribution ``D_t`` (resampling is the standard way
to realise sample weights for mini-batch-trained networks, and is what the
paper's Sec. II criticises: "train it with a different subset ... from the
original dataset").  The weighted error ``ε_t`` drives both the model
weight and the weight update; the SAMME ``log(K-1)`` correction keeps the
multiclass α positive whenever the model beats chance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaselineConfig, EnsembleMethod, IncrementalEvaluator
from repro.core.ensemble import Ensemble
from repro.core.results import FitResult
from repro.core.trainer import train_model
from repro.data.dataset import Dataset
from repro.data.loader import weighted_sample
from repro.nn import predict_probs
from repro.utils.rng import RngLike, new_rng, spawn_rng

_EPS = 1e-10


class AdaBoostM1(EnsembleMethod):
    name = "AdaBoost.M1"

    def fit(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            rng: RngLike = None) -> FitResult:
        rng = new_rng(rng)
        n = len(train_set)
        k = train_set.num_classes
        weights = np.full(n, 1.0 / n)
        ensemble = Ensemble()
        result = FitResult(method=self.name, ensemble=ensemble)
        evaluator = IncrementalEvaluator(test_set)
        cumulative = 0

        for index in range(self.config.num_models):
            member_rng = spawn_rng(rng)
            model = self.factory.build(rng=member_rng)
            sample = weighted_sample(train_set, weights, rng=member_rng)
            logger = train_model(model, sample, self.config.training_config(),
                                 rng=member_rng)
            cumulative += self.config.epochs_per_model

            predictions = predict_probs(model, train_set.x).argmax(axis=1)
            misclassified = predictions != train_set.y
            epsilon = float(np.clip(weights[misclassified].sum(), _EPS, 1 - _EPS))
            # SAMME multiclass model weight; chance level is 1 - 1/k.
            alpha = np.log((1 - epsilon) / epsilon) + np.log(k - 1)
            if alpha <= 0:
                # Worse than chance: the classic prescription resets the
                # distribution; keep the model with a tiny weight so the
                # ensemble size matches the budgeted T.
                weights = np.full(n, 1.0 / n)
                alpha = 1e-3
            else:
                weights = weights * np.exp(alpha * misclassified)
                weights /= weights.sum()

            test_accuracy = evaluator.add(model, alpha)
            ensemble.add(model, alpha)
            self._record(result, evaluator, index, float(alpha),
                         self.config.epochs_per_model, cumulative,
                         logger.last("train_accuracy"), test_accuracy,
                         epsilon=epsilon)

        result.total_epochs = cumulative
        result.final_accuracy = evaluator.ensemble_accuracy()
        return result
