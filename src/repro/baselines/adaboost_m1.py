"""AdaBoost.M1 baseline (Freund & Schapire, 1997), multiclass via SAMME.

Each round trains a randomly initialised network on a resample drawn from
the current boosting distribution ``D_t`` (resampling is the standard way
to realise sample weights for mini-batch-trained networks, and is what the
paper's Sec. II criticises: "train it with a different subset ... from the
original dataset").  The weighted error ``ε_t`` drives both the model
weight and the weight update; the SAMME ``log(K-1)`` correction keeps the
multiclass α positive whenever the model beats chance.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import EnsembleMethod
from repro.core.callbacks import Callback
from repro.core.checkpointing import FaultTolerance
from repro.core.engine import EnsembleEngine, RoundOutcome
from repro.core.results import FitResult
from repro.data.dataset import Dataset
from repro.data.loader import weighted_sample
from repro.nn import predict_probs
from repro.utils.rng import RngLike, new_rng, spawn_rng

_EPS = 1e-10


class AdaBoostM1(EnsembleMethod):
    name = "AdaBoost.M1"

    def fit(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            rng: RngLike = None,
            callbacks: Optional[Sequence[Callback]] = None,
            fault_tolerance: Optional[FaultTolerance] = None) -> FitResult:
        fault = fault_tolerance or FaultTolerance()
        rng = new_rng(rng)
        n = len(train_set)
        k = train_set.num_classes
        # Eq. 14-style weight replay runs at float64 regardless of the
        # tensor dtype policy: boosting weights multiply across rounds.
        state = {"weights": np.full(n, 1.0 / n, dtype=np.float64)}
        if fault.resume_from is not None:
            saved = fault.resume_from.arrays.get("sample_weights")
            if saved is not None:
                state["weights"] = np.array(saved)

        def round_fn(engine: EnsembleEngine, index: int) -> RoundOutcome:
            member_rng = spawn_rng(rng)
            model = self.factory.build(rng=member_rng)
            sample = weighted_sample(train_set, state["weights"],
                                     rng=member_rng)
            logger = engine.train_member(model, sample,
                                         self.config.training_config(),
                                         rng=member_rng)

            # The single train-set evaluation of the new member; cached for
            # any later consumer via the engine's prediction store.
            train_probs = predict_probs(model, train_set.x)
            misclassified = train_probs.argmax(axis=1) != train_set.y
            weights = state["weights"]
            epsilon = float(np.clip(weights[misclassified].sum(),
                                    _EPS, 1 - _EPS))
            # SAMME multiclass model weight; chance level is 1 - 1/k.
            alpha = np.log((1 - epsilon) / epsilon) + np.log(k - 1)
            if alpha <= 0:
                # Worse than chance: the classic prescription resets the
                # distribution; keep the model with a tiny weight so the
                # ensemble size matches the budgeted T.
                state["weights"] = np.full(n, 1.0 / n, dtype=np.float64)
                alpha = 1e-3
            else:
                weights = weights * np.exp(alpha * misclassified)
                state["weights"] = weights / weights.sum()

            engine.checkpoint_extra["sample_weights"] = state["weights"]
            return RoundOutcome(model=model, alpha=float(alpha),
                                epochs=self.config.epochs_per_model,
                                train_accuracy=logger.last("train_accuracy"),
                                extras={"epsilon": epsilon},
                                precomputed={"train": train_probs})

        engine = self.engine(train_set, test_set, callbacks, cache_train=True,
                             fault_tolerance=fault)
        engine.track_rng(rng)
        return engine.run(self.config.num_models, round_fn,
                          resume_from=fault.resume_from)
