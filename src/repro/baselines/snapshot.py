"""Snapshot Ensemble baseline (Huang et al., ICLR 2017).

One network is trained continuously under the cyclic cosine-annealing
schedule; at the end of every cycle the weights are snapshotted and the
snapshot joins the ensemble (simple softmax averaging, α = 1).  Because
the next cycle restarts from the previous cycle's minimum, training is
fast — but, as the paper under reproduction argues, the snapshots transfer
*all* knowledge and end up in nearby minima (low diversity; Fig. 8 left).

Snapshots materialise *inside* one continuous training run, so this method
uses the engine's manual flow: ``complete_round`` fires from the cycle
boundary hook and the default callbacks (curve, timing) do the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.base import BaselineConfig, EnsembleMethod
from repro.core.callbacks import Callback
from repro.core.checkpointing import FaultTolerance
from repro.core.engine import RoundOutcome
from repro.core.results import FitResult
from repro.data.dataset import Dataset
from repro.utils.rng import RngLike, new_rng
from repro.utils.run_log import RunLogger


@dataclass
class SnapshotConfig(BaselineConfig):
    """``num_models`` cycles of ``epochs_per_model`` epochs each."""

    def __post_init__(self) -> None:
        self.schedule = "snapshot"


class SnapshotEnsemble(EnsembleMethod):
    name = "Snapshot"

    def __init__(self, factory, config: Optional[BaselineConfig] = None):
        config = config or SnapshotConfig()
        config.schedule = "snapshot"
        super().__init__(factory, config)

    def fit(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            rng: RngLike = None,
            callbacks: Optional[Sequence[Callback]] = None,
            fault_tolerance: Optional[FaultTolerance] = None) -> FitResult:
        self.reject_resume(fault_tolerance)
        rng = new_rng(rng)
        cycle_length = self.config.epochs_per_model
        total_epochs = self.config.total_epochs()
        model = self.factory.build(rng=rng)
        engine = self.engine(train_set, test_set, callbacks,
                             fault_tolerance=fault_tolerance)

        training = self.config.training_config(epochs=total_epochs)
        training.cycle_length = cycle_length

        logger = RunLogger(verbose=training.verbose)

        def on_epoch_end(trained_model, epoch):
            if (epoch + 1) % cycle_length != 0:
                return
            # Snapshot: a fresh instance loaded with the current weights
            # (including BatchNorm running statistics).
            snapshot = self.factory.build(rng=rng)
            snapshot.load_state_dict(trained_model.state_dict())
            snapshot.eval()
            engine.complete_round(RoundOutcome(
                model=snapshot, alpha=1.0, epochs=cycle_length,
                train_accuracy=logger.last("train_accuracy")))

        engine.train_member(model, train_set, training, rng=rng,
                            on_epoch_end=on_epoch_end, logger=logger)
        return engine.finish(total_epochs=total_epochs)
