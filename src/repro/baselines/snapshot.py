"""Snapshot Ensemble baseline (Huang et al., ICLR 2017).

One network is trained continuously under the cyclic cosine-annealing
schedule; at the end of every cycle the weights are snapshotted and the
snapshot joins the ensemble (simple softmax averaging, α = 1).  Because
the next cycle restarts from the previous cycle's minimum, training is
fast — but, as the paper under reproduction argues, the snapshots transfer
*all* knowledge and end up in nearby minima (low diversity; Fig. 8 left).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.base import BaselineConfig, EnsembleMethod, IncrementalEvaluator
from repro.core.ensemble import Ensemble
from repro.core.results import CurvePoint, FitResult, MemberRecord
from repro.core.trainer import train_model
from repro.data.dataset import Dataset
from repro.utils.rng import RngLike, new_rng
from repro.utils.run_log import RunLogger


@dataclass
class SnapshotConfig(BaselineConfig):
    """``num_models`` cycles of ``epochs_per_model`` epochs each."""

    def __post_init__(self) -> None:
        self.schedule = "snapshot"


class SnapshotEnsemble(EnsembleMethod):
    name = "Snapshot"

    def __init__(self, factory, config: Optional[BaselineConfig] = None):
        config = config or SnapshotConfig()
        config.schedule = "snapshot"
        super().__init__(factory, config)

    def fit(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            rng: RngLike = None) -> FitResult:
        rng = new_rng(rng)
        cycle_length = self.config.epochs_per_model
        total_epochs = self.config.total_epochs()
        model = self.factory.build(rng=rng)
        ensemble = Ensemble()
        result = FitResult(method=self.name, ensemble=ensemble)
        evaluator = IncrementalEvaluator(test_set)

        training = self.config.training_config(epochs=total_epochs)
        training.cycle_length = cycle_length

        logger = RunLogger(verbose=training.verbose)

        def on_epoch_end(trained_model, epoch):
            if (epoch + 1) % cycle_length != 0:
                return
            # Snapshot: a fresh instance loaded with the current weights
            # (including BatchNorm running statistics).
            snapshot = self.factory.build(rng=rng)
            snapshot.load_state_dict(trained_model.state_dict())
            snapshot.eval()
            index = len(ensemble)
            test_accuracy = evaluator.add(snapshot, 1.0)
            ensemble.add(snapshot, 1.0)
            result.members.append(MemberRecord(
                index=index, alpha=1.0, epochs=cycle_length,
                train_accuracy=logger.last("train_accuracy"),
                test_accuracy=test_accuracy,
            ))
            ensemble_accuracy = evaluator.ensemble_accuracy()
            result.curve.append(CurvePoint(epoch + 1, ensemble_accuracy,
                                           len(ensemble)))

        train_model(model, train_set, training, rng=rng,
                    on_epoch_end=on_epoch_end, logger=logger)

        result.total_epochs = total_epochs
        result.final_accuracy = evaluator.ensemble_accuracy()
        return result
