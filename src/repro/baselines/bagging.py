"""Bagging baseline: independent models on bootstrap resamples.

Each base model is randomly initialised and trained on a bootstrap sample
of the training set; predictions are combined by (unweighted) softmax
averaging — the "Averaging" combiner the paper attributes to bagging-style
deep ensembles.  A majority-vote combiner is also exposed via the core
package for completeness.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import BaselineConfig, EnsembleMethod, IncrementalEvaluator
from repro.core.ensemble import Ensemble
from repro.core.results import FitResult
from repro.core.trainer import train_model
from repro.data.dataset import Dataset
from repro.data.loader import bootstrap_sample
from repro.utils.rng import RngLike, new_rng, spawn_rng


class Bagging(EnsembleMethod):
    name = "Bagging"

    def fit(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            rng: RngLike = None) -> FitResult:
        rng = new_rng(rng)
        ensemble = Ensemble()
        result = FitResult(method=self.name, ensemble=ensemble)
        evaluator = IncrementalEvaluator(test_set)
        cumulative = 0

        for index in range(self.config.num_models):
            member_rng = spawn_rng(rng)
            model = self.factory.build(rng=member_rng)
            sample = bootstrap_sample(train_set, rng=member_rng)
            logger = train_model(model, sample, self.config.training_config(),
                                 rng=member_rng)
            cumulative += self.config.epochs_per_model
            test_accuracy = evaluator.add(model, 1.0)
            ensemble.add(model, 1.0)
            self._record(result, evaluator, index, 1.0,
                         self.config.epochs_per_model, cumulative,
                         logger.last("train_accuracy"), test_accuracy)

        result.total_epochs = cumulative
        result.final_accuracy = evaluator.ensemble_accuracy()
        return result
