"""Bagging baseline: independent models on bootstrap resamples.

Each base model is randomly initialised and trained on a bootstrap sample
of the training set; predictions are combined by (unweighted) softmax
averaging — the "Averaging" combiner the paper attributes to bagging-style
deep ensembles.  A majority-vote combiner is also exposed via the core
package for completeness.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.base import EnsembleMethod
from repro.core.callbacks import Callback
from repro.core.checkpointing import FaultTolerance
from repro.core.engine import EnsembleEngine, RoundOutcome
from repro.core.results import FitResult
from repro.data.dataset import Dataset
from repro.data.loader import bootstrap_sample
from repro.utils.rng import RngLike, new_rng, spawn_rng


class Bagging(EnsembleMethod):
    name = "Bagging"

    def fit(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            rng: RngLike = None,
            callbacks: Optional[Sequence[Callback]] = None,
            fault_tolerance: Optional[FaultTolerance] = None) -> FitResult:
        fault = fault_tolerance or FaultTolerance()
        rng = new_rng(rng)

        def round_fn(engine: EnsembleEngine, index: int) -> RoundOutcome:
            member_rng = spawn_rng(rng)
            model = self.factory.build(rng=member_rng)
            sample = bootstrap_sample(train_set, rng=member_rng)
            logger = engine.train_member(model, sample,
                                         self.config.training_config(),
                                         rng=member_rng)
            return RoundOutcome(model=model, alpha=1.0,
                                epochs=self.config.epochs_per_model,
                                train_accuracy=logger.last("train_accuracy"))

        engine = self.engine(train_set, test_set, callbacks,
                             fault_tolerance=fault)
        # Members are independent given the RNG stream, so resuming only
        # needs the restored generator state (and the cached members).
        engine.track_rng(rng)
        return engine.run(self.config.num_models, round_fn,
                          resume_from=fault.resume_from)
