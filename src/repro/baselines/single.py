"""The Single Model baseline: one network, full epoch budget, no ensemble."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.base import EnsembleMethod
from repro.core.callbacks import Callback, PerEpochCurve
from repro.core.checkpointing import FaultTolerance
from repro.core.engine import RoundOutcome
from repro.core.results import FitResult
from repro.data.dataset import Dataset
from repro.utils.rng import RngLike, new_rng


class SingleModel(EnsembleMethod):
    """Train one model for the whole budget (``num_models`` is ignored).

    The Fig. 7 curve for the single model is its per-epoch test accuracy,
    matching the paper's caption ("directly calculated on the test set") —
    recorded by a :class:`~repro.core.callbacks.PerEpochCurve` callback
    rather than the engine's default per-member curve.
    """

    name = "Single Model"

    def fit(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            rng: RngLike = None,
            callbacks: Optional[Sequence[Callback]] = None,
            fault_tolerance: Optional[FaultTolerance] = None) -> FitResult:
        self.reject_resume(fault_tolerance)
        rng = new_rng(rng)
        total_epochs = self.config.total_epochs()
        model = self.factory.build(rng=rng)

        engine = self.engine(train_set, test_set,
                             [PerEpochCurve()] + list(callbacks or []),
                             record_curve=False,
                             fault_tolerance=fault_tolerance)
        logger = engine.train_member(
            model, train_set, self.config.training_config(epochs=total_epochs),
            rng=rng)
        engine.complete_round(RoundOutcome(
            model=model, alpha=1.0, epochs=total_epochs,
            train_accuracy=logger.last("train_accuracy")))
        return engine.finish()
