"""The Single Model baseline: one network, full epoch budget, no ensemble."""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import BaselineConfig, EnsembleMethod, IncrementalEvaluator
from repro.core.ensemble import Ensemble
from repro.core.results import CurvePoint, FitResult, MemberRecord
from repro.core.trainer import train_model
from repro.data.dataset import Dataset
from repro.nn import accuracy, predict_probs
from repro.utils.rng import RngLike, new_rng


class SingleModel(EnsembleMethod):
    """Train one model for the whole budget (``num_models`` is ignored).

    The Fig. 7 curve for the single model is its per-epoch test accuracy,
    matching the paper's caption ("directly calculated on the test set").
    """

    name = "Single Model"

    def fit(self, train_set: Dataset, test_set: Optional[Dataset] = None,
            rng: RngLike = None) -> FitResult:
        rng = new_rng(rng)
        total_epochs = self.config.total_epochs()
        model = self.factory.build(rng=rng)
        ensemble = Ensemble()
        result = FitResult(method=self.name, ensemble=ensemble)

        def on_epoch_end(trained_model, epoch):
            if test_set is None:
                return
            acc = accuracy(predict_probs(trained_model, test_set.x), test_set.y)
            result.curve.append(CurvePoint(epoch + 1, acc, 1))

        logger = train_model(model, train_set,
                             self.config.training_config(epochs=total_epochs),
                             rng=rng, on_epoch_end=on_epoch_end)
        evaluator = IncrementalEvaluator(test_set)
        test_accuracy = evaluator.add(model, 1.0)
        ensemble.add(model, 1.0)
        result.members.append(MemberRecord(
            index=0, alpha=1.0, epochs=total_epochs,
            train_accuracy=logger.last("train_accuracy"),
            test_accuracy=test_accuracy,
        ))
        result.total_epochs = total_epochs
        result.final_accuracy = test_accuracy
        return result
