"""The paper's baseline ensemble methods, behind one common interface."""

from repro.baselines.base import BaselineConfig, EnsembleMethod
from repro.baselines.single import SingleModel
from repro.baselines.bagging import Bagging
from repro.baselines.adaboost_m1 import AdaBoostM1
from repro.baselines.adaboost_nc import AdaBoostNC, AdaBoostNCConfig
from repro.baselines.snapshot import SnapshotConfig, SnapshotEnsemble
from repro.baselines.bans import BANs, BANsConfig
from repro.baselines.ncl import NCLConfig, NegativeCorrelationLearning

METHOD_CLASSES = {
    "single": SingleModel,
    "bagging": Bagging,
    "adaboost_m1": AdaBoostM1,
    "adaboost_nc": AdaBoostNC,
    "snapshot": SnapshotEnsemble,
    "bans": BANs,
    "ncl": NegativeCorrelationLearning,
}

__all__ = [
    "BaselineConfig",
    "EnsembleMethod",
    "SingleModel",
    "Bagging",
    "AdaBoostM1",
    "AdaBoostNC",
    "AdaBoostNCConfig",
    "SnapshotEnsemble",
    "SnapshotConfig",
    "BANs",
    "BANsConfig",
    "NegativeCorrelationLearning",
    "NCLConfig",
    "METHOD_CLASSES",
]
