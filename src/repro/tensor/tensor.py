"""The :class:`Tensor` class: a numpy array plus a reverse-mode tape.

Design notes
------------
* Every differentiable operation dispatches through the op registry
  (:mod:`repro.ops.registry`): :func:`apply` looks up the named kernel,
  runs its ``forward`` on the raw arrays, and records the resulting
  :class:`~repro.ops.registry.OpContext` on the output tensor.
* ``backward()`` topologically sorts the tape and runs each op's
  registered ``backward`` kernel once, accumulating the returned
  gradients into the parents.  The tape is freed as it is consumed:
  once a node's backward has run, its parent links and saved context are
  dropped so intermediate activations become collectable immediately.
* Gradients accumulate (``+=``), so a tensor used twice receives the sum
  of both contributions — required by residual and dense connectivity.
* A module-level switch (:func:`no_grad`) disables taping for inference;
  :func:`inference_mode` additionally routes kernel outputs into
  lightweight :class:`ArrayView` wrappers that skip all graph
  bookkeeping, which matters because ensemble evaluation dominates
  benchmark runtime.
* Dtype policy lives in :mod:`repro.tensor.dtypes`: float arrays keep
  their dtype, everything else is materialised as the default float
  dtype (float32 unless overridden; the test-suite pins float64).
"""

from __future__ import annotations

import contextlib
import threading
from time import perf_counter
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.ops import fastpath as _fastpath_mod
from repro.ops import profiler as _profiler
from repro.ops import workspace as _workspace
from repro.ops.registry import OpContext, get_op
from repro.tensor import sanitize as _sanitize
from repro.tensor.dtypes import check_valid_dtype, default_dtype

# Importing the package registers every kernel module.
import repro.ops  # noqa: F401  (registration side effect)

ArrayLike = Union[np.ndarray, float, int, Sequence]

_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded on the tape."""
    return getattr(_state, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient taping (inference mode)."""
    previous = is_grad_enabled()
    _state.grad_enabled = False
    try:
        yield
    finally:
        _state.grad_enabled = previous


@contextlib.contextmanager
def inference_mode():
    """``no_grad`` plus the registry fast path.

    Inside this context, op outputs are wrapped in :class:`ArrayView` —
    graph-free tensors created without any autograd bookkeeping — so a
    forward pass is essentially a chain of raw numpy kernel calls.
    """
    with no_grad(), _fastpath_mod._fastpath(True):
        yield


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    if dtype is not None:
        check_valid_dtype(dtype)
        return np.asarray(data, dtype=dtype)
    existing = getattr(data, "dtype", None)
    if existing is not None:
        check_valid_dtype(existing)
        if existing.kind == "f":
            return np.asarray(data)
        return np.asarray(data, dtype=default_dtype())
    # Python data (lists, scalars): materialise once so non-numeric
    # payloads (strings, objects, ragged lists) fail here with a clear
    # error instead of deep in a kernel with a numpy cast message, then
    # deliver in the default float dtype.
    materialised = np.asarray(data)
    check_valid_dtype(materialised.dtype)
    return materialised.astype(default_dtype(), copy=False)


def _sum_to_shape(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (produced under broadcasting) back to ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def apply(name: str, inputs: Tuple["Tensor", ...], **params) -> "Tensor":
    """Dispatch op ``name`` on ``inputs`` through the registry.

    Runs the registered forward kernel on the raw arrays, then either
    tapes the result (recording the op context and parent links for
    ``backward()``) or — when gradients are off — returns an untaped
    tensor, using the bookkeeping-free :class:`ArrayView` under
    :func:`inference_mode`.
    """
    op = get_op(name)
    ctx = OpContext()
    ctx.needs = tuple(t.requires_grad for t in inputs)
    arrays = tuple(t.data for t in inputs)

    prof = _profiler._current
    if prof is None:
        data = op.forward(ctx, *arrays, **params)
    else:
        started = perf_counter()
        data = op.forward(ctx, *arrays, **params)
        prof.record_forward(name, perf_counter() - started,
                            getattr(data, "nbytes", 0))

    if _sanitize.sanitize_enabled():
        _sanitize.check_forward(op, arrays, params, data)

    if is_grad_enabled() and any(ctx.needs):
        out = Tensor(data, requires_grad=True)
        out._parents = inputs
        out._ctx = ctx
        out._opref = op
        out._op = name
        return out

    # Untaped: nothing will ever consume the saved context, so pooled
    # workspaces go straight back.
    for buffer in ctx.workspaces:
        _workspace.release(buffer)
    if _fastpath_mod.fastpath_enabled():
        if not isinstance(data, np.ndarray):
            data = np.asarray(data)
        return ArrayView(data)
    return Tensor(data)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload.  Float arrays keep their dtype; other inputs
        are converted to the default float dtype (see
        :mod:`repro.tensor.dtypes`).  Non-numeric payloads (object,
        string, complex arrays) are rejected with a ``TypeError`` here
        rather than failing later inside a kernel.
    requires_grad:
        Whether gradients should flow into this tensor.  Leaf tensors with
        ``requires_grad=True`` act as trainable parameters.
    dtype:
        Optional explicit dtype; must be real-numeric under the policy in
        :mod:`repro.tensor.dtypes`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_ctx",
                 "_opref", "_op", "__weakref__")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 dtype=None):
        self.data = _as_array(data, dtype=dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = ()
        self._ctx: Optional[OpContext] = None
        self._opref = None
        self._op: str = "leaf"

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        """Coerce ``value`` into a (non-differentiable) Tensor if needed."""
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Gradient machinery
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _sum_to_shape(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        The tape is consumed: after this returns, every visited node's
        parent links, op context and pooled workspaces have been
        released, so intermediate activations are collectable
        immediately.  A second ``backward()`` through the same graph is
        therefore not possible — build a fresh graph instead (the
        trainers always do).

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults
            to 1 for scalar tensors (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        prof = _profiler._current
        sanitizing = _sanitize.sanitize_enabled()
        for node in reversed(order):
            ctx = node._ctx
            if ctx is None:
                continue
            op = node._opref
            if node.grad is not None:
                if prof is None:
                    grads = op.backward(ctx, node.grad)
                else:
                    started = perf_counter()
                    grads = op.backward(ctx, node.grad)
                    prof.record_backward(op.name, perf_counter() - started)
                if sanitizing:
                    _sanitize.check_backward(op, grads, node._parents)
                for parent, parent_grad in zip(node._parents, grads):
                    if parent_grad is not None and parent.requires_grad:
                        parent._accumulate(parent_grad)
            # Free the tape as it is consumed: drop saved activations and
            # return pooled workspaces so memory is reclaimed immediately.
            for buffer in ctx.workspaces:
                _workspace.release(buffer)
            node._parents = ()
            node._ctx = None
            node._opref = None

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other):
        return apply("add", (self, Tensor.ensure(other)))

    __radd__ = __add__

    def __neg__(self):
        return apply("neg", (self,))

    def __sub__(self, other):
        return apply("sub", (self, Tensor.ensure(other)))

    def __rsub__(self, other):
        return Tensor.ensure(other).__sub__(self)

    def __mul__(self, other):
        return apply("mul", (self, Tensor.ensure(other)))

    __rmul__ = __mul__

    def __truediv__(self, other):
        return apply("div", (self, Tensor.ensure(other)))

    def __rtruediv__(self, other):
        return Tensor.ensure(other).__truediv__(self)

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        return apply("pow", (self,), exponent=exponent)

    def __matmul__(self, other):
        return apply("matmul", (self, Tensor.ensure(other)))

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return apply("reshape", (self,), shape=shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        return apply("transpose", (self,), axes=axes)

    def __getitem__(self, index) -> "Tensor":
        return apply("getitem", (self,), index=index)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply("sum", (self,), axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        return apply("max", (self,), axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        return apply("exp", (self,))

    def log(self) -> "Tensor":
        return apply("log", (self,))

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        return apply("tanh", (self,))

    def sigmoid(self) -> "Tensor":
        return apply("sigmoid", (self,))

    def relu(self) -> "Tensor":
        return apply("relu", (self,))

    def clip(self, low: float, high: float) -> "Tensor":
        return apply("clip", (self,), low=low, high=high)


class ArrayView(Tensor):
    """A graph-free tensor wrapper used by the inference fast path.

    Skips dtype coercion and all autograd bookkeeping, so model code
    written against ``Tensor`` (and its ``isinstance`` checks) runs
    unchanged on raw kernel outputs.
    """

    __slots__ = ()

    def __init__(self, data: np.ndarray):
        self.data = data
        self.grad = None
        self.requires_grad = False
        self._parents = ()
        self._ctx = None
        self._opref = None
        self._op = "view"
