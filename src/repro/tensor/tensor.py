"""The :class:`Tensor` class: a numpy array plus a reverse-mode tape.

Design notes
------------
* Every differentiable operation creates a new ``Tensor`` whose ``_parents``
  hold references to its inputs and whose ``_backward`` closure knows how to
  push the output gradient into the parents' ``grad`` buffers.
* ``backward()`` topologically sorts the tape and runs the closures once.
* Gradients accumulate (``+=``), so a tensor used twice receives the sum of
  both contributions — required by residual and dense connectivity.
* A module-level switch (:func:`no_grad`) disables taping for inference,
  which matters because ensemble evaluation dominates benchmark runtime.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded on the tape."""
    return getattr(_state, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient taping (inference mode)."""
    previous = is_grad_enabled()
    _state.grad_enabled = False
    try:
        yield
    finally:
        _state.grad_enabled = previous


def _as_array(data: ArrayLike, dtype=np.float64) -> np.ndarray:
    array = np.asarray(data, dtype=dtype)
    return array


def _sum_to_shape(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (produced under broadcasting) back to ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` by default.  The
        reproduction favours float64 so finite-difference gradient checks
        are tight; models remain fast enough at the benchmark scale.
    requires_grad:
        Whether gradients should flow into this tensor.  Leaf tensors with
        ``requires_grad=True`` act as trainable parameters.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "_op")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = ()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._op: str = "leaf"

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _make(
        cls,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        parents = tuple(parents)
        taped = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=taped)
        if taped:
            out._parents = parents
            out._backward = backward
            out._op = op
        return out

    @staticmethod
    def ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        """Coerce ``value`` into a (non-differentiable) Tensor if needed."""
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Gradient machinery
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _sum_to_shape(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults
            to 1 for scalar tensors (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic ops
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = Tensor.ensure(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(g)

        return Tensor._make(self.data + other.data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self):
        def backward(g):
            if self.requires_grad:
                self._accumulate(-g)

        return Tensor._make(-self.data, (self,), backward, "neg")

    def __sub__(self, other):
        other = Tensor.ensure(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g)
            if other.requires_grad:
                other._accumulate(-g)

        return Tensor._make(self.data - other.data, (self, other), backward, "sub")

    def __rsub__(self, other):
        return Tensor.ensure(other).__sub__(self)

    def __mul__(self, other):
        other = Tensor.ensure(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * other.data)
            if other.requires_grad:
                other._accumulate(g * self.data)

        return Tensor._make(self.data * other.data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = Tensor.ensure(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g / other.data)
            if other.requires_grad:
                other._accumulate(-g * self.data / (other.data ** 2))

        return Tensor._make(self.data / other.data, (self, other), backward, "div")

    def __rtruediv__(self, other):
        return Tensor.ensure(other).__truediv__(self)

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(self.data ** exponent, (self,), backward, "pow")

    def __matmul__(self, other):
        other = Tensor.ensure(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ g)

        return Tensor._make(self.data @ other.data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(g):
            if self.requires_grad:
                self._accumulate(g.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward, "transpose")

    def __getitem__(self, index) -> "Tensor":
        def backward(g):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, g)
                self._accumulate(full)

        return Tensor._make(self.data[index], (self,), backward, "getitem")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.ndim for a in axes):
                    grad = np.expand_dims(grad, ax)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return Tensor._make(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            expanded = out_data
            if not keepdims:
                grad = np.expand_dims(grad, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly across ties so gradcheck stays exact.
            mask /= mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * grad)

        return Tensor._make(out_data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        def backward(g):
            if self.requires_grad:
                self._accumulate(g / self.data)

        return Tensor._make(np.log(self.data), (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._make(self.data * mask, (self,), backward, "relu")

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward, "clip")
