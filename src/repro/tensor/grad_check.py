"""Finite-difference verification of autograd gradients.

Used pervasively by the test suite: every differentiable op and the
diversity-driven loss (paper Eq. 10/11) are checked against central
differences.  Tensors use float64 so the checks can be tight.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numeric_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(func(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for position in range(flat.size):
        original = flat[position]
        flat[position] = original + eps
        upper = float(func(*inputs).data.sum())
        flat[position] = original - eps
        lower = float(func(*inputs).data.sum())
        flat[position] = original
        grad_flat[position] = (upper - lower) / (2.0 * eps)
    return grad


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Compare autograd gradients of ``sum(func(*inputs))`` to finite differences.

    Raises ``AssertionError`` with a diagnostic on mismatch; returns ``True``
    on success so it composes with ``assert gradcheck(...)``.
    """
    inputs = list(inputs)
    for tensor in inputs:
        tensor.zero_grad()
    output = func(*inputs)
    output.sum().backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numeric_gradient(func, inputs, index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradcheck failed for input {index}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
