"""Free-function differentiable operations on :class:`~repro.tensor.Tensor`.

These complement the method-style ops on ``Tensor`` with the structural and
normalisation operations the paper's models need:

* ``concatenate`` — DenseNet's dense connectivity.
* ``pad1d`` / ``pad2d`` — convolution padding and the CIFAR augmentation
  crop.
* ``softmax`` / ``log_softmax`` — soft targets (the paper's `h_t(x)`).
* ``l2norm`` — per-sample ``||h_t(x) - H_{t-1}(x)||_2``, the penalty in the
  diversity-driven loss (paper Eq. 9/10) whose gradient is Eq. 11.

All of them are thin wrappers dispatching registry kernels (see
:mod:`repro.ops`) through :func:`repro.tensor.tensor.apply`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.tensor import Tensor, apply


def concatenate(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    """Differentiably concatenate tensors along ``axis``."""
    return apply("concat", tuple(Tensor.ensure(t) for t in tensors), axis=axis)


def pad1d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the trailing (length) dim of an (N, C, L) tensor.

    The backward slice ``g[:, :, padding:-padding]`` is only well-formed
    for ``padding > 0``, so the no-op case returns ``x`` unchanged.
    """
    if padding == 0:
        return x
    return apply("pad1d", (x,), padding=padding)


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the two trailing spatial dims of an NCHW tensor."""
    if padding == 0:
        return x
    return apply("pad2d", (x,), padding=padding)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return apply("softmax", (x,), axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    return apply("log_softmax", (x,), axis=axis)


def l2norm(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Euclidean norm along ``axis`` with a smooth-at-zero epsilon.

    The paper's Eq. 11 divides by ``||h_t(x) - H_{t-1}(x)||_2``; ``eps``
    keeps the gradient finite when a base model exactly matches the
    ensemble output (it happens on one-hot saturated predictions).
    """
    return apply("l2norm", (x,), axis=axis, eps=eps)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiably stack tensors along a new axis."""
    return apply("stack", tuple(Tensor.ensure(t) for t in tensors), axis=axis)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise selection; ``condition`` is constant."""
    condition = np.asarray(condition, dtype=bool)
    return apply("where", (Tensor.ensure(a), Tensor.ensure(b)),
                 condition=condition)
