"""Free-function differentiable operations on :class:`~repro.tensor.Tensor`.

These complement the method-style ops on ``Tensor`` with the structural and
normalisation operations the paper's models need:

* ``concatenate`` — DenseNet's dense connectivity.
* ``pad1d`` / ``pad2d`` — convolution padding and the CIFAR augmentation
  crop.
* ``softmax`` / ``log_softmax`` — soft targets (the paper's `h_t(x)`).
* ``l2norm`` — per-sample ``||h_t(x) - H_{t-1}(x)||_2``, the penalty in the
  diversity-driven loss (paper Eq. 9/10) whose gradient is Eq. 11.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def concatenate(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    """Differentiably concatenate tensors along ``axis``."""
    tensors = [Tensor.ensure(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * g.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(g[tuple(index)])

    return Tensor._make(data, tensors, backward, "concat")


def pad1d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the trailing (length) dim of an (N, C, L) tensor.

    The backward slice ``g[:, :, padding:-padding]`` is only well-formed
    for ``padding > 0``, so the no-op case returns ``x`` unchanged.
    """
    if padding == 0:
        return x
    pad_width = ((0, 0), (0, 0), (padding, padding))
    data = np.pad(x.data, pad_width)

    def backward(g):
        if x.requires_grad:
            x._accumulate(g[:, :, padding:-padding])

    return Tensor._make(data, (x,), backward, "pad1d")


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the two trailing spatial dims of an NCHW tensor."""
    if padding == 0:
        return x
    pad_width = ((0, 0), (0, 0), (padding, padding), (padding, padding))
    data = np.pad(x.data, pad_width)

    def backward(g):
        if x.requires_grad:
            x._accumulate(g[:, :, padding:-padding, padding:-padding])

    return Tensor._make(data, (x,), backward, "pad2d")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(g):
        if x.requires_grad:
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (g - dot))

    return Tensor._make(out_data, (x,), backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    probs = np.exp(out_data)

    def backward(g):
        if x.requires_grad:
            x._accumulate(g - probs * g.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward, "log_softmax")


def l2norm(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Euclidean norm along ``axis`` with a smooth-at-zero epsilon.

    The paper's Eq. 11 divides by ``||h_t(x) - H_{t-1}(x)||_2``; ``eps``
    keeps the gradient finite when a base model exactly matches the
    ensemble output (it happens on one-hot saturated predictions).
    """
    norm = np.sqrt((x.data ** 2).sum(axis=axis) + eps)

    def backward(g):
        if x.requires_grad:
            grad = np.expand_dims(g / norm, axis) * x.data
            x._accumulate(grad)

    return Tensor._make(norm, (x,), backward, "l2norm")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiably stack tensors along a new axis."""
    tensors = [Tensor.ensure(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        for position, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(np.take(g, position, axis=axis))

    return Tensor._make(data, tensors, backward, "stack")


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise selection; ``condition`` is constant."""
    a = Tensor.ensure(a)
    b = Tensor.ensure(b)
    condition = np.asarray(condition, dtype=bool)

    def backward(g):
        if a.requires_grad:
            a._accumulate(np.where(condition, g, 0.0))
        if b.requires_grad:
            b._accumulate(np.where(condition, 0.0, g))

    return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward, "where")
