"""Tape-based reverse-mode automatic differentiation over numpy arrays.

This package is the lowest substrate of the reproduction: the paper's
framework (Keras/TensorFlow) is replaced by a small, well-tested autograd
engine.  :class:`~repro.tensor.tensor.Tensor` wraps a numpy array and records
the operations applied to it on a tape; calling :meth:`Tensor.backward`
propagates gradients back through the tape.

Since the registry refactor, the op surface is defined by named kernels in
:mod:`repro.ops` and dispatched through :func:`~repro.tensor.tensor.apply`;
the methods on ``Tensor`` and the free functions in
:mod:`repro.tensor.ops` are thin wrappers.  The surface is intentionally
small but complete enough to express every model in the paper (ResNet,
DenseNet, TextCNN) and the diversity-driven loss (Eq. 10/11), which also
has a fused kernel (:mod:`repro.ops.fused`).
"""

from repro.tensor.tensor import (
    ArrayView,
    Tensor,
    apply,
    inference_mode,
    is_grad_enabled,
    no_grad,
)
from repro.tensor.dtypes import (
    check_valid_dtype,
    default_dtype,
    dtype_scope,
    set_default_dtype,
)
from repro.tensor.grad_check import gradcheck, numeric_gradient
from repro.tensor.sanitize import SanitizerError, sanitize_enabled, sanitize_mode

__all__ = [
    "ArrayView",
    "SanitizerError",
    "Tensor",
    "apply",
    "check_valid_dtype",
    "default_dtype",
    "dtype_scope",
    "gradcheck",
    "inference_mode",
    "is_grad_enabled",
    "no_grad",
    "numeric_gradient",
    "sanitize_enabled",
    "sanitize_mode",
    "set_default_dtype",
]
