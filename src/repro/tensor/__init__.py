"""Tape-based reverse-mode automatic differentiation over numpy arrays.

This package is the lowest substrate of the reproduction: the paper's
framework (Keras/TensorFlow) is replaced by a small, well-tested autograd
engine.  :class:`~repro.tensor.tensor.Tensor` wraps a numpy array and records
the operations applied to it on a tape; calling :meth:`Tensor.backward`
propagates gradients back through the tape.

The op surface is intentionally small but complete enough to express every
model in the paper (ResNet, DenseNet, TextCNN) and the diversity-driven loss
(Eq. 10/11 of the paper), whose gradient is exercised directly through the
``l2norm`` op.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.grad_check import gradcheck, numeric_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "gradcheck",
    "numeric_gradient",
]
