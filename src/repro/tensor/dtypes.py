"""The single dtype policy for the whole stack.

Every float array the library creates from non-array data (python lists,
scalars, integer arrays) uses :func:`default_dtype`; float arrays passed
in keep their dtype.  The default is float32 — the dtype the paper's
Keras/TensorFlow models train in — and can be overridden:

* process-wide via the ``REPRO_DTYPE`` environment variable,
* programmatically via :func:`set_default_dtype`,
* locally via the :func:`dtype_scope` context manager.

The test-suite pins float64 (see ``tests/conftest.py``) so golden-run
fingerprints stay stable and finite-difference gradient checks remain
tight; gradcheck always runs in float64 regardless of the default.
"""

from __future__ import annotations

import contextlib
import os

import numpy as np

_DEFAULT: np.dtype = np.dtype(os.environ.get("REPRO_DTYPE", "float32"))
if _DEFAULT.kind != "f":
    raise ValueError(f"REPRO_DTYPE must name a float dtype, got {_DEFAULT}")

# Real numeric kinds a Tensor may hold: float, int, unsigned int, bool.
# Everything else (object, str, bytes, void, complex, datetime) fails a
# kernel eventually — reject it at construction with a clear message.
_VALID_KINDS = frozenset("fiub")


def check_valid_dtype(dtype, context: str = "Tensor data") -> np.dtype:
    """Validate that ``dtype`` is real-numeric under the library policy.

    Mirrors MyGrad's ``_check_valid_dtype``: a clear ``TypeError`` at the
    boundary beats a cast error ten kernels deep.  Returns the resolved
    ``np.dtype`` so callers can chain on it.
    """
    resolved = np.dtype(dtype)
    if resolved.kind not in _VALID_KINDS:
        raise TypeError(
            f"{context} must be real-numeric (float/int/uint/bool); got "
            f"dtype {resolved!r}. Object, string and complex arrays are "
            "not valid Tensor payloads — convert to a numeric array first.")
    return resolved


def default_dtype() -> np.dtype:
    """The dtype used when the library materialises new float arrays."""
    return _DEFAULT


def set_default_dtype(dtype) -> np.dtype:
    """Set the process-wide default float dtype; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    resolved = np.dtype(dtype)
    if resolved.kind != "f":
        raise ValueError(f"default dtype must be a float dtype, got {resolved}")
    _DEFAULT = resolved
    return previous


@contextlib.contextmanager
def dtype_scope(dtype):
    """Temporarily switch the default float dtype within a block."""
    previous = set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)
