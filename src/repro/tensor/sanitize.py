"""Runtime numerics sanitizer hooked into the registry dispatch path.

The op registry gives the whole stack one choke point —
:func:`repro.tensor.tensor.apply` — so numeric invariants can be enforced
for *every* operation without instrumenting call sites.  Inside
:func:`sanitize_mode`, each dispatch is checked after its forward kernel
(and each gradient after its backward kernel) for:

* **NaN/Inf** — a non-finite value anywhere in a float output.  Ortega et
  al. ("Diversity and Generalization in Neural Network Ensembles") show
  diversity estimates become meaningless once members diverge silently;
  this turns the silent divergence into a loud, *named* failure.
* **dtype drift** — float inputs that disagree with each other, or an
  output whose float dtype differs from its inputs'.  Exactly the bug
  class the RL003 lint rule prevents statically; the sanitizer catches
  what slips through dynamic constructors.
* **shape** — elementwise-tagged ops must produce the broadcast of their
  input shapes; every op must produce a real ndarray (or scalar).

All checks raise :class:`SanitizerError` naming the op, the failing
check, and the input shapes/dtypes, so a NaN born ten layers deep in a
DenseNet points at its kernel instead of surfacing as a garbage accuracy.

Off-path cost is a single flag read per dispatch: the sanitizer performs
no op dispatches itself (raw ``np.isfinite`` only), so the taped graph —
and therefore golden-run parity — is bit-identical with it on or off.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Optional, Tuple

import numpy as np

_state = threading.local()


class SanitizerError(RuntimeError):
    """A numeric invariant failed at op dispatch.

    Attributes
    ----------
    op_name: the registered op whose kernel produced the bad value.
    check: which invariant failed (``"non-finite"``, ``"dtype-drift"``,
        ``"shape"``).
    detail: human-readable specifics (counts, shapes, dtypes).
    """

    def __init__(self, op_name: str, check: str, detail: str):
        super().__init__(f"sanitize: op '{op_name}' failed {check} check: {detail}")
        self.op_name = op_name
        self.check = check
        self.detail = detail


def sanitize_enabled() -> bool:
    """Whether op dispatches are currently being sanitized."""
    return getattr(_state, "enabled", False)


@contextlib.contextmanager
def sanitize_mode(enabled: bool = True):
    """Check every op dispatch for NaN/Inf, dtype drift and bad shapes.

    Nestable and thread-local (matching ``no_grad``).  Intended for CI
    golden runs, debugging diverging members, and the fault-injection
    harnesses — the checks cost roughly one extra pass over each output,
    so leave it off in benchmark timings.
    """
    previous = sanitize_enabled()
    _state.enabled = bool(enabled)
    try:
        yield
    finally:
        _state.enabled = previous


def _describe(arrays: Tuple[np.ndarray, ...]) -> str:
    rendered = ", ".join(
        f"{tuple(np.shape(a))}:{getattr(a, 'dtype', type(a).__name__)}"
        for a in arrays)
    return f"inputs [{rendered}]"


def check_forward(op, arrays: Tuple[np.ndarray, ...], params: dict,
                  out) -> None:
    """Validate a forward kernel's output; raise :class:`SanitizerError`."""
    if not isinstance(out, np.ndarray) and not np.isscalar(out):
        raise SanitizerError(
            op.name, "shape",
            f"kernel returned {type(out).__name__}, not an ndarray; "
            + _describe(arrays))
    out_arr = np.asarray(out)

    float_dtypes = [a.dtype for a in arrays
                    if isinstance(a, np.ndarray) and a.dtype.kind == "f"]
    if float_dtypes:
        first = float_dtypes[0]
        if any(d != first for d in float_dtypes[1:]):
            raise SanitizerError(
                op.name, "dtype-drift",
                "float inputs disagree; " + _describe(arrays))
        if out_arr.dtype.kind == "f" and out_arr.dtype != first:
            raise SanitizerError(
                op.name, "dtype-drift",
                f"output dtype {out_arr.dtype} != input dtype {first}; "
                + _describe(arrays))

    if "elementwise" in getattr(op, "tags", ()):
        expected = np.broadcast_shapes(
            *(a.shape for a in arrays if isinstance(a, np.ndarray)))
        if tuple(out_arr.shape) != tuple(expected):
            raise SanitizerError(
                op.name, "shape",
                f"elementwise output shape {tuple(out_arr.shape)} != "
                f"broadcast shape {tuple(expected)}; " + _describe(arrays))

    if out_arr.dtype.kind == "f" and not np.isfinite(out_arr).all():
        bad = int((~np.isfinite(out_arr)).sum())
        raise SanitizerError(
            op.name, "non-finite",
            f"forward output shape {tuple(out_arr.shape)} contains {bad} "
            "NaN/Inf value(s); " + _describe(arrays))


def check_backward(op, grads, parents) -> None:
    """Validate the gradients a backward kernel returned."""
    for index, grad in enumerate(grads):
        if grad is None:
            continue
        grad_arr = np.asarray(grad)
        if grad_arr.dtype.kind == "f" and not np.isfinite(grad_arr).all():
            bad = int((~np.isfinite(grad_arr)).sum())
            parent_shape: Optional[tuple] = None
            if index < len(parents):
                parent_shape = tuple(parents[index].shape)
            raise SanitizerError(
                op.name, "non-finite",
                f"backward gradient #{index} (toward input shape "
                f"{parent_shape}) contains {bad} NaN/Inf value(s)")
