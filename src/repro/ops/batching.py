"""Batch-invariant GEMM blocking for micro-batched serving.

Coalescing several serving requests into one stacked forward pass is the
classic ensemble-serving throughput lever, but a naive row-stack is *not*
bit-identical to solo execution: BLAS picks its GEMM kernel (blocking,
packing, vectorisation strategy) from the full ``M×K×N`` problem shape,
so ``(A @ B)[:m]`` and ``A[:m] @ B`` may differ in the last ulp — and the
serving contract promises byte-for-byte parity between a batched answer
and the same request served alone.

The fix is to make the GEMM geometry a function of the *request*, not the
batch: while a batch cell size ``R`` is declared (via :func:`batch_cell`),
every 2-D ``matmul`` dispatch computes its output in independent row
blocks of exactly ``R`` rows::

    out[i : i + R] = x[i : i + R] @ y        # one BLAS call per block

Each block is the very GEMM a solo request of ``R`` rows would have run —
same shapes, same strides, same kernel — so batched results are
bit-identical to solo results *by construction*, on any BLAS build.  The
scheduler only coalesces requests of equal row count, which makes every
block boundary a request boundary.

The declared cell is thread-local (each executor thread batches
independently) and costs one ``getattr`` on the hot path when disabled.
Higher-rank matmuls (e.g. conv's ``w_mat @ cols`` with a leading sample
axis) are left untouched: numpy lowers them to one 2-D GEMM per sample
already, so their geometry never depends on how many samples are stacked.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Optional

import numpy as np

_state = threading.local()

__all__ = ["batch_cell", "batch_cell_rows", "blocked_matmul"]


def batch_cell_rows() -> Optional[int]:
    """The active cell size (rows per request), or None when disabled."""
    return getattr(_state, "cell", None)


@contextlib.contextmanager
def batch_cell(rows: int) -> Iterator[None]:
    """Declare that stacked activations are ``rows``-row request cells.

    While active, 2-D matmul forwards run block-by-block at this row
    count (see module docstring).  Nests; ``rows`` must be positive.
    """
    rows = int(rows)
    if rows < 1:
        raise ValueError(f"batch cell must be >= 1 row, got {rows}")
    previous = batch_cell_rows()
    _state.cell = rows
    try:
        yield
    finally:
        _state.cell = previous


def blocked_matmul(x: np.ndarray, y: np.ndarray, cell: int) -> np.ndarray:
    """``x @ y`` computed in independent ``cell``-row blocks of ``x``.

    Equivalent in exact arithmetic; in floating point each block is
    bit-identical to a standalone ``x[i:i+cell] @ y``.  A trailing
    partial block runs at its own (smaller) row count — matching the
    solo execution of a request that genuinely had fewer rows.
    """
    n = x.shape[0]
    if n <= cell:
        return x @ y
    first = x[:cell] @ y
    out = np.empty((n,) + first.shape[1:], dtype=first.dtype)
    out[:cell] = first
    for start in range(cell, n, cell):
        out[start:start + cell] = x[start:start + cell] @ y
    return out
