"""Arithmetic kernels: add/sub/mul/div/neg/pow/matmul.

Backward arithmetic mirrors the pre-registry closure implementations
operation-for-operation — golden-run parity depends on it.  Broadcasting
is resolved by the caller's gradient accumulation (``_sum_to_shape``), so
kernels return gradients in the *output* shape.
"""

from __future__ import annotations

import numpy as np

from repro.ops.batching import batch_cell_rows, blocked_matmul
from repro.ops.registry import register


def _add_forward(ctx, x, y):
    return x + y


def _add_backward(ctx, g):
    return (g, g)


def _neg_forward(ctx, x):
    return -x


def _neg_backward(ctx, g):
    return (-g,)


def _sub_forward(ctx, x, y):
    return x - y


def _sub_backward(ctx, g):
    return (g, -g)


def _mul_forward(ctx, x, y):
    ctx.x, ctx.y = x, y
    return x * y


def _mul_backward(ctx, g):
    needs = ctx.needs
    return (g * ctx.y if needs[0] else None,
            g * ctx.x if needs[1] else None)


def _div_forward(ctx, x, y):
    ctx.x, ctx.y = x, y
    return x / y


def _div_backward(ctx, g):
    needs = ctx.needs
    return (g / ctx.y if needs[0] else None,
            -g * ctx.x / (ctx.y ** 2) if needs[1] else None)


def _pow_forward(ctx, x, exponent):
    ctx.x, ctx.exponent = x, exponent
    return x ** exponent


def _pow_backward(ctx, g):
    exponent = ctx.exponent
    return (g * exponent * ctx.x ** (exponent - 1),)


def _matmul_forward(ctx, x, y):
    ctx.x, ctx.y = x, y
    # Micro-batched serving declares a request-cell size: 2-D GEMMs then
    # run block-by-block at that row count so each coalesced request sees
    # the exact BLAS geometry of a solo call (see repro.ops.batching).
    cell = batch_cell_rows()
    if cell is not None and x.ndim == 2 and y.ndim == 2 and \
            x.shape[0] > cell:
        return blocked_matmul(x, y, cell)
    return x @ y


def _matmul_backward(ctx, g):
    needs = ctx.needs
    return (g @ np.swapaxes(ctx.y, -1, -2) if needs[0] else None,
            np.swapaxes(ctx.x, -1, -2) @ g if needs[1] else None)


# The "elementwise" tag declares the output shape to be the broadcast of
# the input shapes — the runtime sanitizer (repro.tensor.sanitize)
# verifies exactly that for tagged ops.
register("add", _add_forward, _add_backward, tags=("elementwise",))
register("neg", _neg_forward, _neg_backward, tags=("elementwise",))
register("sub", _sub_forward, _sub_backward, tags=("elementwise",))
register("mul", _mul_forward, _mul_backward, tags=("elementwise",))
register("div", _div_forward, _div_backward, tags=("elementwise",))
register("pow", _pow_forward, _pow_backward, tags=("elementwise",))
register("matmul", _matmul_forward, _matmul_backward)
