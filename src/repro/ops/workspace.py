"""A pool of reusable scratch buffers for allocation-heavy kernels.

``im2col`` materialises a patch matrix that is usually the single largest
allocation of a training step; with fixed batch shapes the same-sized
buffer is re-allocated every call.  The pool hands such buffers out and
takes them back, so steady-state training/inference does one allocation
per distinct shape instead of one per call.

Ownership protocol: a kernel ``acquire``s a buffer in its forward pass and
records it in ``ctx.workspaces``; the tensor dispatcher ``release``s it as
soon as the op's backward has run (or immediately when the op is not
taped, e.g. under the inference fast path).  Buffers referenced by a graph
that is never backpropagated are simply garbage-collected — the pool only
tracks free buffers, never checked-out ones.

Thread safety: the free lists are **thread-local**.  The concurrent
serving executor runs member forwards on a thread pool, and a shared
free list would let two conv kernels pop the *same* buffer and overwrite
each other's patch matrices mid-GEMM.  Per-thread pools make
acquire/release lock-free and race-free; the acquire→release pair always
happens on one thread (the dispatcher releases in the same call stack
that acquired), so buffers never migrate between pools.  The cost is one
steady-state buffer set per worker thread — bounded by the executor's
pool size.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

import numpy as np

_MAX_PER_KEY = 8

_local = threading.local()


def _free() -> Dict[Tuple[tuple, np.dtype], List[np.ndarray]]:
    """This thread's free lists (created empty on first touch)."""
    pool = getattr(_local, "free", None)
    if pool is None:
        pool = _local.free = {}
    return pool


def acquire(shape: tuple, dtype) -> np.ndarray:
    """Return an uninitialised buffer of ``shape``/``dtype`` from the pool."""
    key = (tuple(shape), np.dtype(dtype))
    stack = _free().get(key)
    if stack:
        return stack.pop()
    return np.empty(shape, dtype=dtype)


def release(array: np.ndarray) -> None:
    """Return a buffer acquired via :func:`acquire` to the pool."""
    key = (array.shape, array.dtype)
    stack = _free().setdefault(key, [])
    if len(stack) < _MAX_PER_KEY:
        stack.append(array)


def clear() -> None:
    """Drop this thread's pooled buffers (tests; memory pressure)."""
    _free().clear()


def pooled_bytes() -> int:
    """Total bytes currently held by this thread's free pooled buffers."""
    return sum(b.nbytes for stack in _free().values() for b in stack)
