"""Shape/structure kernels: reshape, transpose, getitem, concat, stack, pad."""

from __future__ import annotations

import numpy as np

from repro.ops.registry import register


def _reshape_forward(ctx, x, shape):
    ctx.original = x.shape
    return x.reshape(shape)


def _reshape_backward(ctx, g):
    return (g.reshape(ctx.original),)


def _transpose_forward(ctx, x, axes):
    ctx.inverse = np.argsort(axes)
    return x.transpose(axes)


def _transpose_backward(ctx, g):
    return (g.transpose(ctx.inverse),)


def _getitem_forward(ctx, x, index):
    ctx.x = x
    ctx.index = index
    return x[index]


def _getitem_backward(ctx, g):
    full = np.zeros_like(ctx.x)
    np.add.at(full, ctx.index, g)
    return (full,)


def _concat_forward(ctx, *arrays, axis):
    sizes = [a.shape[axis] for a in arrays]
    ctx.axis = axis
    ctx.offsets = np.cumsum([0] + sizes)
    return np.concatenate(arrays, axis=axis)


def _concat_backward(ctx, g):
    axis = ctx.axis
    offsets = ctx.offsets
    grads = []
    for position, (start, stop) in enumerate(zip(offsets[:-1], offsets[1:])):
        if not ctx.needs[position]:
            grads.append(None)
            continue
        index = [slice(None)] * g.ndim
        index[axis] = slice(start, stop)
        grads.append(g[tuple(index)])
    return tuple(grads)


def _stack_forward(ctx, *arrays, axis):
    ctx.axis = axis
    return np.stack(arrays, axis=axis)


def _stack_backward(ctx, g):
    axis = ctx.axis
    return tuple(np.take(g, position, axis=axis) if needed else None
                 for position, needed in enumerate(ctx.needs))


def _pad1d_forward(ctx, x, padding):
    ctx.padding = padding
    return np.pad(x, ((0, 0), (0, 0), (padding, padding)))


def _pad1d_backward(ctx, g):
    padding = ctx.padding
    return (g[:, :, padding:-padding],)


def _pad2d_forward(ctx, x, padding):
    ctx.padding = padding
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def _pad2d_backward(ctx, g):
    padding = ctx.padding
    return (g[:, :, padding:-padding, padding:-padding],)


register("reshape", _reshape_forward, _reshape_backward)
register("transpose", _transpose_forward, _transpose_backward)
register("getitem", _getitem_forward, _getitem_backward)
register("concat", _concat_forward, _concat_backward)
register("stack", _stack_forward, _stack_backward)
register("pad1d", _pad1d_forward, _pad1d_backward)
register("pad2d", _pad2d_forward, _pad2d_backward)
