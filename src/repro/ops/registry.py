"""The op registry: every differentiable operation as a named kernel.

An :class:`Op` is a module-level ``forward``/``backward`` pair registered
under a stable name.  The tensor layer (:mod:`repro.tensor.tensor`)
dispatches through this registry instead of defining per-call closures, so
ops can be introspected, timed (:mod:`repro.ops.profiler`), swapped (the
fused-kernel toggle in :mod:`repro.ops.fused`), and executed without any
autograd bookkeeping (the inference fast path).

Kernel contract
---------------
``forward(ctx, *arrays, **params) -> np.ndarray``
    Operates on raw numpy arrays.  Anything the backward pass needs is
    stashed as attributes on ``ctx`` (an :class:`OpContext`).  ``params``
    are non-differentiable arguments (axes, strides, labels, ...).
``backward(ctx, grad) -> tuple[Optional[np.ndarray], ...]``
    Returns one gradient per forward input, aligned positionally; ``None``
    marks inputs that need no gradient.  ``ctx.needs`` (a tuple of bools,
    set by the dispatcher) says which inputs require gradients so kernels
    can skip dead work.

Kernels never import the tensor layer — the dependency points strictly
from :mod:`repro.tensor` down to :mod:`repro.ops`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

ForwardFn = Callable[..., np.ndarray]
BackwardFn = Callable[..., Tuple[Optional[np.ndarray], ...]]


class OpContext:
    """Per-call scratch space linking a forward pass to its backward.

    Kernels attach whatever they need (saved arrays, masks, shapes) as
    plain attributes.  Two attributes have dispatcher-level meaning:

    ``needs``
        Tuple of bools — which inputs require gradients.
    ``workspaces``
        Tuple of pooled buffers (see :mod:`repro.ops.workspace`) checked
        out by the forward pass; the dispatcher returns them to the pool
        once the backward pass has consumed them (or immediately when the
        op is not taped).
    """

    needs: Tuple[bool, ...] = ()
    workspaces: tuple = ()


class Op:
    """A registered operation: name + forward/backward kernels."""

    __slots__ = ("name", "forward", "backward", "tags")

    def __init__(self, name: str, forward: ForwardFn,
                 backward: Optional[BackwardFn], tags: Tuple[str, ...] = ()):
        self.name = name
        self.forward = forward
        self.backward = backward
        self.tags = tags

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op({self.name!r})"


_OPS: Dict[str, Op] = {}


def register(name: str, forward: ForwardFn,
             backward: Optional[BackwardFn] = None,
             tags: Tuple[str, ...] = ()) -> Op:
    """Register (or deliberately replace) the kernel pair for ``name``.

    Re-registration is allowed so tests and experiments can swap an op's
    implementation; production code registers each name exactly once at
    import time.
    """
    op = Op(name, forward, backward, tags)
    _OPS[name] = op
    return op


def get_op(name: str) -> Op:
    try:
        return _OPS[name]
    except KeyError:
        raise KeyError(
            f"unknown op '{name}'; registered: {sorted(_OPS)}") from None


def registered_ops() -> Dict[str, Op]:
    """A snapshot of the registry (name -> Op)."""
    return dict(_OPS)
