"""Fused loss kernels: softmax cross-entropy and the EDDE loss (Eq. 10/11).

Each fused kernel collapses a chain of primitive ops (5 graph nodes for
cross-entropy, 10+ for the diversity-driven loss) into a single registry
op.  The arithmetic replicates the unfused chains operation-for-operation
— same intermediate expressions, in the same order — so results are
bit-identical for fixed seeds; the win is fewer graph nodes, closures and
temporaries per training step, not different math.

``edde_loss``'s backward *is* the paper's closed-form Eq. 11 evaluated at
the softmax output, followed by the standard softmax vector-Jacobian
product.  The module-level toggle (:func:`use_fused`) lets tests and
benchmarks run the unfused chains for comparison.
"""

from __future__ import annotations

import contextlib
import threading

import numpy as np

from repro.ops.registry import register

_EPS = 1e-12

_state = threading.local()


def fused_enabled() -> bool:
    """Whether the loss wrappers should dispatch the fused kernels."""
    return getattr(_state, "fused", True)


@contextlib.contextmanager
def use_fused(enabled: bool = True):
    """Force fused kernels on/off within a block (tests, benchmarks)."""
    previous = fused_enabled()
    _state.fused = enabled
    try:
        yield
    finally:
        _state.fused = previous


# ----------------------------------------------------------------------
# softmax_cross_entropy: log_softmax -> pick -> weight -> sum -> neg
# ----------------------------------------------------------------------
def _softmax_ce_forward(ctx, logits, labels, weights):
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logp = shifted - log_norm
    batch = logits.shape[0]
    picked = logp[np.arange(batch), labels]
    ctx.logp = logp
    ctx.labels = labels
    ctx.weights = weights
    ctx.batch = batch
    return -(picked * weights).sum()


def _softmax_ce_backward(ctx, g):
    batch = ctx.batch
    g_picked = np.broadcast_to(-g, (batch,)) * ctx.weights
    full = np.zeros_like(ctx.logp)
    np.add.at(full, (np.arange(batch), ctx.labels), g_picked)
    probs = np.exp(ctx.logp)
    return (full - probs * full.sum(axis=1, keepdims=True),)


# ----------------------------------------------------------------------
# edde_loss: softmax -> pick(+eps) -> -log -> [- gamma*l2norm(probs-H)]
#            -> weight -> sum -> /batch        (paper Eq. 10)
# backward:  Eq. 11 at the softmax output, then the softmax VJP
# ----------------------------------------------------------------------
def _edde_loss_forward(ctx, logits, labels, targets, gamma, weights):
    batch = logits.shape[0]
    shifted = logits - logits.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    probs = exps / exps.sum(axis=1, keepdims=True)

    picked = probs[np.arange(batch), labels] + _EPS
    per_sample = -np.log(picked)

    has_penalty = targets is not None and gamma != 0.0
    if has_penalty:
        diff = probs - targets
        norm = np.sqrt((diff ** 2).sum(axis=1) + _EPS)
        per_sample = per_sample - norm * gamma
        ctx.diff = diff
        ctx.norm = norm

    ctx.probs = probs
    ctx.picked = picked
    ctx.labels = labels
    ctx.weights = weights
    ctx.gamma = gamma
    ctx.batch = batch
    ctx.inv_batch = 1.0 / batch
    ctx.has_penalty = has_penalty
    return (per_sample * weights).sum() * ctx.inv_batch


def _edde_loss_backward(ctx, g):
    batch = ctx.batch
    probs = ctx.probs
    # Chain through the mean/weight scaling to the per-sample losses.
    gper = np.broadcast_to(g * ctx.inv_batch, (batch,)) * ctx.weights

    # Eq. 11, CE term: -W(x) * y_c / (h_c + eps), scattered at the labels.
    grad_out = np.zeros_like(probs)
    np.add.at(grad_out, (np.arange(batch), ctx.labels), -gper / ctx.picked)

    if ctx.has_penalty:
        # Eq. 11, diversity term: -W(x)*gamma * (h - H) / ||h - H||.
        g_norm = -gper * ctx.gamma
        grad_out = grad_out + np.expand_dims(g_norm / ctx.norm, 1) * ctx.diff

    # Softmax vector-Jacobian product back to the logits.
    dot = (grad_out * probs).sum(axis=1, keepdims=True)
    return (probs * (grad_out - dot),)


register("softmax_cross_entropy", _softmax_ce_forward, _softmax_ce_backward,
         tags=("fused",))
register("edde_loss", _edde_loss_forward, _edde_loss_backward,
         tags=("fused",))
