"""The inference fast-path switch.

When enabled (together with :func:`repro.tensor.no_grad`), the tensor
dispatcher runs registry forwards on raw ndarrays and wraps results in
lightweight graph-free views instead of full ``Tensor`` nodes.  The flag
lives here — below the tensor layer — so kernels and the dispatcher can
consult it without import cycles.
"""

from __future__ import annotations

import contextlib
import threading

_state = threading.local()


def fastpath_enabled() -> bool:
    return getattr(_state, "fastpath", False)


@contextlib.contextmanager
def _fastpath(enabled: bool = True):
    """Internal toggle; use :func:`repro.tensor.inference_mode` instead."""
    previous = fastpath_enabled()
    _state.fastpath = enabled
    try:
        yield
    finally:
        _state.fastpath = previous
