"""Per-op wall-clock and allocation accounting.

Activate with the :func:`profile_ops` context manager; while active, the
tensor dispatcher reports every registry forward/backward call here.  The
overhead when inactive is a single ``is None`` check per op call.

Example
-------
::

    with profile_ops() as prof:
        result = trainer.fit(train, test, rng=0)
    result.metadata["op_profile"] = prof.summary()
    print(prof.format_table())
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional


class OpProfiler:
    """Accumulates per-op call counts, seconds, and output bytes."""

    __slots__ = ("_stats",)

    def __init__(self):
        # name -> [fwd_calls, fwd_seconds, bwd_calls, bwd_seconds, out_bytes]
        self._stats: Dict[str, list] = {}

    def _entry(self, name: str) -> list:
        entry = self._stats.get(name)
        if entry is None:
            entry = [0, 0.0, 0, 0.0, 0]
            self._stats[name] = entry
        return entry

    def record_forward(self, name: str, seconds: float, nbytes: int) -> None:
        entry = self._entry(name)
        entry[0] += 1
        entry[1] += seconds
        entry[4] += nbytes

    def record_backward(self, name: str, seconds: float) -> None:
        entry = self._entry(name)
        entry[2] += 1
        entry[3] += seconds

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, dict]:
        """Per-op stats, sorted by total seconds descending."""
        rows = {}
        order = sorted(self._stats.items(),
                       key=lambda item: -(item[1][1] + item[1][3]))
        for name, (fc, fs, bc, bs, nb) in order:
            rows[name] = {
                "forward_calls": fc,
                "forward_seconds": fs,
                "backward_calls": bc,
                "backward_seconds": bs,
                "total_seconds": fs + bs,
                "output_bytes": nb,
            }
        return rows

    def total_seconds(self) -> float:
        return sum(fs + bs for _, fs, _, bs, _ in self._stats.values())

    def format_table(self, top: int = 15) -> str:
        """Human-readable per-op table for CLI output."""
        header = (f"{'op':<24}{'fwd calls':>10}{'fwd ms':>10}"
                  f"{'bwd calls':>10}{'bwd ms':>10}{'alloc MB':>10}")
        lines = [header, "-" * len(header)]
        for name, row in list(self.summary().items())[:top]:
            lines.append(
                f"{name:<24}{row['forward_calls']:>10}"
                f"{row['forward_seconds'] * 1e3:>10.2f}"
                f"{row['backward_calls']:>10}"
                f"{row['backward_seconds'] * 1e3:>10.2f}"
                f"{row['output_bytes'] / 1e6:>10.2f}")
        lines.append(f"total op seconds: {self.total_seconds():.3f}")
        return "\n".join(lines)


# The dispatcher reads this module global on every op call; ``None`` means
# profiling is off and costs one attribute load + identity check.
_current: Optional[OpProfiler] = None


def current_profiler() -> Optional[OpProfiler]:
    return _current


@contextlib.contextmanager
def profile_ops():
    """Context manager that collects per-op stats from the dispatcher."""
    global _current
    previous = _current
    profiler = OpProfiler()
    _current = profiler
    try:
        yield profiler
    finally:
        _current = previous
