"""Registry-based differentiable op layer.

Importing this package registers every kernel module.  The tensor layer
(:mod:`repro.tensor.tensor`) dispatches through :func:`get_op`; kernels
here operate purely on numpy arrays and never import the tensor layer.
"""

from repro.ops.registry import Op, OpContext, get_op, register, registered_ops
from repro.ops.profiler import OpProfiler, current_profiler, profile_ops
from repro.ops.fastpath import fastpath_enabled

# Kernel modules register themselves on import.
from repro.ops import arithmetic as _arithmetic  # noqa: F401
from repro.ops import elementwise as _elementwise  # noqa: F401
from repro.ops import shape as _shape  # noqa: F401
from repro.ops import reduce as _reduce  # noqa: F401
from repro.ops import conv as _conv  # noqa: F401
from repro.ops import fused as _fused  # noqa: F401

__all__ = [
    "Op",
    "OpContext",
    "OpProfiler",
    "current_profiler",
    "fastpath_enabled",
    "get_op",
    "profile_ops",
    "register",
    "registered_ops",
]
