"""Elementwise kernels: nonlinearities, clip, dropout, where."""

from __future__ import annotations

import numpy as np

from repro.ops.registry import register


def _exp_forward(ctx, x):
    out = np.exp(x)
    ctx.out = out
    return out


def _exp_backward(ctx, g):
    return (g * ctx.out,)


def _log_forward(ctx, x):
    ctx.x = x
    return np.log(x)


def _log_backward(ctx, g):
    return (g / ctx.x,)


def _tanh_forward(ctx, x):
    out = np.tanh(x)
    ctx.out = out
    return out


def _tanh_backward(ctx, g):
    return (g * (1.0 - ctx.out ** 2),)


def _sigmoid_forward(ctx, x):
    out = 1.0 / (1.0 + np.exp(-x))
    ctx.out = out
    return out


def _sigmoid_backward(ctx, g):
    out = ctx.out
    return (g * out * (1.0 - out),)


def _relu_forward(ctx, x):
    mask = x > 0
    ctx.mask = mask
    return x * mask


def _relu_backward(ctx, g):
    return (g * ctx.mask,)


def _clip_forward(ctx, x, low, high):
    ctx.mask = (x >= low) & (x <= high)
    return np.clip(x, low, high)


def _clip_backward(ctx, g):
    return (g * ctx.mask,)


def _dropout_forward(ctx, x, p, rng):
    """Inverted dropout; the eval-mode identity is handled by the caller."""
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    ctx.mask = mask
    return x * mask


def _dropout_backward(ctx, g):
    return (g * ctx.mask,)


def _where_forward(ctx, a, b, condition):
    ctx.condition = condition
    return np.where(condition, a, b)


def _where_backward(ctx, g):
    needs = ctx.needs
    condition = ctx.condition
    return (np.where(condition, g, 0.0) if needs[0] else None,
            np.where(condition, 0.0, g) if needs[1] else None)


# "elementwise" tells the runtime sanitizer the output shape must equal
# the broadcast of the input shapes.  `where` is untagged: its condition
# arrives as a non-array param, so the broadcast is not derivable from
# the array inputs alone.
register("exp", _exp_forward, _exp_backward, tags=("elementwise",))
register("log", _log_forward, _log_backward, tags=("elementwise",))
register("tanh", _tanh_forward, _tanh_backward, tags=("elementwise",))
register("sigmoid", _sigmoid_forward, _sigmoid_backward, tags=("elementwise",))
register("relu", _relu_forward, _relu_backward, tags=("elementwise",))
register("clip", _clip_forward, _clip_backward, tags=("elementwise",))
register("dropout", _dropout_forward, _dropout_backward, tags=("elementwise",))
register("where", _where_forward, _where_backward)
