"""Reduction and normalisation kernels: sum, max, softmax, log_softmax, l2norm."""

from __future__ import annotations

import numpy as np

from repro.ops.registry import register


def _sum_forward(ctx, x, axis, keepdims):
    ctx.shape = x.shape
    ctx.ndim = x.ndim
    ctx.axis = axis
    ctx.keepdims = keepdims
    return x.sum(axis=axis, keepdims=keepdims)


def _sum_backward(ctx, g):
    grad = np.asarray(g)
    axis = ctx.axis
    if axis is not None and not ctx.keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        for ax in sorted(a % ctx.ndim for a in axes):
            grad = np.expand_dims(grad, ax)
    return (np.broadcast_to(grad, ctx.shape),)


def _max_forward(ctx, x, axis, keepdims):
    out = x.max(axis=axis, keepdims=keepdims)
    ctx.x = x
    ctx.out = out
    ctx.axis = axis
    ctx.keepdims = keepdims
    return out


def _max_backward(ctx, g):
    axis = ctx.axis
    grad = np.asarray(g)
    expanded = ctx.out
    if not ctx.keepdims:
        grad = np.expand_dims(grad, axis)
        expanded = np.expand_dims(ctx.out, axis)
    mask = (ctx.x == expanded).astype(ctx.x.dtype)
    # Split gradient evenly across ties so gradcheck stays exact.
    mask /= mask.sum(axis=axis, keepdims=True)
    return (mask * grad,)


def _softmax_forward(ctx, x, axis):
    shifted = x - x.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out = exps / exps.sum(axis=axis, keepdims=True)
    ctx.out = out
    ctx.axis = axis
    return out


def _softmax_backward(ctx, g):
    out = ctx.out
    dot = (g * out).sum(axis=ctx.axis, keepdims=True)
    return (out * (g - dot),)


def _log_softmax_forward(ctx, x, axis):
    shifted = x - x.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_norm
    ctx.out = out
    ctx.axis = axis
    return out


def _log_softmax_backward(ctx, g):
    # exp(out) is recomputed here instead of being retained from forward;
    # bit-identical, and inference never pays for it.
    probs = np.exp(ctx.out)
    return (g - probs * g.sum(axis=ctx.axis, keepdims=True),)


def _l2norm_forward(ctx, x, axis, eps):
    norm = np.sqrt((x ** 2).sum(axis=axis) + eps)
    ctx.x = x
    ctx.norm = norm
    ctx.axis = axis
    return norm


def _l2norm_backward(ctx, g):
    return (np.expand_dims(g / ctx.norm, ctx.axis) * ctx.x,)


register("sum", _sum_forward, _sum_backward)
register("max", _max_forward, _max_backward)
register("softmax", _softmax_forward, _softmax_backward)
register("log_softmax", _log_softmax_forward, _log_softmax_backward)
register("l2norm", _l2norm_forward, _l2norm_backward)
