"""Convolution and pooling kernels with pooled im2col workspaces.

Padding is *not* handled here: the :mod:`repro.nn.functional` wrappers
apply the (differentiable) ``pad1d``/``pad2d`` ops first, exactly as the
pre-registry implementation did, so the autograd graph and arithmetic are
unchanged.  The im2col patch matrix — the hottest allocation in training —
is checked out of :mod:`repro.ops.workspace` and recorded in
``ctx.workspaces``; the tensor dispatcher returns it to the pool after
backward (or immediately when untaped).
"""

from __future__ import annotations

import numpy as np

from repro.ops import workspace
from repro.ops.registry import register


def _conv_output_size(size: int, kernel: int, stride: int) -> int:
    return (size - kernel) // stride + 1


def _im2col_pooled(x: np.ndarray, kh: int, kw: int, stride: int):
    """Unfold (N, C, H, W) into (N, C*kh*kw, L) using a pooled buffer.

    Returns ``(cols, buffer)`` where ``cols`` is a reshaped view of the
    pooled ``buffer``; the caller owns the buffer until it is released.
    """
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kh, stride)
    out_w = _conv_output_size(w, kw, stride)
    buffer = workspace.acquire((n, c, kh, kw, out_h, out_w), x.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            buffer[:, :, i, j] = x[:, :, i:i_max:stride, j:j_max:stride]
    return buffer.reshape(n, c * kh * kw, out_h * out_w), buffer


def _col2im(cols, x_shape, kh, kw, stride):
    """Fold patch columns back onto the input, summing overlaps."""
    n, c, h, w = x_shape
    out_h = _conv_output_size(h, kh, stride)
    out_w = _conv_output_size(w, kw, stride)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    x = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            x[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j]
    return x


def _conv2d_forward(ctx, x, weight, *rest, stride):
    bias = rest[0] if rest else None
    n, c, h, w = x.shape
    f, _, kh, kw = weight.shape
    out_h = _conv_output_size(h, kh, stride)
    out_w = _conv_output_size(w, kw, stride)

    cols, buffer = _im2col_pooled(x, kh, kw, stride)   # (N, C*KH*KW, L)
    w_mat = weight.reshape(f, -1)                      # (F, C*KH*KW)
    out = w_mat @ cols                                 # (N, F, L) via BLAS
    if bias is not None:
        out += bias.reshape(1, f, 1)

    ctx.workspaces = (buffer,)
    ctx.cols = cols
    ctx.w_mat = w_mat
    ctx.weight_shape = weight.shape
    ctx.x_shape = (n, c, h, w)
    ctx.dims = (n, f, out_h, out_w, kh, kw, stride)
    return out.reshape(n, f, out_h, out_w)


def _conv2d_backward(ctx, g):
    n, f, out_h, out_w, kh, kw, stride = ctx.dims
    needs = ctx.needs
    g_mat = np.ascontiguousarray(g.reshape(n, f, out_h * out_w))
    grad_b = g_mat.sum(axis=(0, 2)) if len(needs) > 2 and needs[2] else None
    grad_w = None
    if needs[1]:
        grad_w = (g_mat @ ctx.cols.transpose(0, 2, 1)).sum(axis=0)
        grad_w = grad_w.reshape(ctx.weight_shape)
    grad_x = None
    if needs[0]:
        grad_cols = ctx.w_mat.T @ g_mat
        grad_x = _col2im(grad_cols, ctx.x_shape, kh, kw, stride)
    if len(needs) > 2:
        return (grad_x, grad_w, grad_b)
    return (grad_x, grad_w)


def _conv1d_forward(ctx, x, weight, *rest, stride):
    bias = rest[0] if rest else None
    n, c, length = x.shape
    f, _, k = weight.shape
    out_l = _conv_output_size(length, k, stride)

    buffer = workspace.acquire((n, c, k, out_l), x.dtype)
    for i in range(k):
        buffer[:, :, i] = x[:, :, i:i + stride * out_l:stride]
    cols = buffer.reshape(n, c * k, out_l)
    w_mat = weight.reshape(f, -1)
    out = w_mat @ cols                                 # (N, F, L) via BLAS
    if bias is not None:
        out = out + bias.reshape(1, f, 1)

    ctx.workspaces = (buffer,)
    ctx.cols = cols
    ctx.w_mat = w_mat
    ctx.weight_shape = weight.shape
    ctx.dims = (n, c, length, f, k, out_l, stride)
    return out


def _conv1d_backward(ctx, g):
    n, c, length, f, k, out_l, stride = ctx.dims
    needs = ctx.needs
    g = np.ascontiguousarray(g)
    grad_b = g.sum(axis=(0, 2)) if len(needs) > 2 and needs[2] else None
    grad_w = None
    if needs[1]:
        grad_w = (g @ ctx.cols.transpose(0, 2, 1)).sum(axis=0)
        grad_w = grad_w.reshape(ctx.weight_shape)
    grad_x = None
    if needs[0]:
        grad_cols = (ctx.w_mat.T @ g).reshape(n, c, k, out_l)
        grad_x = np.zeros((n, c, length), dtype=g.dtype)
        for i in range(k):
            grad_x[:, :, i:i + stride * out_l:stride] += grad_cols[:, :, i]
    if len(needs) > 2:
        return (grad_x, grad_w, grad_b)
    return (grad_x, grad_w)


def _max_pool2d_forward(ctx, x, kernel, stride):
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel, stride)
    out_w = _conv_output_size(w, kernel, stride)

    cols = workspace.acquire((n, c, kernel * kernel, out_h, out_w), x.dtype)
    for i in range(kernel):
        for j in range(kernel):
            cols[:, :, i * kernel + j] = x[
                :, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride
            ]
    argmax = cols.argmax(axis=2)
    out = np.take_along_axis(cols, argmax[:, :, None], axis=2)[:, :, 0]
    # Backward needs only the argmax and shapes, so the patch buffer goes
    # straight back to the pool.
    workspace.release(cols)

    ctx.argmax = argmax
    ctx.cols_shape = (n, c, kernel * kernel, out_h, out_w)
    ctx.x_shape = x.shape
    ctx.dtype = x.dtype
    ctx.dims = (kernel, stride, out_h, out_w)
    return out


def _max_pool2d_backward(ctx, g):
    kernel, stride, out_h, out_w = ctx.dims
    grad_cols = np.zeros(ctx.cols_shape, dtype=ctx.dtype)
    np.put_along_axis(grad_cols, ctx.argmax[:, :, None], g[:, :, None], axis=2)
    grad_x = np.zeros(ctx.x_shape, dtype=ctx.dtype)
    for i in range(kernel):
        for j in range(kernel):
            grad_x[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += (
                grad_cols[:, :, i * kernel + j]
            )
    return (grad_x,)


def _avg_pool2d_forward(ctx, x, kernel, stride):
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel, stride)
    out_w = _conv_output_size(w, kernel, stride)
    scale = 1.0 / (kernel * kernel)

    out = np.zeros((n, c, out_h, out_w), dtype=x.dtype)
    for i in range(kernel):
        for j in range(kernel):
            out += x[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride]
    out *= scale

    ctx.x_shape = x.shape
    ctx.dtype = x.dtype
    ctx.dims = (kernel, stride, out_h, out_w, scale)
    return out


def _avg_pool2d_backward(ctx, g):
    kernel, stride, out_h, out_w, scale = ctx.dims
    grad_x = np.zeros(ctx.x_shape, dtype=ctx.dtype)
    scaled = g * scale
    for i in range(kernel):
        for j in range(kernel):
            grad_x[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += scaled
    return (grad_x,)


register("conv2d", _conv2d_forward, _conv2d_backward)
register("conv1d", _conv1d_forward, _conv1d_backward)
register("max_pool2d", _max_pool2d_forward, _max_pool2d_backward)
register("avg_pool2d", _avg_pool2d_forward, _avg_pool2d_backward)
