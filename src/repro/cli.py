"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``train``
    Fit one ensemble method on a named scenario and print its summary.
``compare``
    Fit several methods on one scenario and print the comparison table.
``beta``
    Run the adaptive β-selection procedure on a scenario's training set.
``info``
    List available scenarios, methods and models.

Examples
--------
::

    python -m repro.cli train --method edde --scenario c100-resnet --seed 0
    python -m repro.cli train --method edde --scenario c100-resnet --seed 0 \\
        --checkpoint-dir runs/edde --max-retries 2
    python -m repro.cli train --method edde --scenario c100-resnet --seed 0 \\
        --checkpoint-dir runs/edde --resume
    python -m repro.cli compare --scenario c10-resnet --methods single,snapshot,edde
    python -m repro.cli beta --scenario c100-resnet
    python -m repro.cli info
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import format_table, percent
from repro.core import CheckpointError, ensemble_diversity, save_ensemble
from repro.experiments import ALL_METHODS, build_scenario, run_effectiveness, run_method
from repro.experiments.runner import make_fault_tolerance
from repro.models import available_models


def _add_scenario_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", required=True,
                        help="e.g. c10-resnet, c100-densenet, imdb-textcnn")
    parser.add_argument("--seed", type=int, default=0)


def _cmd_train(args) -> int:
    scenario = build_scenario(args.scenario, rng=args.seed)
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    try:
        fault_tolerance = make_fault_tolerance(
            scenario, checkpoint_dir=args.checkpoint_dir, resume=args.resume,
            max_retries=args.max_retries)
    except CheckpointError as error:
        print(f"error: cannot resume: {error}", file=sys.stderr)
        return 2
    if fault_tolerance.resume_from is not None:
        print(f"resuming {args.method} from checkpoint round "
              f"{fault_tolerance.resume_from.round} in {args.checkpoint_dir}")
    result = run_method(args.method, scenario, rng=args.seed,
                        fault_tolerance=fault_tolerance,
                        profile_ops=args.profile_ops)
    print(f"method:            {result.method}")
    print(f"ensemble accuracy: {percent(result.final_accuracy)}")
    print(f"average member:    {percent(result.average_member_accuracy())}")
    print(f"total epochs:      {result.total_epochs}")
    round_seconds = result.metadata.get("round_seconds", [])
    if round_seconds:
        rendered = " ".join(f"{s:.2f}s" for s in round_seconds)
        print(f"round wall-clock:  {rendered} (total {sum(round_seconds):.2f}s)")
    if len(result.ensemble) >= 2:
        probs = result.ensemble.member_probs(scenario.split.test.x)
        print(f"diversity (Eq. 7): {ensemble_diversity(probs):.4f}")
    faults = result.metadata.get("faults", [])
    if faults:
        skipped = sum(1 for f in faults if f["event"] == "skipped")
        retried = sum(1 for f in faults if f["event"] == "diverged")
        print(f"faults:            {retried} diverged attempt(s), "
              f"{skipped} member(s) skipped")
    if args.profile_ops:
        print(_render_op_profile(result.metadata.get("op_profile", {})))
    if args.save:
        save_ensemble(result.ensemble, args.save)
        print(f"saved ensemble to {args.save}")
    return 0


def _render_op_profile(profile: dict, top: int = 15) -> str:
    """Render the ``op_profile`` metadata dict as a per-op table."""
    header = (f"{'op':<24}{'fwd calls':>10}{'fwd ms':>10}"
              f"{'bwd calls':>10}{'bwd ms':>10}{'alloc MB':>10}")
    lines = ["op profile (top ops by total time):", header, "-" * len(header)]
    total = 0.0
    for name, row in list(profile.items())[:top]:
        total += row["total_seconds"]
        lines.append(
            f"{name:<24}{row['forward_calls']:>10}"
            f"{row['forward_seconds'] * 1e3:>10.2f}"
            f"{row['backward_calls']:>10}"
            f"{row['backward_seconds'] * 1e3:>10.2f}"
            f"{row['output_bytes'] / 1e6:>10.2f}")
    remaining = sum(r["total_seconds"] for r in profile.values()) - total
    if remaining > 0:
        lines.append(f"(+ {remaining * 1e3:.2f} ms across "
                     f"{max(0, len(profile) - top)} other ops)")
    return "\n".join(lines)


def _cmd_compare(args) -> int:
    scenario = build_scenario(args.scenario, rng=args.seed)
    methods = tuple(args.methods.split(","))
    results = run_effectiveness(scenario, methods=methods, rng=args.seed)
    rows = [[r.method, percent(r.final_accuracy),
             percent(r.average_member_accuracy()), r.total_epochs]
            for r in results.values()]
    print(format_table(["Method", "Ensemble acc", "Avg member", "Epochs"],
                       rows, title=f"Comparison on {args.scenario}"))
    return 0


def _cmd_beta(args) -> int:
    from repro.core import select_beta

    scenario = build_scenario(args.scenario, rng=args.seed)
    selection = select_beta(scenario.factory, scenario.split.train,
                            n_folds=args.folds, lr=scenario.lr,
                            batch_size=scenario.batch_size,
                            teacher_epochs=scenario.epochs_per_model,
                            probe_epochs=args.probe_epochs, rng=args.seed)
    rows = [[f"{p.beta:.2f}", percent(p.accuracy_seen_fold),
             percent(p.accuracy_unseen_fold), f"{p.gap:+.4f}"]
            for p in selection.probes]
    print(format_table(["beta", "seen fold", "unseen fold", "gap"], rows,
                       title="Adaptive beta search (Sec. IV-B)"))
    print(f"selected beta = {selection.beta}")
    return 0


def _cmd_info(_args) -> int:
    print("scenarios: c10-resnet, c10-densenet, c100-resnet, c100-densenet, "
          "imdb-textcnn, mr-textcnn")
    print(f"methods:   {', '.join(ALL_METHODS + ('ncl',))}")
    print(f"models:    {', '.join(available_models())}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EDDE reproduction command-line interface")
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser("train", help="fit one ensemble method")
    _add_scenario_arg(train)
    train.add_argument("--method", default="edde",
                       choices=ALL_METHODS + ("ncl",))
    train.add_argument("--save", default=None,
                       help="path to save the fitted ensemble (.npz)")
    train.add_argument("--checkpoint-dir", default=None,
                       help="directory for per-round training checkpoints")
    train.add_argument("--resume", action="store_true",
                       help="resume from the latest checkpoint in "
                            "--checkpoint-dir")
    train.add_argument("--max-retries", type=int, default=None,
                       help="retries per diverged member before skipping it")
    train.add_argument("--profile-ops", action="store_true",
                       help="collect per-op wall-clock/allocation stats "
                            "during the fit and print a summary table")
    train.set_defaults(func=_cmd_train)

    compare = commands.add_parser("compare", help="compare several methods")
    _add_scenario_arg(compare)
    compare.add_argument("--methods", default="single,snapshot,edde")
    compare.set_defaults(func=_cmd_compare)

    beta = commands.add_parser("beta", help="adaptive beta selection")
    _add_scenario_arg(beta)
    beta.add_argument("--folds", type=int, default=6)
    beta.add_argument("--probe-epochs", type=int, default=3)
    beta.set_defaults(func=_cmd_beta)

    info = commands.add_parser("info", help="list scenarios/methods/models")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
