"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``train``
    Fit one ensemble method on a named scenario and print its summary.
``compare``
    Fit several methods on one scenario and print the comparison table.
``beta``
    Run the adaptive β-selection procedure on a scenario's training set.
``serve-eval``
    Stand an :class:`~repro.serving.InferenceService` up on a saved
    ensemble and drive a request stream at it, optionally under injected
    faults (corrupt archives, flaky/slow members, poisoned requests).
``serve-drift``
    Replay a drift schedule through the full online story — drift
    monitors (:mod:`repro.serving.monitor`), member health scoring and
    the closed-loop repair subsystem (:mod:`repro.serving.repair`) —
    and archive ``results/BENCH_drift.json`` with detection latency,
    pre/drifted/post-repair accuracy and the repair audit trail.
``serve-load``
    Drive the concurrent serving pipeline
    (:mod:`repro.serving.transport`) with the deterministic load harness
    (:mod:`repro.experiments.serve_load`): a T × {batching on, off}
    sweep of closed-loop clients plus one open-loop replay, archiving
    ``results/BENCH_serving.json`` with QPS, p50/p95/p99 latency and the
    batched-vs-solo bit-parity verdict.
``serve-overload``
    Run the virtual-time overload suite
    (:mod:`repro.experiments.serve_overload`): measure capacity with a
    ramp, then serve {0.5×, 1×, 2×} capacity with and without admission
    control + brownout, archiving ``results/BENCH_overload.json`` with
    goodput, p99 and the acceptance verdicts.
``serve-chaos``
    Replay seeded chaos schedules (arrival storms, pump stalls, slow
    bursts, executor-task deaths — :mod:`repro.experiments.serve_chaos`)
    against the resilient pipeline and check the invariants: no
    deadlock, no torn batch, conservation of the overload ledger.
``grid``
    Execute a declarative experiment grid from a JSON spec
    (:class:`~repro.experiments.grid.GridSpec`): expand the factor table
    into the run table, execute this process's shard (``--shard i/n``)
    with per-run checkpoint/resume, and — once every run has a manifest
    entry — write the aggregated ``GRID_<name>.json`` artifact.
``lint``
    Run the repo's AST-based invariant checker (rules RL001–RL005:
    import layering, determinism, dtype policy, op-registry contract,
    fault-path hygiene) over source trees; exits non-zero on violations.
``info``
    List available scenarios, methods and models.

Examples
--------
::

    python -m repro.cli train --method edde --scenario c100-resnet --seed 0
    python -m repro.cli train --method edde --scenario c100-resnet --seed 0 \\
        --checkpoint-dir runs/edde --max-retries 2
    python -m repro.cli train --method edde --scenario c100-resnet --seed 0 \\
        --checkpoint-dir runs/edde --resume
    python -m repro.cli compare --scenario c10-resnet --methods single,snapshot,edde
    python -m repro.cli beta --scenario c100-resnet
    python -m repro.cli serve-eval --scenario c100-resnet --ensemble e.npz \\
        --requests 32 --inject corrupt:0,flaky:1:every=2 --deadline 0.5
    python -m repro.cli serve-drift --schedule step-moderate --seed 0
    python -m repro.cli serve-drift --schedule smoke --max-repairs 1 \\
        --checkpoint-dir runs/drift-repairs
    python -m repro.cli serve-load --sizes 1,4,8 --requests 256 --clients 16
    python -m repro.cli serve-overload --seed 0
    python -m repro.cli serve-chaos --schedules 100 --seed 0
    python -m repro.cli grid --spec specs/table5.json --out runs/grids
    python -m repro.cli grid --spec specs/table5.json --out runs/grids \\
        --shard 1/4 --workers 2 --resume
    python -m repro.cli grid --spec specs/table5.json --out runs/grids \\
        --aggregate-only
    python -m repro.cli lint src benchmarks --stats results/lint_stats.json
    python -m repro.cli info
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.analysis import format_table, percent
from repro.core import CheckpointError, ensemble_diversity, save_ensemble
from repro.experiments import ALL_METHODS, build_scenario, run_effectiveness, run_method
from repro.experiments.runner import make_fault_tolerance
from repro.models import available_models


def _add_scenario_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", required=True,
                        help="e.g. c10-resnet, c100-densenet, imdb-textcnn")
    parser.add_argument("--seed", type=int, default=0)


def _cmd_train(args) -> int:
    scenario = build_scenario(args.scenario, rng=args.seed)
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    try:
        fault_tolerance = make_fault_tolerance(
            scenario, checkpoint_dir=args.checkpoint_dir, resume=args.resume,
            max_retries=args.max_retries)
    except CheckpointError as error:
        print(f"error: cannot resume: {error}", file=sys.stderr)
        return 2
    if fault_tolerance.resume_from is not None:
        print(f"resuming {args.method} from checkpoint round "
              f"{fault_tolerance.resume_from.round} in {args.checkpoint_dir}")
    result = run_method(args.method, scenario, rng=args.seed,
                        fault_tolerance=fault_tolerance,
                        profile_ops=args.profile_ops)
    print(f"method:            {result.method}")
    print(f"ensemble accuracy: {percent(result.final_accuracy)}")
    print(f"average member:    {percent(result.average_member_accuracy())}")
    print(f"total epochs:      {result.total_epochs}")
    round_seconds = result.metadata.get("round_seconds", [])
    if round_seconds:
        rendered = " ".join(f"{s:.2f}s" for s in round_seconds)
        print(f"round wall-clock:  {rendered} (total {sum(round_seconds):.2f}s)")
    if len(result.ensemble) >= 2:
        probs = result.ensemble.member_probs(scenario.split.test.x)
        print(f"diversity (Eq. 7): {ensemble_diversity(probs):.4f}")
    faults = result.metadata.get("faults", [])
    if faults:
        skipped = sum(1 for f in faults if f["event"] == "skipped")
        retried = sum(1 for f in faults if f["event"] == "diverged")
        print(f"faults:            {retried} diverged attempt(s), "
              f"{skipped} member(s) skipped")
    if args.profile_ops:
        print(_render_op_profile(result.metadata.get("op_profile", {})))
    if args.save:
        save_ensemble(result.ensemble, args.save)
        print(f"saved ensemble to {args.save}")
    return 0


def _render_op_profile(profile: dict, top: int = 15) -> str:
    """Render the ``op_profile`` metadata dict as a per-op table."""
    header = (f"{'op':<24}{'fwd calls':>10}{'fwd ms':>10}"
              f"{'bwd calls':>10}{'bwd ms':>10}{'alloc MB':>10}")
    lines = ["op profile (top ops by total time):", header, "-" * len(header)]
    total = 0.0
    for name, row in list(profile.items())[:top]:
        total += row["total_seconds"]
        lines.append(
            f"{name:<24}{row['forward_calls']:>10}"
            f"{row['forward_seconds'] * 1e3:>10.2f}"
            f"{row['backward_calls']:>10}"
            f"{row['backward_seconds'] * 1e3:>10.2f}"
            f"{row['output_bytes'] / 1e6:>10.2f}")
    remaining = sum(r["total_seconds"] for r in profile.values()) - total
    if remaining > 0:
        lines.append(f"(+ {remaining * 1e3:.2f} ms across "
                     f"{max(0, len(profile) - top)} other ops)")
    return "\n".join(lines)


def _cmd_serve_eval(args) -> int:
    import shutil
    import tempfile

    import numpy as np

    from repro.serving import (
        InferenceService,
        InputSpec,
        InvalidRequest,
        ServiceConfig,
        ServiceUnavailable,
    )
    from repro.serving.faults import (
        apply_archive_faults,
        apply_runtime_faults,
        parse_fault_spec,
    )

    try:
        faults = parse_fault_spec(args.inject) if args.inject else []
    except ValueError as error:
        print(f"error: bad --inject spec: {error}", file=sys.stderr)
        return 2

    scenario = build_scenario(args.scenario, rng=args.seed)
    archive_path = args.ensemble
    workdir = None
    archive_faults = [f for f in faults if f["kind"] not in ("flaky", "slow")]
    if archive_faults:
        # Never damage the user's artifact: rehearse on a copy.
        workdir = tempfile.mkdtemp(prefix="repro-serve-eval-")
        archive_path = str(pathlib.Path(workdir) / "ensemble.npz")
        shutil.copyfile(args.ensemble, archive_path)
        for line in apply_archive_faults(archive_path, archive_faults):
            print(f"inject: {line}")

    config = ServiceConfig(
        min_members=args.min_members, strict=args.strict,
        fault_threshold=args.fault_threshold,
        breaker_cooldown=args.cooldown,
        input_spec=InputSpec.from_example(scenario.split.test.x))
    try:
        try:
            service = InferenceService.from_archive(
                archive_path, scenario.factory, config)
        except ServiceUnavailable as error:
            print(f"error: service refused to start: {error}", file=sys.stderr)
            return 2
        for line in apply_runtime_faults(service, faults):
            print(f"inject: {line}")

        x, y = scenario.split.test.x, scenario.split.test.y
        batch = max(1, args.request_batch)
        answered = rejected = unavailable = correct = total = 0
        degraded = deadline_hits = 0
        for request in range(args.requests):
            start = (request * batch) % max(1, len(x) - batch + 1)
            payload = np.array(x[start:start + batch])
            labels = np.asarray(y[start:start + batch])
            if args.poison_every and (request + 1) % args.poison_every == 0 \
                    and np.issubdtype(payload.dtype, np.floating):
                payload[0] = np.nan
            try:
                answer = service.predict(payload, deadline=args.deadline)
            except InvalidRequest as error:
                rejected += 1
                print(f"request {request}: rejected ({error.reason})")
                continue
            except ServiceUnavailable as error:
                unavailable += 1
                print(f"request {request}: unavailable ({error.reason})")
                continue
            answered += 1
            degraded += int(answer.degraded)
            deadline_hits += int(answer.deadline_hit)
            correct += int((answer.labels == labels).sum())
            total += len(labels)

        print(f"requests:          {args.requests} "
              f"({answered} answered, {rejected} rejected, "
              f"{unavailable} unavailable)")
        if total:
            print(f"accuracy (served): {percent(correct / total)}")
        if degraded or deadline_hits:
            print(f"degraded answers:  {degraded} "
                  f"({deadline_hits} hit the deadline)")
        print(_render_health(service.health()))
        return 0
    finally:
        if workdir:
            shutil.rmtree(workdir, ignore_errors=True)


def _cmd_serve_drift(args) -> int:
    import json

    from repro.experiments.drift import (
        DRIFT_SCHEDULES,
        DriftReplayConfig,
        run_drift_replay,
    )
    from repro.experiments.grid.reporting import write_json

    schedule = args.schedule
    if schedule not in DRIFT_SCHEDULES:
        # Not a preset: accept a JSON schedule payload, inline or a file.
        try:
            path = pathlib.Path(schedule)
            text = path.read_text() if path.is_file() else schedule
            schedule = json.loads(text)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: --schedule must be a preset "
                  f"({', '.join(sorted(DRIFT_SCHEDULES))}), a JSON file or "
                  f"an inline JSON payload: {error}", file=sys.stderr)
            return 2
    config = DriftReplayConfig(
        schedule=schedule, ensemble_size=args.ensemble_size,
        pretrain_epochs=args.pretrain_epochs, label_delay=args.label_delay,
        max_repairs=args.max_repairs, checkpoint_dir=args.checkpoint_dir)
    try:
        result = run_drift_replay(config, seed=args.seed)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def pct(value):
        return percent(value) if value is not None else "—"

    print(f"drift onset:        batch {result.drift_onset}")
    print(f"detected:           batch {result.detection_batch} "
          f"(latency {result.detection_latency} batch(es); "
          f"statistics: {', '.join(result.detection_statistics) or '—'})")
    print(f"accuracy pre-drift: {pct(result.pre_drift_accuracy)}")
    print(f"accuracy drifted:   {pct(result.drifted_accuracy)} "
          "(detection -> first repair)")
    print(f"accuracy repaired:  {pct(result.post_repair_accuracy)}")
    print(f"member swaps:       {result.member_swaps} "
          f"({result.repair_wall_seconds:.2f}s total repair wall-clock)")
    for event in result.repair_events:
        print(f"  {event.outcome}: {event.reason}")
    path = write_json(args.bench_name, result.to_payload(),
                      directory=args.results)
    print(f"benchmark artifact: {path}")
    return 0


def _cmd_serve_load(args) -> int:
    from repro.experiments.grid.reporting import write_json
    from repro.experiments.serve_load import run_load_suite

    try:
        sizes = tuple(int(part) for part in args.sizes.split(","))
    except ValueError:
        print(f"error: --sizes must be comma-separated integers, "
              f"got {args.sizes!r}", file=sys.stderr)
        return 2
    payload = run_load_suite(
        ensemble_sizes=sizes, seed=args.seed, requests=args.requests,
        rows=args.rows, clients=args.clients,
        max_batch_rows=args.max_batch_rows, max_wait_ms=args.max_wait_ms)
    print(f"{'T':>3} {'batching':>8} {'arrival':>7} {'qps':>8} "
          f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} {'batch':>6}")
    for cell in payload["cells"]:
        latency = cell["latency_ms"]
        print(f"{cell['config']['ensemble_size']:>3} "
              f"{'on' if cell['batching'] else 'off':>8} "
              f"{cell['arrival']:>7} {cell['qps']:>8.0f} "
              f"{latency['p50']:>8.2f} {latency['p95']:>8.2f} "
              f"{latency['p99']:>8.2f} "
              f"{cell['mean_batch_requests']:>6.1f}")
    for size, speedup in payload["qps_speedup_batched"].items():
        print(f"batching speedup at T={size}: {speedup:.2f}x")
    print(f"bit-parity (batched == solo): "
          f"{'ok' if payload['parity_ok'] else 'VIOLATED'}")
    path = write_json(args.bench_name, payload, directory=args.results)
    print(f"benchmark artifact: {path}")
    return 0 if payload["parity_ok"] else 1


def _cmd_serve_overload(args) -> int:
    from repro.experiments.grid.reporting import write_json
    from repro.experiments.serve_overload import (
        OverloadConfig,
        run_overload_suite,
    )

    payload = run_overload_suite(OverloadConfig(seed=args.seed))
    capacity = payload["capacity"]
    print(f"capacity: {capacity['measured_rps']:.0f} rps measured "
          f"({capacity['analytic_rps']:.0f} analytic)")
    print(f"{'load':>6} {'mode':>10} {'offered':>8} {'goodput':>8} "
          f"{'p50 ms':>8} {'p99 ms':>8} {'shed':>6} {'brownout':>8}")
    for cell in payload["cells"]:
        latency = cell["latency_ms"]
        print(f"{cell['load_factor']:>5.1f}x "
              f"{'resilient' if cell['resilient'] else 'baseline':>10} "
              f"{cell['rate']:>8.0f} {cell['goodput_rps']:>8.0f} "
              f"{latency['p50']:>8.1f} {latency['p99']:>8.1f} "
              f"{cell['shed']:>6} {cell['brownout_batches']:>8}")
    for name, value in payload["acceptance"].items():
        print(f"  {name}: {'ok' if value else 'FAIL'}")
    path = write_json(args.bench_name, payload, directory=args.results)
    print(f"benchmark artifact: {path}")
    return 0 if payload["ok"] else 1


def _cmd_serve_chaos(args) -> int:
    from repro.experiments.grid.reporting import write_json
    from repro.experiments.serve_chaos import ChaosConfig, run_chaos_suite

    payload = run_chaos_suite(ChaosConfig(
        schedules=args.schedules, events=args.events,
        horizon_s=args.horizon, seed=args.seed),
        lock_sanitizer=args.lock_sanitizer)
    print(f"{payload['schedules']} schedules at "
          f"{payload['base_rate_rps']:.0f} rps base rate "
          f"(events drawn: {payload['event_kinds']})")
    print(f"  submitted {payload['total_submitted']}, "
          f"shed {payload['total_shed']}, "
          f"failed {payload['total_failed']}, "
          f"member deaths {payload['total_member_deaths']}")
    if args.lock_sanitizer:
        print(f"  lock sanitizer armed: "
              f"{payload['lock_order_violations']} ordering violation(s)")
    if payload["ok"]:
        print("  all invariants held (no deadlock, no torn batch, "
              "ledger conserved)")
    else:
        print(f"  INVARIANT FAILURES in seeds {payload['failed_seeds']}")
    if args.results:
        path = write_json(args.bench_name, payload, directory=args.results)
        print(f"artifact: {path}")
    return 0 if payload["ok"] else 1


def _render_health(health) -> str:
    """Render a :class:`~repro.serving.ServiceHealth` snapshot."""
    lines = [
        f"service health:    "
        f"{'ready' if health.ready else 'NOT READY'} "
        f"(quorum {health.min_members}/{health.members_total}, "
        f"alpha mass {health.effective_alpha_mass:.2f})",
        f"members live:      {health.members_live or '-'}",
    ]
    for index, reason in sorted(health.members_quarantined.items()):
        lines.append(f"  quarantined #{index}: {reason}")
    for index, reason in sorted(health.dropped_at_load.items()):
        lines.append(f"  dropped #{index} at load: {reason}")
    for index, count in sorted(health.member_faults.items()):
        lines.append(f"  faults #{index}: {count}")
    return "\n".join(lines)


def _parse_shard(text: str):
    """Parse ``--shard i/n`` into ``(shard_index, num_shards)``."""
    try:
        index, total = text.split("/")
        index, total = int(index), int(total)
    except ValueError:
        raise ValueError(f"--shard must look like 'i/n', got {text!r}")
    if total < 1 or not 0 <= index < total:
        raise ValueError(f"--shard index must satisfy 0 <= i < n, got {text}")
    return index, total


def _render_grid_aggregates(result) -> str:
    """Render a grid's aggregates as one mean ± std row per group."""
    metric_names = sorted({name for entry in result.aggregates
                           for name in entry["metrics"]
                           if name != "similarity_matrix"})
    group_names = result.spec.group_factors()
    rows = []
    for entry in result.aggregates:
        row = [str(entry["group"].get(name)) for name in group_names]
        row.append(entry["n"])
        for name in metric_names:
            stats = entry["metrics"].get(name)
            row.append(f"{stats['mean']:.4f} ± {stats['std']:.4f}"
                       if stats else "—")
        rows.append(row)
    return format_table(group_names + ["n"] + metric_names, rows,
                        title=f"Grid {result.spec.name} "
                              f"({len(result.records)} runs)")


def _cmd_grid(args) -> int:
    from repro.experiments.grid import (
        GridExecutor,
        GridSpec,
        GridSpecError,
        GridStateError,
        collect_records,
        grid_result,
        run_grid,
        write_grid_artifact,
    )

    try:
        spec = GridSpec.from_json(args.spec)
    except GridSpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        shard_index, num_shards = _parse_shard(args.shard)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.out is None and (num_shards > 1 or args.resume
                             or args.aggregate_only):
        print("error: --shard/--resume/--aggregate-only need --out "
              "(the shared state directory)", file=sys.stderr)
        return 2
    if args.out is None and args.workers > 1:
        print("error: --workers > 1 needs --out (pool workers record "
              "their runs through the shared manifest)", file=sys.stderr)
        return 2

    try:
        if args.out is None:
            result = run_grid(spec, workers=args.workers,
                              artifact_dir=args.results)
        else:
            if not args.aggregate_only:
                executor = GridExecutor(
                    spec, out_dir=args.out, shard_index=shard_index,
                    num_shards=num_shards, workers=args.workers,
                    resume=args.resume)
                records = executor.execute()
                failed = [r for r in records if r.status == "failed"]
                print(f"shard {shard_index}/{num_shards}: "
                      f"{len(records)} run(s), {len(failed)} failed")
                for record in failed:
                    print(f"  failed {record.run_id}: {record.error}",
                          file=sys.stderr)
            records, missing = collect_records(spec, args.out)
            result = grid_result(spec, records, missing)
            if missing:
                print(f"grid {spec.name}: {len(records)}/"
                      f"{len(records) + len(missing)} runs recorded; "
                      f"waiting for other shards — rerun with "
                      f"--aggregate-only once they finish")
                return 0
            write_grid_artifact(result, directory=args.results)
    except GridSpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except GridStateError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(_render_grid_aggregates(result))
    artifact = pathlib.Path(args.results) / f"GRID_{spec.name}.json"
    print(f"aggregate artifact: {artifact}")
    if not result.complete:
        for record in result.failures:
            print(f"failed {record.run_id}: {record.error}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args) -> int:
    import json

    from repro.analysis.lint import default_rules, run_lint

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name}: {rule.rationale}")
        return 0
    report = run_lint(args.paths, rules)
    if args.stats:
        payload = json.dumps(report.stats(), indent=2, sort_keys=True)
        if args.stats == "-":
            print(payload)
        else:
            stats_path = pathlib.Path(args.stats)
            stats_path.parent.mkdir(parents=True, exist_ok=True)
            stats_path.write_text(payload + "\n")
    if args.format == "json":
        print(json.dumps(report.payload(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_compare(args) -> int:
    scenario = build_scenario(args.scenario, rng=args.seed)
    methods = tuple(args.methods.split(","))
    results = run_effectiveness(scenario, methods=methods, rng=args.seed)
    rows = [[r.method, percent(r.final_accuracy),
             percent(r.average_member_accuracy()), r.total_epochs]
            for r in results.values()]
    print(format_table(["Method", "Ensemble acc", "Avg member", "Epochs"],
                       rows, title=f"Comparison on {args.scenario}"))
    return 0


def _cmd_beta(args) -> int:
    from repro.core import select_beta

    scenario = build_scenario(args.scenario, rng=args.seed)
    selection = select_beta(scenario.factory, scenario.split.train,
                            n_folds=args.folds, lr=scenario.lr,
                            batch_size=scenario.batch_size,
                            teacher_epochs=scenario.epochs_per_model,
                            probe_epochs=args.probe_epochs, rng=args.seed)
    rows = [[f"{p.beta:.2f}", percent(p.accuracy_seen_fold),
             percent(p.accuracy_unseen_fold), f"{p.gap:+.4f}"]
            for p in selection.probes]
    print(format_table(["beta", "seen fold", "unseen fold", "gap"], rows,
                       title="Adaptive beta search (Sec. IV-B)"))
    print(f"selected beta = {selection.beta}")
    return 0


def _cmd_info(_args) -> int:
    print("scenarios: c10-resnet, c10-densenet, c100-resnet, c100-densenet, "
          "imdb-textcnn, mr-textcnn")
    print(f"methods:   {', '.join(ALL_METHODS + ('ncl',))}")
    print(f"models:    {', '.join(available_models())}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EDDE reproduction command-line interface")
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser("train", help="fit one ensemble method")
    _add_scenario_arg(train)
    train.add_argument("--method", default="edde",
                       choices=ALL_METHODS + ("ncl",))
    train.add_argument("--save", default=None,
                       help="path to save the fitted ensemble (.npz)")
    train.add_argument("--checkpoint-dir", default=None,
                       help="directory for per-round training checkpoints")
    train.add_argument("--resume", action="store_true",
                       help="resume from the latest checkpoint in "
                            "--checkpoint-dir")
    train.add_argument("--max-retries", type=int, default=None,
                       help="retries per diverged member before skipping it")
    train.add_argument("--profile-ops", action="store_true",
                       help="collect per-op wall-clock/allocation stats "
                            "during the fit and print a summary table")
    train.set_defaults(func=_cmd_train)

    compare = commands.add_parser("compare", help="compare several methods")
    _add_scenario_arg(compare)
    compare.add_argument("--methods", default="single,snapshot,edde")
    compare.set_defaults(func=_cmd_compare)

    serve = commands.add_parser(
        "serve-eval",
        help="serve a saved ensemble through the fault-tolerant "
             "InferenceService and stream requests at it")
    _add_scenario_arg(serve)
    serve.add_argument("--ensemble", required=True,
                       help="path to a saved ensemble archive (.npz)")
    serve.add_argument("--requests", type=int, default=16,
                       help="number of request batches to stream")
    serve.add_argument("--request-batch", type=int, default=8,
                       help="rows per request batch")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-request wall-clock budget in seconds; "
                            "members not started in time are skipped and "
                            "the partial aggregate is returned")
    serve.add_argument("--min-members", type=int, default=None,
                       help="startup quorum (default: ceil(T/2))")
    serve.add_argument("--strict", action="store_true",
                       help="refuse degraded loading: any damaged member "
                            "aborts startup")
    serve.add_argument("--fault-threshold", type=int, default=3,
                       help="consecutive member faults before quarantine")
    serve.add_argument("--cooldown", type=float, default=30.0,
                       help="seconds a quarantined member waits before a "
                            "half-open probe")
    serve.add_argument("--inject", default=None,
                       help="fault spec, e.g. "
                            "'corrupt:0,flaky:1:every=2,slow:2:seconds=0.2' "
                            "(archive faults run on a throwaway copy)")
    serve.add_argument("--poison-every", type=int, default=0,
                       help="poison every Nth request with NaNs to "
                            "exercise input validation")
    serve.set_defaults(func=_cmd_serve_eval)

    drift = commands.add_parser(
        "serve-drift",
        help="replay a drift schedule through the online monitor + "
             "closed-loop ensemble repair stack and archive "
             "results/BENCH_drift.json")
    drift.add_argument("--schedule", default="step-moderate",
                       help="preset name (smoke, step-moderate, "
                            "step-skewed), a JSON schedule file, or an "
                            "inline JSON payload")
    drift.add_argument("--seed", type=int, default=0)
    drift.add_argument("--ensemble-size", type=int, default=4)
    drift.add_argument("--pretrain-epochs", type=int, default=6)
    drift.add_argument("--label-delay", type=int, default=0,
                       help="batches until a batch's labels reach the "
                            "monitor and replay buffer")
    drift.add_argument("--max-repairs", type=int, default=2,
                       help="accepted member swaps before the loop stops "
                            "repairing")
    drift.add_argument("--checkpoint-dir", default=None,
                       help="snapshot the repaired ensemble here after "
                            "every accepted swap")
    drift.add_argument("--results", default="results", metavar="DIR",
                       help="directory for the benchmark artifact")
    drift.add_argument("--bench-name", default="BENCH_drift",
                       help="artifact basename (BENCH_drift -> "
                            "BENCH_drift.json)")
    drift.set_defaults(func=_cmd_serve_drift)

    load = commands.add_parser(
        "serve-load",
        help="drive the concurrent serving pipeline with a load harness "
             "(T x batching on/off sweep) and archive "
             "results/BENCH_serving.json")
    load.add_argument("--sizes", default="1,4,8", metavar="T,T,...",
                      help="comma-separated ensemble sizes to sweep")
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--requests", type=int, default=256,
                      help="timed requests per cell (closed loop)")
    load.add_argument("--rows", type=int, default=8,
                      help="rows per request payload")
    load.add_argument("--clients", type=int, default=16,
                      help="closed-loop client threads")
    load.add_argument("--max-batch-rows", type=int, default=128,
                      help="micro-batcher row cap per stacked batch")
    load.add_argument("--max-wait-ms", type=float, default=5.0,
                      help="micro-batcher window: how long the oldest "
                           "request waits for company")
    load.add_argument("--results", default="results", metavar="DIR",
                      help="directory for the benchmark artifact")
    load.add_argument("--bench-name", default="BENCH_serving",
                      help="artifact basename (BENCH_serving -> "
                           "BENCH_serving.json)")
    load.set_defaults(func=_cmd_serve_load)

    overload = commands.add_parser(
        "serve-overload",
        help="virtual-time overload suite: capacity, then 0.5x/1x/2x "
             "load with and without admission control + brownout; "
             "archives results/BENCH_overload.json")
    overload.add_argument("--seed", type=int, default=0)
    overload.add_argument("--results", default="results", metavar="DIR",
                          help="directory for the benchmark artifact")
    overload.add_argument("--bench-name", default="BENCH_overload",
                          help="artifact basename")
    overload.set_defaults(func=_cmd_serve_overload)

    chaos = commands.add_parser(
        "serve-chaos",
        help="replay seeded chaos schedules (storms, stalls, slow "
             "bursts, task deaths) and check the pipeline invariants")
    chaos.add_argument("--schedules", type=int, default=20,
                       help="seeded schedules to replay")
    chaos.add_argument("--events", type=int, default=5,
                       help="disturbances drawn per schedule")
    chaos.add_argument("--horizon", type=float, default=2.0,
                       help="virtual seconds of arrivals per schedule")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--results", default="", metavar="DIR",
                       help="archive CHAOS_<name>.json here (default: "
                            "no artifact)")
    chaos.add_argument("--bench-name", default="CHAOS_serving",
                       help="artifact basename when --results is set")
    chaos.add_argument("--lock-sanitizer", action="store_true",
                       help="replay every schedule under lock_order_mode: "
                            "rank-checked locks turn any ordering "
                            "violation into an invariant failure")
    chaos.set_defaults(func=_cmd_serve_chaos)

    grid = commands.add_parser(
        "grid",
        help="execute a declarative experiment grid from a JSON spec, "
             "optionally sharded, and aggregate the results")
    grid.add_argument("--spec", required=True,
                      help="path to the GridSpec JSON file")
    grid.add_argument("--out", default=None, metavar="DIR",
                      help="shared state directory (per-run manifest + "
                           "checkpoints); omit for a purely in-memory run")
    grid.add_argument("--shard", default="0/1", metavar="I/N",
                      help="execute shard I of N (run i belongs to shard "
                           "i %% N); every shard must use the same --out")
    grid.add_argument("--workers", type=int, default=1,
                      help="parallel worker processes for this shard")
    grid.add_argument("--resume", action="store_true",
                      help="skip runs with a completed manifest entry and "
                           "honour per-run round checkpoints")
    grid.add_argument("--aggregate-only", action="store_true",
                      help="do not execute; aggregate whatever the shards "
                           "have recorded in --out")
    grid.add_argument("--results", default="results", metavar="DIR",
                      help="directory for the GRID_<name>.json artifact")
    grid.set_defaults(func=_cmd_grid)

    lint = commands.add_parser(
        "lint",
        help="run the AST-based invariant checker (RL001–RL008) over "
             "source trees; exits 1 on violations or unused suppressions")
    lint.add_argument("paths", nargs="*", default=["src", "benchmarks"],
                      help="files or directories to lint "
                           "(default: src benchmarks)")
    lint.add_argument("--stats", default=None, metavar="PATH",
                      help="write a JSON summary (rules run, files "
                           "scanned, violations by code, unused "
                           "suppressions) to PATH, or '-' for stdout")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format: human-readable text (default) "
                           "or the full machine-readable findings JSON")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule table and exit")
    lint.set_defaults(func=_cmd_lint)

    beta = commands.add_parser("beta", help="adaptive beta selection")
    _add_scenario_arg(beta)
    beta.add_argument("--folds", type=int, default=6)
    beta.add_argument("--probe-epochs", type=int, default=3)
    beta.set_defaults(func=_cmd_beta)

    info = commands.add_parser("info", help="list scenarios/methods/models")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
