"""CIFAR-style DenseNet (Huang et al., 2017).

Same family as the paper's DenseNet-40 (growth rate 12): a conv stem, three
dense blocks joined by 1x1-conv + 2x2-average-pool transitions, then BN,
global average pooling and a linear head.  Depth follows ``3L + 4`` for
non-bottleneck blocks of ``L`` layers each.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.tensor import Tensor, default_dtype
from repro.tensor.ops import concatenate
from repro.utils.rng import RngLike, new_rng


class DenseLayer(nn.Module):
    """BN -> ReLU -> 3x3 conv producing ``growth`` new channels."""

    def __init__(self, in_channels: int, growth: int, rng: np.random.Generator):
        super().__init__()
        self.bn = nn.BatchNorm2d(in_channels)
        self.relu = nn.ReLU()
        self.conv = nn.Conv2d(in_channels, growth, 3, padding=1, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        new_features = self.conv(self.relu(self.bn(x)))
        return concatenate([x, new_features], axis=1)


class DenseBlock(nn.Module):
    """``layers`` stacked dense layers with cumulative concatenation."""

    def __init__(self, in_channels: int, layers: int, growth: int,
                 rng: np.random.Generator):
        super().__init__()
        self.out_channels = in_channels + layers * growth
        channels = in_channels
        self._layers = []
        for index in range(layers):
            layer = DenseLayer(channels, growth, rng)
            self.add_module(f"layer{index}", layer)
            self._layers.append(layer)
            channels += growth

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x


class Transition(nn.Module):
    """BN -> ReLU -> 1x1 conv (channel compression) -> 2x2 average pool."""

    def __init__(self, in_channels: int, out_channels: int,
                 rng: np.random.Generator):
        super().__init__()
        self.bn = nn.BatchNorm2d(in_channels)
        self.relu = nn.ReLU()
        self.conv = nn.Conv2d(in_channels, out_channels, 1, bias=False, rng=rng)
        self.pool = nn.AvgPool2d(2)

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(self.conv(self.relu(self.bn(x))))


class DenseNetCIFAR(nn.Module):
    """DenseNet-(3L+4) for small colour images.

    Parameters
    ----------
    depth:
        Total depth; must satisfy ``depth = 3L + 4``.  The paper uses 40.
    growth:
        Growth rate k (paper: 12; benchmark default: 6).
    num_classes / in_channels / rng:
        As for :class:`~repro.models.resnet.ResNetCIFAR`.
    compression:
        Channel compression factor at transitions (1.0 = none, as in the
        original non-BC DenseNet the paper uses).
    """

    def __init__(self, depth: int = 22, num_classes: int = 10, growth: int = 6,
                 in_channels: int = 3, compression: float = 1.0,
                 rng: RngLike = None):
        super().__init__()
        if (depth - 4) % 3 != 0:
            raise ValueError(f"DenseNet depth must be 3L+4, got {depth}")
        layers_per_block = (depth - 4) // 3
        rng = new_rng(rng)
        self.depth = depth
        self.num_classes = num_classes

        channels = 2 * growth
        self.stem = nn.Conv2d(in_channels, channels, 3, padding=1, bias=False, rng=rng)

        self.block1 = DenseBlock(channels, layers_per_block, growth, rng)
        channels = self.block1.out_channels
        compressed = max(1, int(channels * compression))
        self.trans1 = Transition(channels, compressed, rng)
        channels = compressed

        self.block2 = DenseBlock(channels, layers_per_block, growth, rng)
        channels = self.block2.out_channels
        compressed = max(1, int(channels * compression))
        self.trans2 = Transition(channels, compressed, rng)
        channels = compressed

        self.block3 = DenseBlock(channels, layers_per_block, growth, rng)
        channels = self.block3.out_channels

        self.final_bn = nn.BatchNorm2d(channels)
        self.final_relu = nn.ReLU()
        self.pool = nn.GlobalAvgPool2d()
        self.head = nn.Linear(channels, num_classes, rng=rng)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=default_dtype()))
        out = self.stem(x)
        out = self.trans1(self.block1(out))
        out = self.trans2(self.block2(out))
        out = self.block3(out)
        out = self.final_relu(self.final_bn(out))
        return self.head(self.pool(out))
