"""Text-CNN (Kim, 2014) — the paper's NLP base model.

Embedding -> parallel Conv1d filters of several widths -> ReLU ->
max-over-time pooling -> concatenate -> dropout -> linear classifier.

For the NLP experiments the paper transfers "the knowledge of all the
convolution layers" between base models; with the construction order below
(embedding, convolutions, head) a β around 0.8 reproduces that cut, and
:func:`textcnn_conv_beta` computes it exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.tensor import Tensor
from repro.tensor.ops import concatenate
from repro.utils.rng import RngLike, new_rng


class TextCNN(nn.Module):
    """Convolutional sentence classifier over integer token ids.

    Parameters
    ----------
    vocab_size:
        Vocabulary size (token ids in ``[0, vocab_size)``).
    num_classes:
        Output classes (2 for the paper's sentiment tasks).
    embedding_dim:
        Word-vector width.
    filter_widths:
        Kernel sizes of the parallel convolutions (paper uses 3, 4, 5).
    filters_per_width:
        Feature maps per kernel size.
    dropout:
        Dropout probability before the classifier head.
    """

    def __init__(self, vocab_size: int, num_classes: int = 2,
                 embedding_dim: int = 16,
                 filter_widths: Sequence[int] = (3, 4, 5),
                 filters_per_width: int = 8,
                 dropout: float = 0.5, rng: RngLike = None):
        super().__init__()
        rng = new_rng(rng)
        self.vocab_size = vocab_size
        self.num_classes = num_classes
        self.filter_widths = tuple(filter_widths)

        self.embedding = nn.Embedding(vocab_size, embedding_dim, rng=rng)
        self._convs = []
        for width in self.filter_widths:
            conv = nn.Conv1d(embedding_dim, filters_per_width, width,
                             padding=width - 1, rng=rng)
            self.add_module(f"conv{width}", conv)
            self._convs.append(conv)
        self.dropout = nn.Dropout(dropout, rng=rng)
        total_filters = filters_per_width * len(self.filter_widths)
        self.head = nn.Linear(total_filters, num_classes, rng=rng)

    def forward(self, token_ids) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        embedded = self.embedding(token_ids)           # (N, L, D)
        embedded = embedded.transpose(0, 2, 1)          # (N, D, L)
        pooled = [F.max_over_time(conv(embedded).relu()) for conv in self._convs]
        features = concatenate(pooled, axis=1)
        return self.head(self.dropout(features))


def textcnn_conv_beta(model: TextCNN) -> float:
    """β that transfers exactly the embedding + convolution layers.

    Reproduces the paper's NLP protocol: "we transfer the knowledge of all
    the convolution layers of Text-CNN to initialize the next base model".
    """
    head_params = sum(p.size for _, p in model.head.named_parameters())
    total = model.num_parameters()
    return (total - head_params) / total
