"""CIFAR-style residual networks (He et al., 2016).

Same topology family as the paper's ResNet-32: a 3x3 stem, three stages of
basic blocks at widths (w, 2w, 4w) with stride-2 transitions, global average
pooling and a linear classifier.  Depth follows the 6n+2 rule; the paper
uses depth 32 (n=5, w=16) — the benchmark default is a narrower, shallower
member of the same family so CPU runs finish quickly.  Construction order
runs stem -> stage1 -> stage2 -> stage3 -> head, which is the ordering
β-transfer cuts along.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.tensor import Tensor, default_dtype
from repro.utils.rng import RngLike, new_rng


class BasicBlock(nn.Module):
    """Two 3x3 convs with identity (or projected) shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride,
                               padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1,
                               bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride,
                          bias=False, rng=rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        residual = x if self.shortcut is None else self.shortcut(x)
        return (out + residual).relu()


class ResNetCIFAR(nn.Module):
    """ResNet-(6n+2) for small colour images.

    Parameters
    ----------
    depth:
        Total depth; must satisfy ``depth = 6n + 2``.  The paper uses 32.
    num_classes:
        Output classes.
    base_width:
        Channels of the first stage (paper: 16; benchmark default: 8).
    in_channels:
        Input image channels.
    rng:
        Seed/generator for weight initialisation.
    """

    def __init__(self, depth: int = 14, num_classes: int = 10,
                 base_width: int = 8, in_channels: int = 3, rng: RngLike = None):
        super().__init__()
        if (depth - 2) % 6 != 0:
            raise ValueError(f"ResNet depth must be 6n+2, got {depth}")
        n = (depth - 2) // 6
        rng = new_rng(rng)
        self.depth = depth
        self.num_classes = num_classes

        self.stem = nn.Sequential(
            nn.Conv2d(in_channels, base_width, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(base_width),
            nn.ReLU(),
        )
        widths = (base_width, base_width * 2, base_width * 4)
        stages = []
        previous = base_width
        for stage_index, width in enumerate(widths):
            blocks = []
            for block_index in range(n):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                blocks.append(BasicBlock(previous, width, stride, rng))
                previous = width
            stages.append(nn.Sequential(*blocks))
        self.stage1, self.stage2, self.stage3 = stages
        self.pool = nn.GlobalAvgPool2d()
        self.head = nn.Linear(previous, num_classes, rng=rng)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=default_dtype()))
        out = self.stem(x)
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        return self.head(self.pool(out))
