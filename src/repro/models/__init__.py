"""Model zoo: the paper's three base networks plus a fast MLP for tests."""

from repro.models.mlp import MLP
from repro.models.resnet import BasicBlock, ResNetCIFAR
from repro.models.densenet import DenseBlock, DenseLayer, DenseNetCIFAR, Transition
from repro.models.textcnn import TextCNN, textcnn_conv_beta
from repro.models.factory import (
    ModelFactory,
    available_models,
    get_model_builder,
    register_model,
)

register_model("mlp", MLP)
register_model("resnet", ResNetCIFAR)
register_model("densenet", DenseNetCIFAR)
register_model("textcnn", TextCNN)

__all__ = [
    "MLP",
    "ResNetCIFAR",
    "BasicBlock",
    "DenseNetCIFAR",
    "DenseBlock",
    "DenseLayer",
    "Transition",
    "TextCNN",
    "textcnn_conv_beta",
    "ModelFactory",
    "register_model",
    "get_model_builder",
    "available_models",
]
