"""A small multi-layer perceptron.

Not in the paper — used by the test-suite and quickstart example because it
trains in milliseconds, while exercising exactly the same Module/optimizer/
ensemble plumbing as the conv nets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import nn
from repro.tensor import Tensor, default_dtype
from repro.utils.rng import RngLike, new_rng


class MLP(nn.Module):
    """``input -> [hidden ReLU]* -> logits`` over flattened features."""

    def __init__(self, input_dim: int, num_classes: int,
                 hidden: Sequence[int] = (64, 64), rng: RngLike = None):
        super().__init__()
        rng = new_rng(rng)
        self.input_dim = input_dim
        self.num_classes = num_classes
        layers = []
        previous = input_dim
        for width in hidden:
            layers.append(nn.Linear(previous, width, rng=rng))
            layers.append(nn.ReLU())
            previous = width
        layers.append(nn.Linear(previous, num_classes, rng=rng))
        self.body = nn.Sequential(*layers)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=default_dtype()))
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.body(x)
