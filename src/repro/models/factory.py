"""Model factories and a named registry.

Every ensemble method needs to construct fresh base models repeatedly with
independent initial weights.  A :class:`ModelFactory` captures the
architecture hyperparameters once; each :meth:`ModelFactory.build` call
draws a new model from a supplied RNG, so "randomly initialise each base
model" (BANs, Bagging, AdaBoost) and "hatch from the previous model"
(Snapshot, EDDE) share one construction path.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.nn.module import Module
from repro.utils.rng import RngLike, new_rng

Builder = Callable[..., Module]

_REGISTRY: Dict[str, Builder] = {}


def register_model(name: str, builder: Builder) -> None:
    """Register a model builder under ``name`` (used by CLI-style configs)."""
    if name in _REGISTRY:
        raise ValueError(f"model '{name}' already registered")
    _REGISTRY[name] = builder


def get_model_builder(name: str) -> Builder:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model '{name}'; available: {sorted(_REGISTRY)}"
        ) from None


def available_models():
    return sorted(_REGISTRY)


class ModelFactory:
    """Reusable constructor for one architecture configuration.

    Example
    -------
    >>> from repro.models import ResNetCIFAR
    >>> factory = ModelFactory(ResNetCIFAR, depth=14, num_classes=10)
    >>> model = factory.build(rng=0)
    >>> model.depth
    14
    """

    def __init__(self, builder: Builder, **kwargs):
        self.builder = builder
        self.kwargs = dict(kwargs)

    def build(self, rng: RngLike = None) -> Module:
        """Construct a fresh model; ``rng`` controls the weight draw."""
        return self.builder(rng=new_rng(rng), **self.kwargs)

    @classmethod
    def from_name(cls, name: str, **kwargs) -> "ModelFactory":
        return cls(get_model_builder(name), **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(f"{k}={v}" for k, v in self.kwargs.items())
        return f"ModelFactory({getattr(self.builder, '__name__', self.builder)}, {args})"
