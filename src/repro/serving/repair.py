"""Closed-loop ensemble repair: quarantine, retrain, hot-swap, rollback.

The tail of the drift story.  :mod:`repro.serving.monitor` turns drift
into an *alarm*; this module turns the alarm into a *repaired ensemble*
while the service keeps answering requests:

1. **Score** — rank members by the monitor's rolling health score
   (deviation-from-aggregate blended with delayed-label error; higher is
   sicker) and pick the worst.
2. **Quarantine** — administratively trip the worst member's breaker
   (:meth:`~repro.serving.breaker.CircuitBreaker.trip`).  Its α leaves
   the vote immediately, so the service degrades gracefully — the same
   Eq. 16 renormalisation that absorbs crashed members absorbs the sick
   one — and keeps serving while the replacement trains.
3. **Retrain** — build a fresh model, β-transfer the lower layers from
   the *best* survivor (Sec. IV-B: the generic features survive drift
   far better than the class-specific upper layers), and train it on
   the replay buffer of recent labelled batches — i.e. on the drifted
   distribution itself.
4. **Verify or roll back** — compare the candidate ensemble (survivors
   + replacement) against the degraded ensemble on a held-out slice of
   the buffer.  No improvement → the candidate is discarded and the
   quarantined member is reinstated (:meth:`.CircuitBreaker.reinstate`)
   — a sabotaged replacement can never make the service worse.
5. **Publish** — on success the replacement is hot-swapped in
   (:meth:`~repro.serving.service.InferenceService.replace_member`,
   copy-on-write, never a torn prediction), the repaired ensemble is
   checkpointed through :class:`~repro.core.checkpointing.
   CheckpointManager`, and the monitor recalibrates on the post-repair
   distribution.

Every decision consumes the loop's single seeded generator in a fixed
order, so one (service, schedule, seed) triple yields bit-identical
repairs.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.checkpointing import CheckpointManager
from repro.core.ensemble import Ensemble
from repro.core.trainer import TrainingConfig, train_model
from repro.core.transfer import select_beta, transfer_parameters
from repro.data.dataset import Dataset
from repro.models.factory import ModelFactory
from repro.serving.monitor import DriftMonitor
from repro.serving.service import InferenceService, ServedPrediction
from repro.utils.rng import RngLike, new_rng

__all__ = [
    "RepairConfig",
    "RepairEvent",
    "RepairLoop",
    "ReplayBuffer",
]


class ReplayBuffer:
    """Ring buffer of the most recent labelled batches.

    The repair loop's training substrate: under drift, *recent* labelled
    data is the only sample of the distribution the replacement must
    serve, so old batches are evicted as new ones arrive.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2 batches, got {capacity}")
        self._batches: Deque[Tuple[np.ndarray, np.ndarray]] = \
            deque(maxlen=int(capacity))

    def append(self, x: np.ndarray, y: np.ndarray) -> None:
        x, y = np.asarray(x), np.asarray(y)
        if len(x) != len(y):
            raise ValueError(f"batch of {len(x)} inputs with {len(y)} labels")
        self._batches.append((x, y))

    def __len__(self) -> int:
        return len(self._batches)

    @property
    def samples(self) -> int:
        return sum(len(y) for _, y in self._batches)

    def inferred_classes(self) -> int:
        """Label-count fallback when the models don't declare theirs."""
        if not self._batches:
            raise ValueError("cannot infer classes from an empty buffer")
        return int(max(int(y.max()) for _, y in self._batches) + 1)

    def split(self, holdout_fraction: float, num_classes: int,
              ) -> Tuple[Dataset, np.ndarray, np.ndarray]:
        """(train dataset, holdout x, holdout y): newest batches held out.

        The holdout is the *newest* slice — the closest sample of the
        distribution the repaired ensemble will actually face — and is
        disjoint from the training slice, so the accept/rollback verdict
        is not graded on memorised data.
        """
        if len(self._batches) < 2:
            raise ValueError("need at least 2 buffered batches to split")
        holdout_count = max(1, int(round(len(self._batches)
                                         * holdout_fraction)))
        holdout_count = min(holdout_count, len(self._batches) - 1)
        batches = list(self._batches)
        train = batches[:-holdout_count]
        holdout = batches[-holdout_count:]
        x_train = np.concatenate([x for x, _ in train])
        y_train = np.concatenate([y for _, y in train])
        x_hold = np.concatenate([x for x, _ in holdout])
        y_hold = np.concatenate([y for _, y in holdout])
        return (Dataset(x_train, y_train, num_classes, name="repair-buffer"),
                x_hold, y_hold)


@dataclass
class RepairConfig:
    """Knobs for :class:`RepairLoop`."""

    min_buffer_batches: int = 8    # don't repair on a thin sample
    #: Ring-buffer size in batches.  Deliberately modest: a small buffer
    #: evicts stationary history quickly, so by repair time the training
    #: slice is dominated by the drifted distribution.
    buffer_capacity: int = 16
    #: Labelled batches to accumulate *after* the alarm latches before
    #: repairing — training on the buffer as it stood at detection would
    #: mostly rehearse the pre-drift distribution.
    post_alarm_batches: int = 6
    #: After a rollback the alarm stays latched (the evidence is still
    #: valid; the fix failed) and the loop retries once this many more
    #: labelled batches have arrived.
    retry_backoff_batches: int = 4
    #: Hard cap on repair attempts (accepted + rolled back) per alarm
    #: era; a replacement that keeps failing must not retrain forever.
    max_attempts: int = 8
    holdout_fraction: float = 0.25
    train_epochs: int = 8
    lr: float = 0.05
    batch_size: int = 32
    #: β for the survivor→replacement transfer; the string ``"probe"``
    #: runs :func:`repro.core.transfer.select_beta` on the buffer (the
    #: paper's adaptive search, at reduced fold/epoch budget).
    beta: Union[float, str] = 0.5
    probe_folds: int = 4
    probe_epochs: int = 2
    #: Candidate must beat the degraded ensemble by at least this much
    #: holdout accuracy, else the swap is rolled back.
    min_gain: float = 0.0
    #: Refuse to quarantine below the service's quorum.
    respect_quorum: bool = True


@dataclass
class RepairEvent:
    """One pass through the repair loop, for audit and benchmarking."""

    outcome: str                         # repaired | rolled_back | skipped
    reason: str
    worst_member: Optional[int] = None
    teacher_member: Optional[int] = None
    scores: Dict[int, float] = field(default_factory=dict)
    beta: Optional[float] = None
    pre_accuracy: Optional[float] = None       # degraded, on holdout
    candidate_accuracy: Optional[float] = None  # survivors + replacement
    post_accuracy: Optional[float] = None      # served, after the swap
    holdout_size: int = 0
    train_size: int = 0
    wall_seconds: float = 0.0
    checkpoint: Optional[str] = None


class RepairLoop:
    """Drive monitor alarms to verified hot swaps on a live service."""

    def __init__(self, service: InferenceService, monitor: DriftMonitor,
                 factory: ModelFactory,
                 config: Optional[RepairConfig] = None,
                 rng: RngLike = None,
                 checkpoints: Optional[CheckpointManager] = None,
                 train_fn: Optional[Callable] = None,
                 wall_clock: Callable[[], float] = time.perf_counter):
        self.service = service
        self.monitor = monitor
        self.factory = factory
        self.config = config or RepairConfig()
        self.rng = new_rng(rng)
        self.checkpoints = checkpoints
        self.buffer = ReplayBuffer(capacity=self.config.buffer_capacity)
        # Injectable trainer: tests sabotage the replacement through this
        # seam to prove the rollback guard; default is the real thing.
        self._train = train_fn or self._train_replacement
        self.wall_clock = wall_clock
        self.events: List[RepairEvent] = []
        self.repairs = 0
        self._attempts = 0
        self._last_attempt_observed: Optional[int] = None
        service.attach_monitor(monitor)

    # ------------------------------------------------------------------
    def step(self, x: np.ndarray, labels: Optional[np.ndarray] = None,
             timestamp: Optional[float] = None,
             ) -> Tuple[ServedPrediction, Optional[RepairEvent]]:
        """The closed loop for one batch: serve → observe → maybe repair."""
        prediction = self.service.predict(x)
        self.monitor.observe(prediction, labels=labels, timestamp=timestamp)
        if labels is not None and len(labels):
            self.buffer.append(x, labels)
        return prediction, self.maybe_repair()

    def maybe_repair(self) -> Optional[RepairEvent]:
        """Repair iff the alarm is on and enough evidence has accrued."""
        config = self.config
        if not self.monitor.alarmed:
            return None
        if len(self.buffer) < config.min_buffer_batches:
            return None  # keep accumulating evidence; alarm stays latched
        if self._attempts >= config.max_attempts:
            return None
        first = self.monitor.first_alarm
        if first is not None and \
                self.monitor.observed - first.index <= \
                config.post_alarm_batches:
            return None  # let drifted batches displace the old buffer
        if self._last_attempt_observed is not None and \
                self.monitor.observed - self._last_attempt_observed < \
                config.retry_backoff_batches:
            return None  # backoff after a rolled-back attempt
        return self.repair()

    # ------------------------------------------------------------------
    def repair(self) -> RepairEvent:
        """One full quarantine → retrain → verify-or-rollback cycle."""
        started = self.wall_clock()
        self._attempts += 1
        self._last_attempt_observed = self.monitor.observed
        event = self._repair(started)
        event.wall_seconds = self.wall_clock() - started
        self.events.append(event)
        return event

    def _repair(self, started: float) -> RepairEvent:
        config = self.config
        scores = self.monitor.member_scores()
        live = {m.index for m in self.service.members
                if not m.breaker.quarantined}
        scores = {index: score for index, score in scores.items()
                  if index in live}
        if len(scores) < 2:
            return RepairEvent(
                outcome="skipped", scores=scores,
                reason="need at least 2 scored live members to pick a "
                       "worst and a teacher")
        if config.respect_quorum and \
                len(live) - 1 < self.service.min_members:
            return RepairEvent(
                outcome="skipped", scores=scores,
                reason=f"quarantining would break quorum "
                       f"({len(live) - 1} < {self.service.min_members})")
        worst = max(scores, key=lambda index: (scores[index], index))
        teacher = min(scores, key=lambda index: (scores[index], -index))

        model = self.service.members[0].model
        num_classes = int(getattr(model, "num_classes", 0)) or \
            self.buffer.inferred_classes()
        train_set, x_hold, y_hold = self.buffer.split(
            config.holdout_fraction, num_classes)

        # Quarantine first: the service keeps serving — degraded — while
        # the replacement trains, and the degraded holdout accuracy is
        # the bar the candidate has to clear.
        worst_member = self.service.member_by_index(worst)
        worst_member.breaker.trip(
            f"drift repair: worst health score {scores[worst]:.4f}")
        pre_accuracy = self._served_accuracy(x_hold, y_hold)

        beta = self._choose_beta(train_set)
        teacher_member = self.service.member_by_index(teacher)
        student = self.factory.build(rng=self.rng)
        transfer_parameters(teacher_member.model, student, beta,
                            rng=self.rng)
        self._train(student, train_set)

        survivors = [m for m in self.service.members
                     if not m.breaker.quarantined]
        candidate = Ensemble()
        for member in survivors:
            candidate.add(member.model, member.alpha)
        candidate.add(student, worst_member.alpha)
        candidate_accuracy = candidate.evaluate(
            x_hold, y_hold, batch_size=self.service.config.batch_size)

        base = RepairEvent(
            outcome="", reason="", worst_member=worst,
            teacher_member=teacher, scores=scores, beta=beta,
            pre_accuracy=pre_accuracy,
            candidate_accuracy=candidate_accuracy,
            holdout_size=len(y_hold), train_size=len(train_set))

        if candidate_accuracy < pre_accuracy + config.min_gain:
            # Rollback guard: the replacement underperforms the degraded
            # ensemble it was meant to fix — restore the retired member.
            # The alarm stays latched: the drift evidence is still valid,
            # only the fix failed, so the loop retries after the backoff.
            worst_member.breaker.reinstate()
            base.outcome = "rolled_back"
            base.reason = (
                f"candidate holdout accuracy {candidate_accuracy:.4f} < "
                f"degraded {pre_accuracy:.4f} + min_gain "
                f"{config.min_gain:g}; member {worst} reinstated")
            return base

        self.service.replace_member(worst, student, worst_member.alpha)
        self.repairs += 1
        base.post_accuracy = self._served_accuracy(x_hold, y_hold)
        if self.checkpoints is not None:
            path = self.checkpoints.snapshot_ensemble(
                self._live_ensemble(), round_index=self.repairs,
                method="repair", metadata={
                    "worst_member": worst, "teacher_member": teacher,
                    "beta": beta, "pre_accuracy": pre_accuracy,
                    "candidate_accuracy": candidate_accuracy,
                })
            base.checkpoint = str(path)
        # New alarm era: recalibrate the monitor on the repaired
        # ensemble's output distribution and reopen the attempt budget.
        self.monitor.reset()
        self._attempts = 0
        self._last_attempt_observed = None
        base.outcome = "repaired"
        base.reason = (
            f"member {worst} replaced (teacher {teacher}, beta {beta:g}): "
            f"holdout {pre_accuracy:.4f} -> {candidate_accuracy:.4f}")
        return base

    # ------------------------------------------------------------------
    def _choose_beta(self, train_set: Dataset) -> float:
        config = self.config
        if config.beta != "probe":
            return float(config.beta)
        selection = select_beta(
            self.factory, train_set, n_folds=config.probe_folds,
            teacher_epochs=config.probe_epochs,
            probe_epochs=config.probe_epochs, lr=config.lr,
            batch_size=config.batch_size, rng=self.rng)
        return selection.beta

    def _train_replacement(self, student, train_set: Dataset) -> None:
        config = TrainingConfig(epochs=self.config.train_epochs,
                                lr=self.config.lr,
                                batch_size=self.config.batch_size,
                                schedule="constant")
        train_model(student, train_set, config, rng=self.rng)

    def _served_accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Aggregate accuracy as the live (possibly degraded) service."""
        prediction = self.service.predict(x)
        return float((prediction.labels == np.asarray(y)).mean())

    def _live_ensemble(self) -> Ensemble:
        ensemble = Ensemble()
        for member in self.service.members:
            ensemble.add(member.model, member.alpha)
        return ensemble
