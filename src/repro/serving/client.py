"""A retrying, hedging client for the serving pipeline.

The server side of overload resilience (admission control, brownout)
only works if callers hold up their half of the contract: back off when
shed, spread retries out, never retry what cannot succeed.
:class:`RetryingClient` is that contract, executable:

* **Exponential backoff with full jitter** — attempt ``n`` sleeps
  ``uniform(0, min(max_delay, base_delay · 2ⁿ))``.  Full jitter (the
  AWS-style variant) de-synchronises a fleet of retrying clients: after
  a shedding episode the retries arrive spread over the whole window
  instead of as a synchronised thundering herd that re-triggers it.
* **``retry_after`` is a floor, not a suggestion** — when the server
  sheds with :class:`~repro.serving.errors.Overloaded`, its computed
  hint is how long the queue needs to drain; sleeping less than that is
  guaranteed wasted work, so the jittered delay is clamped up to it.
* **A retry budget** — ``max_attempts`` bounds the attempts and
  ``budget`` bounds the total wall-clock a single :meth:`predict` may
  consume across attempts and sleeps; when the next sleep would blow
  the budget the client stops early and re-raises the last error.
* **Taxonomy-aware** — :class:`InvalidRequest` is *never* retried (the
  request can never become valid by waiting); every
  :class:`ServiceUnavailable` (including ``Overloaded``/``QueueFull``)
  is retryable by definition of the taxonomy.
* **Optional hedged requests** — tail latency insurance: if the primary
  attempt has not answered within a p95-based delay (measured from this
  client's own completed calls), a second identical request is
  submitted and whichever answers first wins.  Hedges are *best
  effort*: a hedge refused by admission control is simply dropped (a
  shedding server is the worst moment to double traffic), and hedging
  stays disabled until ``hedge_min_samples`` latencies have been
  observed (no p95, no hedge — unless an explicit ``hedge_delay``
  bootstrap is configured).

Determinism: the jitter RNG is seeded, the clock and sleep are
injectable, so every retry/hedge decision replays bit-identically under
a :class:`~repro.serving.faults.ManualClock` test harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.serving.errors import (
    InvalidRequest,
    Overloaded,
    ServiceUnavailable,
)
from repro.serving.service import ServedPrediction

__all__ = ["ClientStats", "RetryConfig", "RetryingClient"]


@dataclass
class RetryConfig:
    """Knobs for :class:`RetryingClient`."""

    max_attempts: int = 4
    base_delay: float = 0.05       # first backoff ceiling (seconds)
    max_delay: float = 2.0         # backoff ceiling growth stops here
    budget: Optional[float] = None  # total seconds across attempts+sleeps
    hedge: bool = False
    #: Bootstrap hedge delay before p95 data exists (``None``: no
    #: hedging until ``hedge_min_samples`` latencies are recorded).
    hedge_delay: Optional[float] = None
    hedge_min_samples: int = 20
    latency_window: int = 128      # completed-call latencies kept for p95
    race_poll_s: float = 0.002     # primary-vs-hedge poll slice
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay} / {self.max_delay}")
        if self.budget is not None and self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")


@dataclass
class ClientStats:
    """What this client did on behalf of its caller."""

    calls: int = 0                 # predict() invocations
    attempts: int = 0              # submissions (incl. hedges)
    retries: int = 0               # backoff-then-resubmit cycles
    shed_seen: int = 0             # Overloaded/QueueFull responses seen
    hedges: int = 0                # hedge submissions
    hedge_wins: int = 0            # hedge answered before the primary
    failures: int = 0              # predict() calls that ultimately raised
    slept: float = 0.0             # total backoff seconds
    #: error code -> times seen (the taxonomy in action).
    errors_seen: Dict[str, int] = field(default_factory=dict)


class RetryingClient:
    """Retry/backoff/hedge wrapper over a :class:`ServingPipeline`.

    Works against the pipeline *interface* — ``submit(x, deadline=) ->
    ticket`` plus ticket ``done``/``failed``/``wait`` — so tests drive
    it with a scripted fake and the real
    :class:`~repro.serving.transport.ServingPipeline` satisfies it
    unchanged.
    """

    def __init__(self, pipeline, config: Optional[RetryConfig] = None,
                 clock: Optional[Callable[[], float]] = None,
                 sleep: Optional[Callable[[float], None]] = None):
        self.pipeline = pipeline
        self.config = config or RetryConfig()
        self.clock = clock if clock is not None else \
            getattr(pipeline, "clock", time.monotonic)
        self.sleep = sleep if sleep is not None else time.sleep
        self._rng = np.random.default_rng(
            np.random.SeedSequence([0xC11E27, int(self.config.seed)]))
        self._latencies: list = []
        self.stats = ClientStats()

    # ------------------------------------------------------------------
    def predict(self, x, deadline: Optional[float] = None,
                ) -> ServedPrediction:
        """One logical request: submit, retry on unavailability, hedge.

        Raises :class:`InvalidRequest` immediately (never retried) and
        re-raises the last :class:`ServiceUnavailable` once the attempt
        or time budget is exhausted.
        """
        config = self.config
        started = self.clock()
        self.stats.calls += 1
        last_error: Optional[ServiceUnavailable] = None
        for attempt in range(config.max_attempts):
            try:
                begin = self.clock()
                prediction = self._attempt(x, deadline, started)
                self._record_latency(self.clock() - begin)
                return prediction
            except InvalidRequest:
                self.stats.failures += 1
                raise
            except ServiceUnavailable as error:
                self._count_error(error)
                last_error = error
            delay = self._backoff_delay(attempt, last_error)
            if attempt + 1 >= config.max_attempts or \
                    not self._within_budget(started, delay):
                break
            self.stats.retries += 1
            self.stats.slept += delay
            if delay > 0:
                self.sleep(delay)
        self.stats.failures += 1
        raise last_error

    # ------------------------------------------------------------------
    def _attempt(self, x, deadline: Optional[float],
                 started: float) -> ServedPrediction:
        """One submission, hedged when the p95 delay expires unanswered."""
        self.stats.attempts += 1
        primary = self.pipeline.submit(x, deadline=deadline)
        hedge_after = self._hedge_delay()
        if hedge_after is None:
            return primary.wait(self._remaining(started))
        try:
            return primary.wait(min(hedge_after,
                                    self._remaining(started) or hedge_after))
        except TimeoutError:
            pass
        hedge = None
        try:
            self.stats.hedges += 1
            self.stats.attempts += 1
            hedge = self.pipeline.submit(x, deadline=deadline)
        except ServiceUnavailable as error:
            # A shed hedge is dropped, not retried: doubling traffic on
            # a shedding server defeats the point of hedging.
            self._count_error(error)
        if hedge is None:
            return primary.wait(self._remaining(started))
        return self._race(primary, hedge, started)

    def _race(self, primary, hedge, started: float) -> ServedPrediction:
        """First successful ticket wins; both failing raises the primary's
        error (the hedge was insurance, not the request of record)."""
        while True:
            if primary.done and not primary.failed:
                return primary.wait(0)
            if hedge.done and not hedge.failed:
                self.stats.hedge_wins += 1
                return hedge.wait(0)
            if primary.done and hedge.done:
                return primary.wait(0)    # re-raises the primary failure
            remaining = self._remaining(started)
            if remaining is not None and remaining <= 0:
                raise TimeoutError(
                    f"request unanswered within the {self.config.budget:g}s "
                    "client budget (primary and hedge both pending)")
            self.sleep(self.config.race_poll_s)

    # ------------------------------------------------------------------
    def _backoff_delay(self, attempt: int,
                       error: Optional[ServiceUnavailable]) -> float:
        """Full-jitter exponential backoff, floored at ``retry_after``."""
        ceiling = min(self.config.max_delay,
                      self.config.base_delay * (2 ** attempt))
        delay = float(self._rng.uniform(0.0, ceiling)) if ceiling > 0 else 0.0
        if isinstance(error, Overloaded) and error.retry_after:
            delay = max(delay, float(error.retry_after))
        return delay

    def _within_budget(self, started: float, delay: float) -> bool:
        if self.config.budget is None:
            return True
        return self.clock() - started + delay < self.config.budget

    def _remaining(self, started: float) -> Optional[float]:
        if self.config.budget is None:
            return None
        return self.config.budget - (self.clock() - started)

    def _hedge_delay(self) -> Optional[float]:
        """The p95 of this client's own completed calls, when hedging."""
        if not self.config.hedge:
            return None
        if len(self._latencies) >= self.config.hedge_min_samples:
            return float(np.percentile(
                np.asarray(self._latencies, dtype=np.float64), 95))
        return self.config.hedge_delay

    def _record_latency(self, seconds: float) -> None:
        self._latencies.append(float(seconds))
        if len(self._latencies) > self.config.latency_window:
            del self._latencies[:-self.config.latency_window]

    def _count_error(self, error: ServiceUnavailable) -> None:
        code = getattr(error, "code", type(error).__name__)
        self.stats.errors_seen[code] = \
            self.stats.errors_seen.get(code, 0) + 1
        if isinstance(error, Overloaded):
            self.stats.shed_seen += 1
