"""The fault-tolerant inference service around a loaded ensemble.

An α-weighted ensemble (paper Eq. 16) degrades gracefully by
construction: the vote ``H(x) = Σ α_t h_t(x) / Σ α_t`` stays a valid —
slightly weaker — predictor under *any* subset of members, because the
normaliser renormalises whatever α mass is actually present.
:class:`InferenceService` turns that property into production failure
semantics:

* **Resilient startup** — :meth:`InferenceService.from_archive` loads the
  archive with ``strict=False`` by default, dropping members whose arrays
  are corrupt/missing/non-finite (see
  :func:`repro.core.serialization.load_ensemble`), and then applies the
  quorum knob: fewer than ``min_members`` survivors (default
  ``ceil(T/2)``) means the service *refuses to start* with
  :class:`ServiceUnavailable` instead of silently serving a husk.
* **Request hardening** — inputs are screened by an
  :class:`~repro.serving.validation.InputSpec` (shape/dtype/NaN/range →
  :class:`InvalidRequest`); per-request ``deadline`` cuts off members
  that have not *started* once the wall-clock budget is spent and returns
  the partial α-weighted aggregate over the members that finished; every
  member runs behind a :class:`~repro.serving.breaker.CircuitBreaker`, so
  a repeatedly faulting member is quarantined (its α leaves the vote)
  and periodically re-probed.
* **Operational surface** — :meth:`health` snapshots the whole state
  machine: live/quarantined/dropped members with reasons, effective α
  mass, request/fault counters, readiness against the quorum.

Aggregation is arithmetic-identical to
:meth:`repro.core.ensemble.Ensemble.predict_probs` over the completed
members — same weight normalisation, same accumulation order — so a
degraded answer is *bit-identical* to what a freshly built ensemble of
the surviving members would produce.  Tests assert exactly that.

Since the concurrent-pipeline split this module is the *policy* core of
the serving stack: validation, roster bookkeeping, the α aggregation
arithmetic and the health surface.  The mechanics of running members on
a thread pool live in :mod:`repro.serving.executor`, request coalescing
in :mod:`repro.serving.scheduler`, and the async ``submit/poll/result``
front door in :mod:`repro.serving.transport` — all of which reuse
:meth:`InferenceService.roster_snapshot` / :meth:`InferenceService.finish`
so every path shares one aggregation (and one set of counters).
:meth:`predict` itself stays the sequential reference implementation.

Thread-safety contract: roster mutation (``replace_member``) and roster
reads (``predict``/``health``/``roster_snapshot``) synchronise on the
swap lock; request counters have their own lock; breaker state is locked
inside :class:`~repro.serving.breaker.CircuitBreaker`.  ``health()``
therefore returns a mutually consistent snapshot — member list, breaker
states and swap count taken under one lock acquisition, never a torn
mid-swap mix.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.serialization import (
    CheckpointError,
    LoadReport,
    PathLike,
    load_ensemble,
)
from repro.concurrency import tracked_lock
from repro.core.ensemble import Ensemble
from repro.models.factory import ModelFactory
from repro.serving.breaker import CircuitBreaker
from repro.serving.errors import (
    InvalidRequest,
    MemberFault,
    ServiceUnavailable,
)
from repro.serving.members import ServingMember
from repro.serving.validation import InputSpec

#: Why a member did not contribute to one prediction.
SKIP_QUARANTINED = "quarantined"
SKIP_FAULT = "fault"
SKIP_DEADLINE = "deadline"


@dataclass
class ServiceConfig:
    """Knobs for :class:`InferenceService`.

    ``min_members=None`` means "majority quorum": ``ceil(T/2)`` of the
    members the archive declares.  ``clock`` is injectable so tests drive
    deadlines and breaker cooldowns with a manual clock.
    """

    min_members: Optional[int] = None
    strict: bool = False
    fault_threshold: int = 3
    breaker_cooldown: float = 30.0
    batch_size: int = 256
    input_spec: Optional[InputSpec] = None
    clock: Callable[[], float] = time.monotonic
    #: Attach each member's softmax rows to the prediction, keyed by the
    #: member's original index.  Drift monitors consume these — the
    #: per-member outputs the aggregate already computed — so monitoring
    #: costs zero extra forward passes.
    expose_member_probs: bool = False


@dataclass
class ServedPrediction:
    """One answered request: the aggregate plus who produced it."""

    probs: np.ndarray
    members_used: List[int]
    #: (original member index, skip kind, human-readable reason)
    members_skipped: List[Tuple[int, str, str]]
    alpha_mass: float              # α used / α configured (incl. dropped)
    deadline_hit: bool
    latency: float
    #: Per-member softmax rows (original index -> probs); populated only
    #: when ``ServiceConfig.expose_member_probs`` is set.
    member_probs: Optional[Dict[int, np.ndarray]] = None
    #: Brownout degrade level this answer was served at (0 = full
    #: roster).  ``members_used`` records the exact roster that voted.
    brownout_level: int = 0

    @property
    def labels(self) -> np.ndarray:
        return self.probs.argmax(axis=1)

    @property
    def degraded(self) -> bool:
        return bool(self.members_skipped) or self.alpha_mass < 1.0 or \
            self.brownout_level > 0


@dataclass
class ServiceHealth:
    """Snapshot of the service state machine for monitoring/readiness."""

    ready: bool
    members_total: int                       # declared by the archive
    members_live: List[int]
    members_quarantined: Dict[int, str]      # index -> breaker reason
    dropped_at_load: Dict[int, str]          # index -> load failure reason
    min_members: int
    effective_alpha_mass: float              # live α / configured α
    requests_served: int
    requests_rejected: int                   # InvalidRequest
    requests_unavailable: int                # ServiceUnavailable
    member_faults: Dict[int, int] = field(default_factory=dict)
    #: index -> (breaker state, seconds in that state)
    breaker_states: Dict[int, Tuple[str, float]] = field(default_factory=dict)
    #: One-line degraded-load summary ("" when the load was clean).
    load_summary: str = ""
    #: Monitor statistic name -> alarming?  Empty when no monitor attached.
    monitor_alarms: Dict[str, bool] = field(default_factory=dict)
    #: Hot swaps applied by the repair loop over the service lifetime.
    member_swaps: int = 0
    #: Requests refused by admission control (Overloaded/QueueFull).
    requests_shed: int = 0
    #: Current brownout degrade level (0 when no pressure controller is
    #: attached or pressure is clear) and the roster it would serve.
    brownout_level: int = 0
    brownout_members: Optional[List[int]] = None


class InferenceService:
    """Serve α-weighted ensemble predictions with production semantics."""

    def __init__(self, ensemble: Ensemble,
                 config: Optional[ServiceConfig] = None,
                 load_report: Optional[LoadReport] = None):
        self.config = config or ServiceConfig()
        self.clock = self.config.clock
        self.load_report = load_report or LoadReport(
            requested=len(ensemble),
            loaded_indices=list(range(len(ensemble))))
        self.members: List[ServingMember] = [
            ServingMember(
                index=original_index, model=model, alpha=alpha,
                breaker=CircuitBreaker(
                    fault_threshold=self.config.fault_threshold,
                    cooldown=self.config.breaker_cooldown,
                    clock=self.clock))
            for original_index, model, alpha in zip(
                self.load_report.loaded_indices, ensemble.models,
                ensemble.alphas)
        ]
        total = self.load_report.requested or len(self.members)
        self.min_members = self.config.min_members if \
            self.config.min_members is not None else math.ceil(total / 2)
        if self.min_members < 1:
            raise ValueError(
                f"min_members must be >= 1, got {self.min_members}")
        self._alpha_configured = sum(m.alpha for m in self.members) + \
            sum(drop.alpha for drop in self.load_report.dropped)
        self._served = 0
        self._rejected = 0
        self._unavailable = 0
        self._shed = 0
        # Hot-swap machinery: ``replace_member`` publishes a fresh member
        # list under this lock (copy-on-write); readers snapshot the list
        # once per request, so an in-flight prediction sees either the
        # full old roster or the full new one, never a torn mix.
        self._swap_lock = tracked_lock("service.swap")
        # Request counters are bumped from executor/transport threads too.
        self._stats_lock = tracked_lock("service.stats")
        self._member_swaps = 0
        #: Optional drift monitor (duck-typed: anything with
        #: ``alarm_summary() -> Dict[str, bool]``); surfaced in health().
        self.monitor = None
        #: Optional pressure controller (duck-typed: anything with
        #: ``snapshot() -> dict`` and ``roster_for``); attached by the
        #: pipeline when brownout is enabled, surfaced in health().
        self.pressure = None
        if len(self.members) < self.min_members:
            raise ServiceUnavailable(
                f"quorum not met: {len(self.members)} member(s) loaded, "
                f"min_members={self.min_members} "
                f"({len(self.load_report.dropped)} dropped at load)")

    # ------------------------------------------------------------------
    @classmethod
    def from_archive(cls, path: PathLike, factory: ModelFactory,
                     config: Optional[ServiceConfig] = None,
                     ) -> "InferenceService":
        """Load a saved ensemble and stand the service up around it.

        Every way the archive can be unusable — unreadable file, below
        quorum after degraded loading, architecture mismatch — surfaces
        as :class:`ServiceUnavailable` ("refuse to start"), with the
        underlying loader error chained for diagnostics.
        """
        config = config or ServiceConfig()
        report = LoadReport()
        try:
            ensemble = load_ensemble(path, factory, strict=config.strict,
                                     report=report)
        except (CheckpointError, ValueError) as error:
            raise ServiceUnavailable(
                f"cannot load ensemble from {path}: {error}") from error
        return cls(ensemble, config=config, load_report=report)

    # ------------------------------------------------------------------
    def predict(self, x, deadline: Optional[float] = None) -> ServedPrediction:
        """Answer one request, degrading over member faults and deadlines.

        ``deadline`` is a wall-clock budget in seconds.  Members are
        evaluated sequentially; a member is only *started* while budget
        remains, and the answer is the α-weighted average over the
        members that completed — the same arithmetic as
        :meth:`Ensemble.predict_probs` restricted to those members.

        Raises :class:`InvalidRequest` for malformed payloads and
        :class:`ServiceUnavailable` when not a single member produced a
        valid output.
        """
        if deadline is not None and deadline <= 0:
            self.count_rejected()
            raise InvalidRequest(
                f"deadline must be positive, got {deadline}", field="deadline")
        x = self.validate(x)
        started = self.clock()
        # Snapshot the roster and its configured α mass as one consistent
        # pair; a concurrent replace_member cannot tear this request.
        members, alpha_configured = self.roster_snapshot()
        outputs: List[Tuple[ServingMember, np.ndarray]] = []
        skipped: List[Tuple[int, str, str]] = []
        deadline_hit = False
        for member in members:
            if deadline is not None and \
                    self.clock() - started >= deadline:
                deadline_hit = True
                skipped.append((member.index, SKIP_DEADLINE,
                                f"not started within the {deadline:g}s "
                                "deadline"))
                continue
            if not member.breaker.allow():
                skipped.append((member.index, SKIP_QUARANTINED,
                                member.breaker.describe()))
                continue
            try:
                probs = member.predict(x, batch_size=self.config.batch_size)
            except MemberFault as fault:
                skipped.append((member.index, SKIP_FAULT, fault.reason))
                continue
            outputs.append((member, probs))
        return self.finish(outputs, skipped, alpha_configured,
                           deadline_hit=deadline_hit,
                           latency=self.clock() - started)

    # -- shared building blocks (serial predict + concurrent pipeline) --
    def roster_snapshot(self) -> Tuple[List[ServingMember], float]:
        """The roster and its configured α mass, as one consistent pair.

        Copy-on-write makes the returned list immutable in practice: a
        concurrent :meth:`replace_member` publishes a *new* list, so a
        holder of this snapshot sees either the full old ensemble or the
        full new one, never a torn mix.
        """
        with self._swap_lock:
            return self.members, self._alpha_configured

    def finish(self, outputs: List[Tuple[ServingMember, np.ndarray]],
               skipped: List[Tuple[int, str, str]],
               alpha_configured: float, deadline_hit: bool,
               latency: float, brownout_level: int = 0) -> ServedPrediction:
        """Aggregate completed member outputs into one answer.

        The single place the Eq. 16 arithmetic lives: bit-identical to
        :meth:`Ensemble.predict_probs` over the completed members — same
        normalisation, same accumulation order — whichever execution
        path (serial loop, thread pool, micro-batch) produced them.
        ``outputs`` must be in roster order.  Raises
        :class:`ServiceUnavailable` (and counts it) when empty.
        """
        if not outputs:
            self.count_unavailable()
            reasons = "; ".join(f"member {i} {kind}: {why}"
                                for i, kind, why in skipped) or "no members"
            raise ServiceUnavailable(f"no member produced an answer "
                                     f"({reasons})")
        alphas = np.asarray([member.alpha for member, _ in outputs])
        weights = alphas / alphas.sum()
        combined = np.zeros_like(outputs[0][1])
        for weight, (_, probs) in zip(weights, outputs):
            combined += weight * probs
        with self._stats_lock:
            self._served += 1
        mass = 1.0 if alpha_configured <= 0 else \
            float(alphas.sum() / alpha_configured)
        return ServedPrediction(
            probs=combined,
            members_used=[member.index for member, _ in outputs],
            members_skipped=skipped,
            alpha_mass=mass,
            deadline_hit=deadline_hit,
            latency=latency,
            member_probs={member.index: probs for member, probs in outputs}
            if self.config.expose_member_probs else None,
            brownout_level=brownout_level,
        )

    def count_rejected(self) -> None:
        with self._stats_lock:
            self._rejected += 1

    def count_unavailable(self) -> None:
        with self._stats_lock:
            self._unavailable += 1

    def count_shed(self) -> None:
        """One request refused by admission control (also unavailable —
        :class:`Overloaded` is a :class:`ServiceUnavailable`)."""
        with self._stats_lock:
            self._unavailable += 1
            self._shed += 1

    def validate(self, x) -> np.ndarray:
        """Screen one request payload; counts and raises on rejection."""
        try:
            return self._validate(x)
        except InvalidRequest:
            self.count_rejected()
            raise

    def _validate(self, x) -> np.ndarray:
        spec = self.config.input_spec
        if spec is not None:
            return spec.validate(x)
        # No spec configured: still refuse poisoned payloads.
        x = np.asarray(x)
        if np.issubdtype(x.dtype, np.floating) and \
                not np.isfinite(x).all():
            raise InvalidRequest(
                f"payload contains {int((~np.isfinite(x)).sum())} "
                "non-finite (NaN/Inf) value(s)", field="values")
        return x

    # ------------------------------------------------------------------
    def member_by_index(self, index: int) -> ServingMember:
        """The live member with original archive index ``index``."""
        for member in self.members:
            if member.index == index:
                return member
        raise ValueError(f"no live member with index {index} "
                         f"(live: {[m.index for m in self.members]})")

    def replace_member(self, index: int, model, alpha: float,
                       ) -> ServingMember:
        """Hot-swap the member with original index ``index`` for ``model``.

        The repair loop's publication step.  The new roster is built
        copy-on-write and published (together with its configured α mass,
        so ``alpha_mass`` renormalises against the *current* weights)
        under the swap lock; a prediction snapshotting the roster sees
        either the full old ensemble or the full new one.  The
        replacement gets a fresh ``CLOSED`` breaker — the retired
        member's fault history does not taint its successor — and the
        retired :class:`ServingMember` is returned intact (model, α,
        breaker) so the caller can keep it for rollback.
        """
        alpha = float(alpha)
        if not np.isfinite(alpha) or alpha <= 0:
            raise ValueError(
                f"alpha must be positive and finite, got {alpha}")
        model.eval()
        with self._swap_lock:
            positions = [i for i, m in enumerate(self.members)
                         if m.index == index]
            if not positions:
                raise ValueError(
                    f"no live member with index {index} "
                    f"(live: {[m.index for m in self.members]})")
            position = positions[0]
            retired = self.members[position]
            roster = list(self.members)
            roster[position] = ServingMember(
                index=index, model=model, alpha=alpha,
                breaker=CircuitBreaker(
                    fault_threshold=self.config.fault_threshold,
                    cooldown=self.config.breaker_cooldown,
                    clock=self.clock))
            self.members = roster
            self._alpha_configured = sum(m.alpha for m in roster) + \
                sum(drop.alpha for drop in self.load_report.dropped)
            self._member_swaps += 1
        return retired

    def attach_monitor(self, monitor) -> None:
        """Surface ``monitor.alarm_summary()`` in :meth:`health`.

        Duck-typed on purpose: the serving layer must not import
        :mod:`repro.serving.monitor` (a sub-layer above it), so any
        object with ``alarm_summary() -> Dict[str, bool]`` qualifies.
        """
        self.monitor = monitor

    def attach_pressure(self, pressure) -> None:
        """Surface a pressure controller's ``snapshot()`` in :meth:`health`.

        Duck-typed for the same layering reason as :meth:`attach_monitor`:
        the service must not import :mod:`repro.serving.pressure` (a
        sub-layer above it).
        """
        self.pressure = pressure

    def member_health_scores(self, members: Optional[List[ServingMember]]
                             = None) -> Dict[int, float]:
        """Health score per member (higher is sicker) for brownout ranking.

        The primary signal is the drift monitor's rolling
        deviation-from-consensus score (PR 7) when a monitor is attached;
        each member's lifetime breaker fault count is added on top, so a
        member that keeps faulting ranks sicker than one that never has
        even before any drift evidence accumulates.  Members absent from
        both signals score 0.0 (healthy).
        """
        if members is None:
            members, _ = self.roster_snapshot()
        scores = {member.index: 0.0 for member in members}
        if self.monitor is not None and \
                hasattr(self.monitor, "member_scores"):
            for index, score in self.monitor.member_scores().items():
                if index in scores:
                    scores[index] += float(score)
        for member in members:
            scores[member.index] += float(member.breaker.total_faults)
        return scores

    # ------------------------------------------------------------------
    def health(self) -> ServiceHealth:
        """Current liveness/readiness snapshot (cheap; no model runs).

        The roster, its configured α mass and the swap counter are read
        under the swap lock, so a snapshot racing ``replace_member``
        reports either the pre-swap or the post-swap service — member
        lists, breaker states and ``member_swaps`` stay mutually
        consistent, never a torn mid-swap mix.
        """
        with self._swap_lock:
            members = self.members
            alpha_configured = self._alpha_configured
            member_swaps = self._member_swaps
        with self._stats_lock:
            served, rejected = self._served, self._rejected
            unavailable, shed = self._unavailable, self._shed
        live, quarantined = [], {}
        alpha_live = 0.0
        for member in members:
            if member.breaker.quarantined:
                quarantined[member.index] = member.breaker.describe()
            else:
                live.append(member.index)
                alpha_live += member.alpha
        mass = 1.0 if alpha_configured <= 0 else \
            alpha_live / alpha_configured
        brownout_level = 0
        brownout_members = None
        if self.pressure is not None:
            brownout_level = int(self.pressure.snapshot().get("level", 0))
            if brownout_level > 0:
                roster, _ = self.pressure.roster_for(
                    members, self.member_health_scores(members))
                brownout_members = [member.index for member in roster]
        report = self.load_report
        load_summary = ""
        if report.degraded:
            load_summary = (
                f"{len(report.loaded_indices)}/{report.requested} members "
                f"loaded, alpha retained {report.alpha_retained:.3f}; "
                "dropped: " + "; ".join(
                    f"member {drop.index}: {drop.reason}"
                    for drop in report.dropped))
        return ServiceHealth(
            ready=len(live) >= self.min_members,
            members_total=report.requested or len(members),
            members_live=live,
            members_quarantined=quarantined,
            dropped_at_load={drop.index: drop.reason
                             for drop in report.dropped},
            min_members=self.min_members,
            effective_alpha_mass=mass,
            requests_served=served,
            requests_rejected=rejected,
            requests_unavailable=unavailable,
            member_faults={member.index: member.breaker.total_faults
                           for member in members
                           if member.breaker.total_faults},
            breaker_states={member.index: (member.breaker.state,
                                           member.breaker.state_age())
                            for member in members},
            load_summary=load_summary,
            monitor_alarms=dict(self.monitor.alarm_summary())
            if self.monitor is not None else {},
            member_swaps=member_swaps,
            requests_shed=shed,
            brownout_level=brownout_level,
            brownout_members=brownout_members,
        )
