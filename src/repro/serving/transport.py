"""The transport layer: an async front door over the serving pipeline.

:class:`ServingPipeline` composes the serving layers into the concurrent
request path::

    submit() ──► MicroBatcher ──► MemberExecutor ──► finish() ──► Ticket
    (validate,   (coalesce         (members on a      (Eq. 16 α
     admission    same-size         thread pool,       aggregate,
     control)     requests)         blocked GEMMs)     per request)

* :meth:`submit` validates the payload (the service's counters see every
  rejection), enqueues it and returns a :class:`Ticket`;
* :meth:`poll` asks whether a ticket's answer is ready;
* :meth:`result` blocks for the answer (re-raising the request's
  failure, e.g. :class:`ServiceUnavailable` when every member was lost);
* :meth:`predict` is the blocking wrapper — submit then result — with
  the same signature and semantics as
  :meth:`InferenceService.predict`.

**Bit-parity.**  A batch stacks only same-row-count requests (the
scheduler's invariant) and each member evaluates the stack under
:func:`repro.ops.batching.batch_cell`, so every request's rows travel
through exactly the GEMM geometry of a solo call; slicing the stacked
softmax rows back apart and aggregating per request through
:meth:`InferenceService.finish` therefore answers **bit-identically** to
``service.predict`` for that request alone.  The property test asserts
equality with ``==``, not ``allclose``.

**Overload.**  At saturation the pipeline degrades in two deliberate
steps instead of collapsing:

1. *Admission control* — the batcher's CoDel-style
   :class:`~repro.serving.scheduler.AdmissionController` (enabled by
   ``target_delay_ms``) sheds arrivals with
   :class:`~repro.serving.errors.Overloaded` + ``retry_after`` once the
   queue's sojourn time stands above target; the bounded queue's
   :class:`~repro.serving.errors.QueueFull` is the hard edge of the same
   taxonomy.
2. *Brownout* — a :class:`~repro.serving.pressure.PressureController`
   (enabled by ``brownout=True``) maps the same sojourn signal to a
   degrade level; at elevated levels batches are served by only the K
   healthiest members (health scores from the drift monitor + breaker
   history, α renormalised per Eq. 16 — still bit-identical to
   ``Ensemble.predict_probs`` over that subset), and the full roster
   returns with hysteresis once pressure clears.  Every answer records
   the roster that voted (``members_used``) and the level it was served
   at (``brownout_level``); the live level is surfaced in
   :meth:`ServiceHealth <repro.serving.service.InferenceService.health>`.

**Conservation.**  :meth:`stats` exposes the overload ledger — every
validated request is exactly one of admitted / shed, and every admitted
request resolves to exactly one of completed / failed
(``admitted == completed + failed`` once in-flight work drains).  The
chaos harness asserts this invariant over seeded fault schedules.

**Deadlines.**  A deadline-bearing request skips the queue: its budget
starts ticking at submit, and burning it in a batching window would be
self-defeating.  It runs immediately on the member executor (parallel
members, partial α-renormalised aggregate over whatever finished), so
``submit`` with a deadline completes the ticket synchronously.

**Consistency.**  Each batch takes one
:meth:`~InferenceService.roster_snapshot` — the copy-on-write roster
published under the swap lock — so a concurrent hot swap can never tear
a batch: it answers entirely from the pre-swap or entirely from the
post-swap ensemble.  Brownout selection happens per batch *after* the
snapshot, so a browned-out batch is a subset of one consistent roster.

Thread-safety contract: tickets are single-producer (the pump or the
submitting thread) / multi-consumer (poll/result from anywhere);
pipeline shutdown drains the queue so no ticket is left pending.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.concurrency import tracked_lock
from repro.serving.errors import (
    InvalidRequest,
    Overloaded,
    ServiceUnavailable,
)
from repro.serving.executor import MemberExecutor
from repro.serving.pressure import PressureConfig, PressureController
from repro.serving.scheduler import (
    AdmissionController,
    MicroBatcher,
    PendingRequest,
)
from repro.serving.service import InferenceService, ServedPrediction

__all__ = ["PipelineConfig", "PipelineStats", "ServingPipeline", "Ticket"]


@dataclass
class PipelineConfig:
    """Knobs for :class:`ServingPipeline`.

    ``batching=False`` degrades the pipeline to per-request execution
    (still through the member executor) — the load harness's baseline.
    ``workers=0`` runs members inline instead of on a pool.
    ``batch_invariant=False`` drops the blocked-GEMM guarantee (answers
    may differ from solo in the last ulp; marginally faster) — kept as
    an escape hatch and for measuring the cost of the guarantee.

    ``target_delay_ms`` enables CoDel-style admission control on the
    batcher queue (``None`` disables — the PR 8 behaviour);
    ``interval_ms`` is its grace interval.  ``brownout=True`` attaches a
    :class:`PressureController` (tuned via ``pressure``) that serves
    only the healthiest K members at elevated queue pressure.
    """

    max_batch_rows: int = 128
    max_wait_ms: float = 2.0
    queue_depth: int = 256
    workers: Optional[int] = None      # None: pool default; 0: inline
    batching: bool = True
    batch_invariant: bool = True
    target_delay_ms: Optional[float] = None
    interval_ms: float = 100.0
    brownout: bool = False
    pressure: Optional[PressureConfig] = None


@dataclass
class PipelineStats:
    """The overload ledger: where every validated request ended up."""

    submitted: int       # validated requests that reached admission
    admitted: int        # accepted for execution (queued or solo)
    shed: int            # refused by admission control / full queue
    completed: int       # ticket resolved with an answer
    failed: int          # ticket resolved with an error
    pending: int         # admitted, not yet resolved

    @property
    def conserved(self) -> bool:
        """admitted = completed + failed (+ still pending) and every
        submission was either admitted or shed."""
        return (self.submitted == self.admitted + self.shed and
                self.admitted == self.completed + self.failed +
                self.pending)


class Ticket:
    """A submitted request's completion handle (one answer, one error)."""

    __slots__ = ("_event", "_prediction", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._prediction: Optional[ServedPrediction] = None
        self._error: Optional[BaseException] = None

    def _complete(self, prediction: ServedPrediction) -> None:
        self._prediction = prediction
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def failed(self) -> bool:
        return self._error is not None

    def wait(self, timeout: Optional[float] = None) -> ServedPrediction:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request not answered within {timeout:g}s")
        if self._error is not None:
            raise self._error
        return self._prediction


class ServingPipeline:
    """Concurrent micro-batching front end over an :class:`InferenceService`.

    Use as a context manager (or call :meth:`start`/:meth:`close`): the
    batcher's pump thread and the member pool are real resources.
    """

    def __init__(self, service: InferenceService,
                 config: Optional[PipelineConfig] = None):
        self.service = service
        self.config = config or PipelineConfig()
        self.clock = service.clock
        self.executor = MemberExecutor(workers=self.config.workers,
                                       clock=self.clock)
        self.pressure: Optional[PressureController] = None
        if self.config.brownout:
            self.pressure = PressureController(self.config.pressure)
            service.attach_pressure(self.pressure)
        admission = None
        if self.config.target_delay_ms is not None:
            admission = AdmissionController(
                target_delay_ms=self.config.target_delay_ms,
                interval_ms=self.config.interval_ms)
        self.batcher: Optional[MicroBatcher] = None
        if self.config.batching:
            self.batcher = MicroBatcher(
                process=self._process_batch,
                max_batch_rows=self.config.max_batch_rows,
                max_wait_ms=self.config.max_wait_ms,
                queue_depth=self.config.queue_depth,
                admission=admission,
                clock=self.clock)
        # The conservation ledger; counters cross thread boundaries.
        self._stats_lock = tracked_lock("transport.stats")
        self._submitted = 0
        self._admitted = 0
        self._shed = 0
        self._completed = 0
        self._failed = 0

    # ------------------------------------------------------------------
    def start(self, pump: bool = True) -> "ServingPipeline":
        """Start the background pump (``pump=False``: drive ``pump_once``
        manually — the deterministic mode)."""
        if self.batcher is not None and pump:
            self.batcher.start()
        return self

    def close(self) -> None:
        """Stop the pump (draining queued requests) and the member pool."""
        if self.batcher is not None:
            self.batcher.stop()
        self.executor.shutdown()

    def __enter__(self) -> "ServingPipeline":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def submit(self, x, deadline: Optional[float] = None) -> Ticket:
        """Validate and enqueue one request; returns its :class:`Ticket`.

        Raises :class:`InvalidRequest` for malformed payloads,
        :class:`Overloaded` (with a ``retry_after`` hint) when admission
        control sheds the request or the bounded queue is full, and
        :class:`ServiceUnavailable` after shutdown.  Deadline-bearing
        requests execute immediately (see module docstring) and return
        an already-completed ticket.
        """
        if deadline is not None and deadline <= 0:
            self.service.count_rejected()
            raise InvalidRequest(
                f"deadline must be positive, got {deadline}",
                field="deadline")
        x = self.service.validate(x)
        with self._stats_lock:
            self._submitted += 1
        ticket = Ticket()
        if deadline is not None or self.batcher is None:
            with self._stats_lock:
                self._admitted += 1
            self._execute_solo(x, ticket, deadline)
            return ticket
        try:
            self.batcher.submit(x, ticket)
        except Overloaded:
            with self._stats_lock:
                self._shed += 1
            self.service.count_shed()
            raise
        except ServiceUnavailable:
            with self._stats_lock:
                self._shed += 1
            self.service.count_unavailable()
            raise
        with self._stats_lock:
            self._admitted += 1
        return ticket

    def poll(self, ticket: Ticket) -> bool:
        """Is the ticket's answer ready?  Never blocks."""
        return ticket.done

    def result(self, ticket: Ticket,
               timeout: Optional[float] = None) -> ServedPrediction:
        """Block for the ticket's answer (re-raising its failure)."""
        return ticket.wait(timeout)

    def predict(self, x,
                deadline: Optional[float] = None) -> ServedPrediction:
        """Blocking submit+result — the :meth:`InferenceService.predict`
        signature served through the concurrent pipeline."""
        return self.result(self.submit(x, deadline=deadline))

    def stats(self) -> PipelineStats:
        """The conservation ledger (one consistent lock read)."""
        with self._stats_lock:
            return PipelineStats(
                submitted=self._submitted, admitted=self._admitted,
                shed=self._shed, completed=self._completed,
                failed=self._failed,
                pending=self._admitted - self._completed - self._failed)

    # ------------------------------------------------------------------
    def _complete_ticket(self, ticket: Ticket,
                         prediction: ServedPrediction) -> None:
        ticket._complete(prediction)
        with self._stats_lock:
            self._completed += 1

    def _fail_ticket(self, ticket: Ticket, error: BaseException) -> None:
        ticket._fail(error)
        with self._stats_lock:
            self._failed += 1

    def _brownout_roster(self, members):
        """Apply the pressure controller's healthiest-K selection."""
        if self.pressure is None:
            return members, 0
        roster, level = self.pressure.roster_for(
            members, self.service.member_health_scores(members))
        return (roster, level) if roster else (members, 0)

    def _execute_solo(self, x: np.ndarray, ticket: Ticket,
                      deadline: Optional[float]) -> None:
        """Run one request through the executor, bypassing the batcher."""
        started = self.clock()
        try:
            members, alpha_configured = self.service.roster_snapshot()
            members, level = self._brownout_roster(members)
            outputs, skipped, deadline_hit = self.executor.run(
                members, x, batch_size=self.service.config.batch_size,
                deadline=deadline, started=started)
            self._complete_ticket(ticket, self.service.finish(
                outputs, skipped, alpha_configured,
                deadline_hit=deadline_hit,
                latency=self.clock() - started,
                brownout_level=level))
        except BaseException as error:  # noqa: BLE001 — routed to waiter
            self._fail_ticket(ticket, error)

    def _process_batch(self, stacked: np.ndarray,
                       batch: List[PendingRequest]) -> None:
        """The batcher's process hook: one stacked forward, per-request
        slicing and aggregation.  Must not raise (scheduler contract):
        every failure lands on the tickets."""
        rows = batch[0].rows
        if self.pressure is not None:
            # The same sojourn signal admission control sheds on drives
            # the brownout level: the oldest request in this batch has
            # waited exactly the queue's standing delay.
            self.pressure.observe(
                self.clock() - min(pending.enqueued for pending in batch))
        try:
            members, alpha_configured = self.service.roster_snapshot()
            members, level = self._brownout_roster(members)
            outputs, skipped, _hit = self.executor.run(
                members, stacked,
                # One chunk: chunking at config.batch_size could split
                # the stack mid-request and change the GEMM geometry.
                batch_size=len(stacked),
                cell=rows if self.config.batch_invariant and
                len(batch) > 1 else None)
        except BaseException as error:  # noqa: BLE001 — routed to waiters
            for pending in batch:
                self._fail_ticket(pending.ticket, error)
            return
        for position, pending in enumerate(batch):
            lo, hi = position * rows, (position + 1) * rows
            try:
                sliced = [(member, probs[lo:hi])
                          for member, probs in outputs]
                self._complete_ticket(pending.ticket, self.service.finish(
                    sliced, list(skipped), alpha_configured,
                    deadline_hit=False,
                    latency=self.clock() - pending.enqueued,
                    brownout_level=level))
            except BaseException as error:  # noqa: BLE001
                self._fail_ticket(pending.ticket, error)
