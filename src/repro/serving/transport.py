"""The transport layer: an async front door over the serving pipeline.

:class:`ServingPipeline` composes the three serving layers into the
concurrent request path::

    submit() ──► MicroBatcher ──► MemberExecutor ──► finish() ──► Ticket
    (validate)   (coalesce        (members on a      (Eq. 16 α
                  same-size        thread pool,       aggregate,
                  requests)        blocked GEMMs)     per request)

* :meth:`submit` validates the payload (the service's counters see every
  rejection), enqueues it and returns a :class:`Ticket`;
* :meth:`poll` asks whether a ticket's answer is ready;
* :meth:`result` blocks for the answer (re-raising the request's
  failure, e.g. :class:`ServiceUnavailable` when every member was lost);
* :meth:`predict` is the blocking wrapper — submit then result — with
  the same signature and semantics as
  :meth:`InferenceService.predict`.

**Bit-parity.**  A batch stacks only same-row-count requests (the
scheduler's invariant) and each member evaluates the stack under
:func:`repro.ops.batching.batch_cell`, so every request's rows travel
through exactly the GEMM geometry of a solo call; slicing the stacked
softmax rows back apart and aggregating per request through
:meth:`InferenceService.finish` therefore answers **bit-identically** to
``service.predict`` for that request alone.  The property test asserts
equality with ``==``, not ``allclose``.

**Deadlines.**  A deadline-bearing request skips the queue: its budget
starts ticking at submit, and burning it in a batching window would be
self-defeating.  It runs immediately on the member executor (parallel
members, partial α-renormalised aggregate over whatever finished), so
``submit`` with a deadline completes the ticket synchronously.

**Consistency.**  Each batch takes one
:meth:`~InferenceService.roster_snapshot` — the copy-on-write roster
published under the swap lock — so a concurrent hot swap can never tear
a batch: it answers entirely from the pre-swap or entirely from the
post-swap ensemble.

Thread-safety contract: tickets are single-producer (the pump or the
submitting thread) / multi-consumer (poll/result from anywhere);
pipeline shutdown drains the queue so no ticket is left pending.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.serving.errors import InvalidRequest, ServiceUnavailable
from repro.serving.executor import MemberExecutor
from repro.serving.scheduler import MicroBatcher, PendingRequest, QueueFull
from repro.serving.service import InferenceService, ServedPrediction

__all__ = ["PipelineConfig", "ServingPipeline", "Ticket"]


@dataclass
class PipelineConfig:
    """Knobs for :class:`ServingPipeline`.

    ``batching=False`` degrades the pipeline to per-request execution
    (still through the member executor) — the load harness's baseline.
    ``workers=0`` runs members inline instead of on a pool.
    ``batch_invariant=False`` drops the blocked-GEMM guarantee (answers
    may differ from solo in the last ulp; marginally faster) — kept as
    an escape hatch and for measuring the cost of the guarantee.
    """

    max_batch_rows: int = 128
    max_wait_ms: float = 2.0
    queue_depth: int = 256
    workers: Optional[int] = None      # None: pool default; 0: inline
    batching: bool = True
    batch_invariant: bool = True


class Ticket:
    """A submitted request's completion handle (one answer, one error)."""

    __slots__ = ("_event", "_prediction", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._prediction: Optional[ServedPrediction] = None
        self._error: Optional[BaseException] = None

    def _complete(self, prediction: ServedPrediction) -> None:
        self._prediction = prediction
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> ServedPrediction:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request not answered within {timeout:g}s")
        if self._error is not None:
            raise self._error
        return self._prediction


class ServingPipeline:
    """Concurrent micro-batching front end over an :class:`InferenceService`.

    Use as a context manager (or call :meth:`start`/:meth:`close`): the
    batcher's pump thread and the member pool are real resources.
    """

    def __init__(self, service: InferenceService,
                 config: Optional[PipelineConfig] = None):
        self.service = service
        self.config = config or PipelineConfig()
        self.clock = service.clock
        self.executor = MemberExecutor(workers=self.config.workers,
                                       clock=self.clock)
        self.batcher: Optional[MicroBatcher] = None
        if self.config.batching:
            self.batcher = MicroBatcher(
                process=self._process_batch,
                max_batch_rows=self.config.max_batch_rows,
                max_wait_ms=self.config.max_wait_ms,
                queue_depth=self.config.queue_depth,
                clock=self.clock)

    # ------------------------------------------------------------------
    def start(self, pump: bool = True) -> "ServingPipeline":
        """Start the background pump (``pump=False``: drive ``pump_once``
        manually — the deterministic mode)."""
        if self.batcher is not None and pump:
            self.batcher.start()
        return self

    def close(self) -> None:
        """Stop the pump (draining queued requests) and the member pool."""
        if self.batcher is not None:
            self.batcher.stop()
        self.executor.shutdown()

    def __enter__(self) -> "ServingPipeline":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def submit(self, x, deadline: Optional[float] = None) -> Ticket:
        """Validate and enqueue one request; returns its :class:`Ticket`.

        Raises :class:`InvalidRequest` for malformed payloads and
        :class:`ServiceUnavailable` when the bounded queue is full
        (backpressure).  Deadline-bearing requests execute immediately
        (see module docstring) and return an already-completed ticket.
        """
        if deadline is not None and deadline <= 0:
            self.service.count_rejected()
            raise InvalidRequest(
                f"deadline must be positive, got {deadline}",
                field="deadline")
        x = self.service.validate(x)
        ticket = Ticket()
        if deadline is not None or self.batcher is None:
            self._execute_solo(x, ticket, deadline)
            return ticket
        try:
            self.batcher.submit(x, ticket)
        except QueueFull as error:
            self.service.count_unavailable()
            raise ServiceUnavailable(str(error)) from error
        return ticket

    def poll(self, ticket: Ticket) -> bool:
        """Is the ticket's answer ready?  Never blocks."""
        return ticket.done

    def result(self, ticket: Ticket,
               timeout: Optional[float] = None) -> ServedPrediction:
        """Block for the ticket's answer (re-raising its failure)."""
        return ticket.wait(timeout)

    def predict(self, x,
                deadline: Optional[float] = None) -> ServedPrediction:
        """Blocking submit+result — the :meth:`InferenceService.predict`
        signature served through the concurrent pipeline."""
        return self.result(self.submit(x, deadline=deadline))

    # ------------------------------------------------------------------
    def _execute_solo(self, x: np.ndarray, ticket: Ticket,
                      deadline: Optional[float]) -> None:
        """Run one request through the executor, bypassing the batcher."""
        started = self.clock()
        try:
            members, alpha_configured = self.service.roster_snapshot()
            outputs, skipped, deadline_hit = self.executor.run(
                members, x, batch_size=self.service.config.batch_size,
                deadline=deadline, started=started)
            ticket._complete(self.service.finish(
                outputs, skipped, alpha_configured,
                deadline_hit=deadline_hit,
                latency=self.clock() - started))
        except BaseException as error:  # noqa: BLE001 — routed to waiter
            ticket._fail(error)

    def _process_batch(self, stacked: np.ndarray,
                       batch: List[PendingRequest]) -> None:
        """The batcher's process hook: one stacked forward, per-request
        slicing and aggregation.  Must not raise (scheduler contract):
        every failure lands on the tickets."""
        rows = batch[0].rows
        try:
            members, alpha_configured = self.service.roster_snapshot()
            outputs, skipped, _hit = self.executor.run(
                members, stacked,
                # One chunk: chunking at config.batch_size could split
                # the stack mid-request and change the GEMM geometry.
                batch_size=len(stacked),
                cell=rows if self.config.batch_invariant and
                len(batch) > 1 else None)
        except BaseException as error:  # noqa: BLE001 — routed to waiters
            for pending in batch:
                pending.ticket._fail(error)
            return
        for position, pending in enumerate(batch):
            lo, hi = position * rows, (position + 1) * rows
            try:
                sliced = [(member, probs[lo:hi])
                          for member, probs in outputs]
                pending.ticket._complete(self.service.finish(
                    sliced, list(skipped), alpha_configured,
                    deadline_hit=False,
                    latency=self.clock() - pending.enqueued))
            except BaseException as error:  # noqa: BLE001
                pending.ticket._fail(error)
