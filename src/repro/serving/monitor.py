"""Online drift monitors over the served prediction stream.

Distribution drift is invisible to the fault machinery in
:mod:`repro.serving.service`: a drift-degraded member still returns
finite, well-shaped probabilities, so no breaker ever trips.  What drift
*does* move is the statistics of the outputs themselves, and the paper's
own quantities are the right instruments:

* **Ensemble disagreement** (Eq. 7, ``Div_H``) — mean pairwise Eq. 2
  diversity across the member softmax outputs of each batch.  Members
  that agreed on the training distribution disagree on a shifted one, so
  covariate drift pushes this *up*.
* **Member deviation** (the Sim dual) — each member's Eq. 2 distance
  from the α-weighted aggregate.  Its per-member rolling mean is the
  member-health score the repair loop ranks by: the member that drifted
  furthest from the consensus is the repair candidate.
* **ECE** — expected calibration error of the aggregate on batches whose
  labels have arrived; drift makes confident predictions wrong before it
  makes accuracy collapse.
* **Delayed-label accuracy** — ground truth, once labels arrive.

Each statistic drives a one-sided :class:`CusumDetector`: the first
``warmup`` observations calibrate a reference mean/std, after which
``S ← max(0, S + z − k)`` accumulates standardised drift evidence and
alarms at ``S ≥ h``.  CUSUM reacts to sustained small shifts far sooner
than a fixed threshold, and the (k, h) pair bounds the false-alarm rate
under the calibrated distribution.

Timestamps come from the observed batches (or an injectable ``clock``),
so a schedule replayed under a
:class:`~repro.serving.faults.ManualClock` produces bit-identical monitor
state — detection latency is a deterministic, testable number.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro.core.diversity import ensemble_diversity, pairwise_diversity
from repro.serving.service import ServedPrediction

__all__ = [
    "BatchStats",
    "CusumDetector",
    "DriftMonitor",
    "MonitorConfig",
    "expected_calibration_error",
]


def expected_calibration_error(probs: np.ndarray, labels: np.ndarray,
                               bins: int = 10) -> float:
    """ECE: confidence-binned ``Σ (n_b/N)·|acc_b − conf_b|``."""
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels)
    if probs.ndim != 2 or len(probs) != len(labels):
        raise ValueError(
            f"need (N, k) probs and N labels, got {probs.shape} "
            f"and {labels.shape}")
    if len(labels) == 0:
        raise ValueError("ECE of an empty batch is undefined")
    confidence = probs.max(axis=1)
    correct = (probs.argmax(axis=1) == labels).astype(np.float64)
    # Monitoring statistics stay at float64 regardless of the model
    # dtype policy: bin edges are thresholds, not tensor data.
    edges = np.linspace(0.0, 1.0, bins + 1, dtype=np.float64)
    # Right-closed bins; confidence 0 lands in the first bin.
    which = np.clip(np.digitize(confidence, edges[1:-1], right=True), 0,
                    bins - 1)
    ece = 0.0
    for b in range(bins):
        mask = which == b
        count = int(mask.sum())
        if count:
            gap = abs(correct[mask].mean() - confidence[mask].mean())
            ece += (count / len(labels)) * gap
    return float(ece)


class CusumDetector:
    """One-sided CUSUM with a self-calibrated reference window.

    The first ``warmup`` observations define the in-control mean/std;
    each later value is standardised (``direction`` +1 watches upward
    shifts, −1 downward) and accumulated as ``S ← max(0, S + z − k)``.
    ``S ≥ h`` latches the alarm until :meth:`reset`.
    """

    def __init__(self, warmup: int = 10, k: float = 0.5, h: float = 5.0,
                 direction: int = 1, min_std: float = 1e-6):
        if warmup < 2:
            raise ValueError(f"warmup must be >= 2, got {warmup}")
        if k < 0 or h <= 0:
            raise ValueError(f"need k >= 0 and h > 0, got k={k}, h={h}")
        if direction not in (1, -1):
            raise ValueError(f"direction must be +1 or -1, got {direction}")
        self.warmup = int(warmup)
        self.k = float(k)
        self.h = float(h)
        self.direction = int(direction)
        self.min_std = float(min_std)
        self._calibration: List[float] = []
        self.mean: Optional[float] = None
        self.std: Optional[float] = None
        self.statistic = 0.0
        self.alarmed = False
        self.observations = 0

    @property
    def calibrated(self) -> bool:
        return self.mean is not None

    def update(self, value: float) -> bool:
        """Feed one observation; returns whether the alarm is (now) on."""
        value = float(value)
        self.observations += 1
        if not self.calibrated:
            self._calibration.append(value)
            if len(self._calibration) >= self.warmup:
                sample = np.asarray(self._calibration)
                self.mean = float(sample.mean())
                self.std = max(float(sample.std()), self.min_std)
                self._calibration = []
            return False
        z = self.direction * (value - self.mean) / self.std
        self.statistic = max(0.0, self.statistic + z - self.k)
        if self.statistic >= self.h:
            self.alarmed = True
        return self.alarmed

    def reset(self) -> None:
        """Forget everything, including the calibration (post-repair the
        in-control distribution is a different one)."""
        self._calibration = []
        self.mean = None
        self.std = None
        self.statistic = 0.0
        self.alarmed = False
        self.observations = 0


@dataclass
class MonitorConfig:
    """Knobs for :class:`DriftMonitor`."""

    window: int = 20          # rolling-window length (batches)
    warmup: int = 10          # CUSUM calibration batches per statistic
    cusum_k: float = 0.5      # per-step drift allowance (in σ units)
    cusum_h: float = 4.0      # alarm threshold (in σ units)
    #: Floor on the calibrated std.  Every monitored statistic lives on
    #: a [0, 1]-ish scale, and a near-constant warmup (accuracy pinned
    #: at 1.0) would otherwise make σ collapse and a one-batch wobble
    #: read as a massive shift.
    min_std: float = 0.02
    ece_bins: int = 10


@dataclass
class BatchStats:
    """The monitor's read of one observed batch."""

    index: int
    timestamp: float
    disagreement: Optional[float]          # Eq. 7 over member outputs
    member_deviation: Dict[int, float]     # Eq. 2 vs the aggregate
    ece: Optional[float]                   # needs labels
    accuracy: Optional[float]              # needs labels
    alarms: Dict[str, bool] = field(default_factory=dict)


class DriftMonitor:
    """Rolling-window drift statistics + CUSUM alarms over served batches.

    Feed it every answered request via :meth:`observe` (optionally with
    the batch's delayed labels).  It consumes the per-member softmax
    rows the service already computed (``expose_member_probs``) — no
    extra forward passes — and keeps per-member rolling health scores
    for the repair loop.
    """

    #: Statistic names, their CUSUM direction, and whether they need labels.
    _STATISTICS = (
        ("disagreement", +1, False),
        ("deviation", +1, False),
        ("ece", +1, True),
        ("accuracy", -1, True),
    )

    def __init__(self, config: Optional[MonitorConfig] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config or MonitorConfig()
        self.clock = clock
        self.detectors: Dict[str, CusumDetector] = {
            name: CusumDetector(warmup=self.config.warmup,
                                k=self.config.cusum_k,
                                h=self.config.cusum_h,
                                direction=direction,
                                min_std=self.config.min_std)
            for name, direction, _ in self._STATISTICS
        }
        window = self.config.window
        self.history: Deque[BatchStats] = deque(maxlen=window)
        self._deviation: Dict[int, Deque[float]] = {}
        self._member_hits: Dict[int, Deque[float]] = {}
        self.observed = 0
        self.labelled = 0
        #: Set once, at the first batch whose update latched any alarm.
        self.first_alarm: Optional[BatchStats] = None

    # ------------------------------------------------------------------
    def observe(self, prediction: ServedPrediction,
                labels: Optional[np.ndarray] = None,
                timestamp: Optional[float] = None) -> BatchStats:
        """Ingest one answered request; returns the batch's statistics."""
        index = self.observed
        self.observed += 1
        if timestamp is None:
            timestamp = self.clock()
        member_probs = prediction.member_probs or {}

        disagreement = None
        if len(member_probs) >= 2:
            disagreement = ensemble_diversity(list(member_probs.values()))
        deviation = {
            member: pairwise_diversity(probs, prediction.probs)
            for member, probs in member_probs.items()
        }
        for member, value in deviation.items():
            self._deviation.setdefault(
                member, deque(maxlen=self.config.window)).append(value)

        ece = accuracy = None
        if labels is not None and len(labels):
            labels = np.asarray(labels)
            self.labelled += 1
            ece = expected_calibration_error(prediction.probs, labels,
                                             bins=self.config.ece_bins)
            accuracy = float(
                (prediction.probs.argmax(axis=1) == labels).mean())
            for member, probs in member_probs.items():
                self._member_hits.setdefault(
                    member, deque(maxlen=self.config.window)).append(
                        float((probs.argmax(axis=1) == labels).mean()))

        values = {
            "disagreement": disagreement,
            "deviation": float(np.mean(list(deviation.values())))
            if deviation else None,
            "ece": ece,
            "accuracy": accuracy,
        }
        alarms = {}
        newly_alarmed = False
        for name, detector in self.detectors.items():
            value = values[name]
            if value is not None:
                was = detector.alarmed
                alarms[name] = detector.update(value)
                newly_alarmed |= alarms[name] and not was
            else:
                alarms[name] = detector.alarmed

        stats = BatchStats(index=index, timestamp=float(timestamp),
                           disagreement=disagreement,
                           member_deviation=deviation,
                           ece=ece, accuracy=accuracy, alarms=alarms)
        self.history.append(stats)
        if newly_alarmed and self.first_alarm is None:
            self.first_alarm = stats
        return stats

    # ------------------------------------------------------------------
    def alarm_summary(self) -> Dict[str, bool]:
        """Statistic name -> currently alarming (health-surface form)."""
        return {name: detector.alarmed
                for name, detector in self.detectors.items()}

    @property
    def alarmed(self) -> bool:
        return any(self.alarm_summary().values())

    def member_scores(self) -> Dict[int, float]:
        """Rolling mean deviation-from-aggregate per member.

        The repair loop's health ranking: *higher is sicker*.  A member
        whose outputs drifted away from the consensus scores high; when
        delayed labels are flowing, the score is blended with the
        member's rolling error rate (``1 − accuracy``), so a member that
        is both deviant and wrong outranks one that is merely deviant
        (the deviant member can be the only *correct* one — the labels
        disambiguate).
        """
        scores = {}
        for member, window in self._deviation.items():
            score = float(np.mean(window))
            hits = self._member_hits.get(member)
            if hits:
                score += 1.0 - float(np.mean(hits))
            scores[member] = score
        return scores

    def rolling(self, name: str) -> Optional[float]:
        """Rolling-window mean of one statistic (None with no data)."""
        values = [getattr(stats, name) for stats in self.history
                  if getattr(stats, name) is not None]
        return float(np.mean(values)) if values else None

    def reset(self) -> None:
        """Restart calibration (after a repair changed the ensemble)."""
        for detector in self.detectors.values():
            detector.reset()
        self.history.clear()
        self._deviation.clear()
        self._member_hits.clear()
        self.first_alarm = None
