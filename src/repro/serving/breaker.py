"""Per-member circuit breakers.

A member that keeps failing (raising, emitting NaNs, tripping shape
checks) should stop being *called*, not just stop being *counted*: every
doomed forward pass burns a full model evaluation of latency.  Each
serving member therefore owns a :class:`CircuitBreaker` with the classic
three-state machine:

``CLOSED``  — healthy; every request reaches the member.  Each fault
increments a consecutive-fault counter (any success resets it); reaching
``fault_threshold`` trips the breaker.

``OPEN``    — quarantined; the member is skipped and its α mass excluded
from the aggregate (the weighted average renormalises over the live
members, so the vote stays a proper distribution).  After ``cooldown``
seconds the next request is admitted as a probe.

``HALF_OPEN`` — exactly one probe in flight.  A successful probe closes
the breaker and re-admits the member (its α rejoins the aggregate); a
failed probe re-opens it for another full cooldown.

Time comes from an injectable ``clock`` (``time.monotonic`` by default)
so tests and the fault harness drive the state machine deterministically
with a manual clock instead of sleeping.

Thread safety: the concurrent serving executor calls ``allow`` /
``record_*`` from pool threads while the repair loop may ``trip`` /
``reinstate`` administratively, so every state transition is a
read-modify-write guarded by one reentrant lock.  In particular the
OPEN → HALF_OPEN probe admission is atomic: of N threads racing
``allow()`` after the cooldown, exactly one wins the probe slot and the
rest stay gated — the "exactly one probe in flight" invariant holds
under concurrency, not just in the sequential loop.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.concurrency import tracked_rlock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-fault breaker with a cooldown-then-probe reopen path."""

    def __init__(self, fault_threshold: int = 3, cooldown: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if fault_threshold < 1:
            raise ValueError(
                f"fault_threshold must be >= 1, got {fault_threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.fault_threshold = int(fault_threshold)
        self.cooldown = float(cooldown)
        self.clock = clock
        # Reentrant: describe() reads the state while a transition path
        # (which already holds the lock) may build a description.
        self._lock = tracked_rlock("breaker")
        self.state = CLOSED
        self.state_since = self.clock()
        self.consecutive_faults = 0
        self.total_faults = 0
        self.total_calls = 0
        self.opened_at: Optional[float] = None
        self.last_fault_reason: Optional[str] = None

    def _set_state(self, state: str) -> None:
        if state != self.state:
            self.state = state
            self.state_since = self.clock()

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the member serve this request?  Advances OPEN → HALF_OPEN."""
        with self._lock:
            if self.state == CLOSED:
                return True
            if self.state == OPEN:
                if self.clock() - self.opened_at >= self.cooldown:
                    # Atomic under the lock: the first caller past the
                    # cooldown takes the HALF_OPEN probe slot; concurrent
                    # callers land in the branch below and are gated.
                    self._set_state(HALF_OPEN)
                    return True
                return False
            # HALF_OPEN: a probe was already admitted and has not
            # reported back — keep the gate shut until it does.
            return False

    def record_success(self) -> None:
        with self._lock:
            self.total_calls += 1
            self.consecutive_faults = 0
            if self.state in (HALF_OPEN, OPEN):
                self.opened_at = None
            self._set_state(CLOSED)

    def record_fault(self, reason: str) -> None:
        with self._lock:
            self.total_calls += 1
            self.total_faults += 1
            self.consecutive_faults += 1
            self.last_fault_reason = reason
            if self.state == HALF_OPEN or \
                    self.consecutive_faults >= self.fault_threshold:
                self._set_state(OPEN)
                self.opened_at = self.clock()

    # -- administrative transitions (the repair loop) ------------------
    def trip(self, reason: str) -> None:
        """Force the breaker OPEN regardless of the fault counter.

        The repair loop quarantines a drift-degraded member this way: the
        member is not *faulting* (its forward passes succeed), it is
        *wrong*, which the consecutive-fault path cannot see.  The member
        stays excluded until ``cooldown`` elapses or :meth:`reinstate`
        restores it.
        """
        with self._lock:
            self.last_fault_reason = reason
            self.consecutive_faults = max(self.consecutive_faults,
                                          self.fault_threshold)
            self._set_state(OPEN)
            self.opened_at = self.clock()

    def reinstate(self) -> None:
        """Force the breaker CLOSED (rollback of an administrative trip)."""
        with self._lock:
            self.consecutive_faults = 0
            self.opened_at = None
            self._set_state(CLOSED)

    # ------------------------------------------------------------------
    @property
    def quarantined(self) -> bool:
        """True while the member is excluded (cooldown not yet expired)."""
        with self._lock:
            return self.state == OPEN and \
                self.clock() - self.opened_at < self.cooldown

    def state_age(self) -> float:
        """Seconds spent in the current state (health reporting)."""
        with self._lock:
            return self.clock() - self.state_since

    def describe(self) -> str:
        with self._lock:
            if self.state == CLOSED:
                return "closed"
            reason = self.last_fault_reason or "faults"
            return (f"{self.state} after {self.consecutive_faults} "
                    f"consecutive fault(s); last: {reason}")
