"""The member-execution layer: ensemble members on a thread pool.

The sequential reference loop in
:meth:`~repro.serving.service.InferenceService.predict` evaluates the T
members one after another, so serving cost scales T× with zero overlap.
:class:`MemberExecutor` runs the same per-member protocol — breaker
admission at start, :meth:`ServingMember.predict`, fault conversion —
as one task per member on a shared :class:`ThreadPoolExecutor`.  The
heavy kernels underneath (BLAS GEMMs, the conv im2col + GEMM pipeline)
release the GIL, so members genuinely overlap on multicore hosts; on a
single core the pool degenerates gracefully to interleaved execution.

Execution semantics mirror the serial loop:

* breaker admission happens when the member's task *starts* (not at
  submit), so a member quarantined mid-batch by a concurrent fault is
  still skipped — and the HALF_OPEN single-probe invariant holds because
  :meth:`CircuitBreaker.allow` is atomic;
* results are collected **in roster order**, so the α aggregation in
  :meth:`InferenceService.finish` accumulates in exactly the sequential
  order — bit-identical answers regardless of completion order;
* with a ``deadline``, members whose task has not started when the
  budget expires are cancelled and skipped (the serial rule), and a
  member still *running* at the deadline is abandoned: its result is
  discarded, the thread finishes in the background, and its breaker is
  still charged by the member itself.

``workers=0`` selects inline execution (no pool, no extra threads) —
the same code path run sequentially, which keeps manual-clock tests
deterministic.

Thread-safety contract: stateless apart from the pool; every call gets
its roster snapshot from the caller, so hot swaps can never tear a
running batch.  The optional ``cell`` argument wraps each member task in
:func:`repro.ops.batching.batch_cell`, making stacked micro-batches
bit-identical to solo execution (the context is thread-local, hence set
inside the task, not around the pool).
"""

from __future__ import annotations

import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.concurrency import check_boundary
from repro.ops.batching import batch_cell
from repro.serving.errors import MemberFault
from repro.serving.members import ServingMember
from repro.serving.service import SKIP_DEADLINE, SKIP_FAULT, SKIP_QUARANTINED

__all__ = ["MemberExecutor"]

#: (member, probs) successes in roster order; (index, kind, reason) skips.
MemberOutputs = List[Tuple[ServingMember, np.ndarray]]
MemberSkips = List[Tuple[int, str, str]]


def _run_member(member: ServingMember, x: np.ndarray, batch_size: int,
                cell: Optional[int]) -> Tuple[str, object]:
    """One member task: breaker admission, prediction, fault conversion.

    The final ``BaseException`` arm is the thread-death firewall:
    :meth:`ServingMember.predict` already converts every *model* failure
    into a :class:`MemberFault`, so anything else escaping here is the
    task itself dying (chaos-injected
    :class:`~repro.serving.faults.InjectedThreadDeath`, a crashed C
    extension, an interpreter-level error).  One member's dead task must
    cost the request that member's vote, never the whole batch — so it
    becomes an ordinary fault skip, charged to the member's breaker like
    any other.
    """
    if not member.breaker.allow():
        return (SKIP_QUARANTINED, member.breaker.describe())
    try:
        if cell is not None:
            with batch_cell(cell):
                return ("ok", member.predict(x, batch_size=batch_size))
        return ("ok", member.predict(x, batch_size=batch_size))
    except MemberFault as fault:
        return (SKIP_FAULT, fault.reason)
    except BaseException as death:  # noqa: BLE001 — see docstring
        reason = f"member task died: {type(death).__name__}: {death}"
        member.breaker.record_fault(reason)
        return (SKIP_FAULT, reason)


class MemberExecutor:
    """Run a roster of members concurrently (or inline with ``workers=0``).

    One executor is shared across all requests of a pipeline; tasks are
    per-(request, member) and carry no state between calls.
    """

    def __init__(self, workers: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.clock = clock
        self._pool: Optional[ThreadPoolExecutor] = None
        if workers is None or workers > 0:
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-member")

    @property
    def parallel(self) -> bool:
        return self._pool is not None

    # ------------------------------------------------------------------
    def run(self, members: Sequence[ServingMember], x: np.ndarray,
            batch_size: int, deadline: Optional[float] = None,
            started: Optional[float] = None,
            cell: Optional[int] = None,
            ) -> Tuple[MemberOutputs, MemberSkips, bool]:
        """Evaluate ``members`` on ``x``; returns (outputs, skipped, hit).

        ``outputs`` preserves roster order.  ``deadline`` is a wall-clock
        budget measured on the executor's clock from ``started``
        (defaulting to now); deadline enforcement needs a real clock —
        manual-clock determinism belongs to the serial path.
        """
        if started is None:
            started = self.clock()
        # Entering the member fan-out while holding any registered lock
        # would serialize the ensemble on that lock (and can deadlock
        # once member tasks take breaker locks of their own).
        check_boundary("MemberExecutor.run")
        if self._pool is None:
            return self._run_inline(members, x, batch_size, deadline,
                                    started, cell)
        futures = [self._pool.submit(_run_member, member, x, batch_size,
                                     cell)
                   for member in members]
        outputs: MemberOutputs = []
        skipped: MemberSkips = []
        deadline_hit = False
        for member, future in zip(members, futures):
            remaining = None
            if deadline is not None:
                remaining = deadline - (self.clock() - started)
            try:
                if remaining is not None and remaining <= 0:
                    # Budget spent: cancel if not started; else the task
                    # is running — give it no extra time.
                    if future.cancel():
                        raise CancelledError
                    kind, value = future.result(timeout=0)
                else:
                    kind, value = future.result(timeout=remaining)
            except CancelledError:
                deadline_hit = True
                skipped.append((member.index, SKIP_DEADLINE,
                                f"not started within the {deadline:g}s "
                                "deadline"))
                continue
            except FutureTimeout:
                # Started but unfinished at the deadline: abandon it.
                # The thread completes in the background (charging the
                # breaker as usual); the result is discarded.
                deadline_hit = True
                skipped.append((member.index, SKIP_DEADLINE,
                                f"did not finish within the {deadline:g}s "
                                "deadline"))
                continue
            if kind == "ok":
                outputs.append((member, value))
            else:
                skipped.append((member.index, kind, value))
        return outputs, skipped, deadline_hit

    def _run_inline(self, members: Sequence[ServingMember], x: np.ndarray,
                    batch_size: int, deadline: Optional[float],
                    started: float, cell: Optional[int],
                    ) -> Tuple[MemberOutputs, MemberSkips, bool]:
        """``workers=0``: the serial loop, deterministic under any clock."""
        outputs: MemberOutputs = []
        skipped: MemberSkips = []
        deadline_hit = False
        for member in members:
            if deadline is not None and \
                    self.clock() - started >= deadline:
                deadline_hit = True
                skipped.append((member.index, SKIP_DEADLINE,
                                f"not started within the {deadline:g}s "
                                "deadline"))
                continue
            kind, value = _run_member(member, x, batch_size, cell)
            if kind == "ok":
                outputs.append((member, value))
            else:
                skipped.append((member.index, kind, value))
        return outputs, skipped, deadline_hit

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "MemberExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
