"""The scheduling layer: a bounded queue and an adaptive micro-batcher.

Ensemble inference is dominated by per-dispatch overhead at serving
batch sizes: a request of a few rows pays the full Python/op-dispatch
cost per member, so T members × many small requests is mostly overhead.
Coalescing K concurrent requests into one stacked forward amortises that
cost K× — the classic dynamic-batching lever of model servers.

:class:`MicroBatcher` implements it with two knobs:

* ``max_batch_rows`` — a formed batch never exceeds this many stacked
  rows (bounds memory and worst-case latency);
* ``max_wait_ms`` — how long the oldest queued request may wait for
  company before the batch is formed anyway (bounds added latency under
  low traffic; ``0`` batches only what is already queued).

Requests are admitted to a **bounded** FIFO queue (depth
``queue_depth``); an admission beyond the bound raises
:class:`QueueFull` — backpressure surfaces at the front door instead of
growing an unbounded backlog.  A batch is the *maximal FIFO prefix of
equal row counts*: stacking only same-sized requests means every block
boundary of the stacked array is a request boundary, which is what lets
the batch-invariant GEMM blocking (:mod:`repro.ops.batching`) make
batched answers bit-identical to solo ones.  Mixed-size traffic still
batches — each size run drains as its own batch — it just never mixes
sizes inside one stack.

Two pump modes:

* :meth:`pump_once` — synchronous: form and process at most one batch on
  the calling thread.  Deterministic under any clock; what tests and the
  load harness's open-loop replay drive.
* :meth:`start` — a background daemon thread that waits on a condition
  variable, honours ``max_wait_ms`` with real timed waits, and processes
  batches as they form.  Requires a real (monotonic) clock.

The batcher knows nothing about ensembles: it hands ``process(stacked,
requests)`` the concatenated payload and the pending entries, and the
transport layer does validation, execution and per-request slicing.
``process`` must not raise; the transport routes per-request failures
through the tickets it owns.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

import numpy as np

__all__ = ["MicroBatcher", "PendingRequest", "QueueFull"]


class QueueFull(RuntimeError):
    """Admission refused: the bounded request queue is at capacity."""


@dataclass
class PendingRequest:
    """One queued request: validated payload plus an opaque ticket."""

    x: np.ndarray                 # validated, shape (rows, ...)
    ticket: Any                   # transport-owned completion handle
    enqueued: float               # scheduler-clock admission time
    rows: int = field(init=False)

    def __post_init__(self) -> None:
        self.rows = int(len(self.x))


class MicroBatcher:
    """Coalesce queued requests into same-row-count stacked batches."""

    def __init__(self, process: Callable[[np.ndarray, List[PendingRequest]],
                                         None],
                 max_batch_rows: int = 128, max_wait_ms: float = 2.0,
                 queue_depth: int = 256,
                 clock: Callable[[], float] = time.monotonic):
        if max_batch_rows < 1:
            raise ValueError(
                f"max_batch_rows must be >= 1, got {max_batch_rows}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.process = process
        self.max_batch_rows = int(max_batch_rows)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.queue_depth = int(queue_depth)
        self.clock = clock
        self._queue: List[PendingRequest] = []
        self._cond = threading.Condition()
        self._pump: Optional[threading.Thread] = None
        self._running = False
        self.batches_formed = 0
        self.requests_batched = 0

    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray, ticket: Any) -> PendingRequest:
        """Admit one request; raises :class:`QueueFull` at capacity."""
        pending = PendingRequest(x=x, ticket=ticket, enqueued=self.clock())
        with self._cond:
            if len(self._queue) >= self.queue_depth:
                raise QueueFull(
                    f"request queue at capacity ({self.queue_depth})")
            self._queue.append(pending)
            self._cond.notify()
        return pending

    def depth(self) -> int:
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    def _form_batch(self) -> List[PendingRequest]:
        """Pop the maximal same-row-count FIFO prefix (caller holds lock)."""
        if not self._queue:
            return []
        rows = self._queue[0].rows
        take = 0
        total = 0
        for pending in self._queue:
            if pending.rows != rows:
                break
            if take and total + pending.rows > self.max_batch_rows:
                break
            total += pending.rows
            take += 1
        batch = self._queue[:take]
        del self._queue[:take]
        return batch

    def _dispatch(self, batch: List[PendingRequest]) -> None:
        if not batch:
            return
        self.batches_formed += 1
        self.requests_batched += len(batch)
        stacked = batch[0].x if len(batch) == 1 else \
            np.concatenate([pending.x for pending in batch], axis=0)
        self.process(stacked, batch)

    def pump_once(self) -> int:
        """Form and process one batch now; returns requests drained.

        Synchronous and clock-agnostic: ``max_wait_ms`` does not apply —
        whatever is queued right now is eligible.  The deterministic
        drive mode for tests and replay harnesses.
        """
        with self._cond:
            batch = self._form_batch()
        self._dispatch(batch)
        return len(batch)

    # ------------------------------------------------------------------
    def start(self) -> "MicroBatcher":
        """Launch the background pump (idempotent); real clock required."""
        with self._cond:
            if self._running:
                return self
            self._running = True
            self._pump = threading.Thread(target=self._pump_loop,
                                          name="repro-batcher", daemon=True)
            self._pump.start()
        return self

    def stop(self) -> None:
        """Stop the pump (if any) and drain what is already queued."""
        with self._cond:
            self._running = False
            self._cond.notify_all()
        if self._pump is not None:
            self._pump.join()
            self._pump = None
        while self.pump_once():
            pass

    def _pump_loop(self) -> None:
        while True:
            with self._cond:
                while self._running and not self._queue:
                    self._cond.wait()
                if not self._running:
                    return
                # Batching window: wait for company until the oldest
                # request ages past max_wait or the prefix fills up.
                while self._running:
                    age = self.clock() - self._queue[0].enqueued
                    prefix_rows = self._prefix_rows()
                    if age >= self.max_wait or \
                            prefix_rows >= self.max_batch_rows:
                        break
                    self._cond.wait(timeout=max(self.max_wait - age, 1e-4))
                    if not self._queue:
                        break
                batch = self._form_batch()
            self._dispatch(batch)

    def _prefix_rows(self) -> int:
        """Stacked rows the current same-size prefix would contribute."""
        if not self._queue:
            return 0
        rows = self._queue[0].rows
        total = 0
        for pending in self._queue:
            if pending.rows != rows:
                break
            total += pending.rows
        return total

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
