"""The scheduling layer: a bounded queue, a micro-batcher, admission control.

Ensemble inference is dominated by per-dispatch overhead at serving
batch sizes: a request of a few rows pays the full Python/op-dispatch
cost per member, so T members × many small requests is mostly overhead.
Coalescing K concurrent requests into one stacked forward amortises that
cost K× — the classic dynamic-batching lever of model servers.

:class:`MicroBatcher` implements it with two knobs:

* ``max_batch_rows`` — a formed batch never exceeds this many stacked
  rows (bounds memory and worst-case latency);
* ``max_wait_ms`` — how long the oldest queued request may wait for
  company before the batch is formed anyway (bounds added latency under
  low traffic; ``0`` batches only what is already queued).

Requests are admitted to a **bounded** FIFO queue (depth
``queue_depth``); an admission beyond the bound raises
:class:`~repro.serving.errors.QueueFull` — backpressure surfaces at the
front door instead of growing an unbounded backlog.  A batch is the
*maximal FIFO prefix of equal row counts*: stacking only same-sized
requests means every block boundary of the stacked array is a request
boundary, which is what lets the batch-invariant GEMM blocking
(:mod:`repro.ops.batching`) make batched answers bit-identical to solo
ones.  Mixed-size traffic still batches — each size run drains as its
own batch — it just never mixes sizes inside one stack.

**Admission control.**  A bounded queue alone fails the saturation test:
by the time :class:`QueueFull` fires, every queued request already
carries the whole backlog's worth of latency, and the queue re-fills the
instant it drains one slot — the classic full-queue standing-latency
pathology.  :class:`AdmissionController` sheds *earlier*, CoDel style,
on the queue's *sojourn time* (how long the head of the queue has been
waiting) instead of its length: when the sojourn stays above
``target_delay_ms`` for a full ``interval_ms``, the controller enters a
shedding episode and new arrivals are refused with
:class:`~repro.serving.errors.Overloaded` — carrying a computed
``retry_after`` — while the backlog still exceeds the target; the first
batch formed with its head back under the target closes the episode.
Requests already queued are never dropped: shedding happens only at the
front door, so every admitted ticket still completes or fails, which is
what makes the chaos harness's conservation invariant
(admitted = completed + shed + failed) checkable.

Two pump modes:

* :meth:`pump_once` — synchronous: form and process at most one batch on
  the calling thread.  Deterministic under any clock; what tests and the
  load harness's open-loop replay drive.
* :meth:`start` — a background daemon thread that waits on a condition
  variable, honours ``max_wait_ms`` with real timed waits, and processes
  batches as they form.  Requires a real (monotonic) clock.

**Shutdown.**  :meth:`stop` closes the front door *first* (subsequent
:meth:`submit` raises :class:`~repro.serving.errors.ServiceUnavailable`
immediately), then stops the pump and drains what is already queued — so
a submit racing a concurrent stop either completes normally (it got in
before the door closed; the drain loop serves it) or raises; a ticket is
never left pending forever.

The batcher knows nothing about ensembles: it hands ``process(stacked,
requests)`` the concatenated payload and the pending entries, and the
transport layer does validation, execution and per-request slicing.
``process`` must not raise; the transport routes per-request failures
through the tickets it owns.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

import numpy as np

from repro.concurrency import check_boundary, tracked_condition
from repro.serving.errors import Overloaded, QueueFull, ServiceUnavailable

__all__ = ["AdmissionController", "MicroBatcher", "PendingRequest",
           "QueueFull"]


@dataclass
class PendingRequest:
    """One queued request: validated payload plus an opaque ticket."""

    x: np.ndarray                 # validated, shape (rows, ...)
    ticket: Any                   # transport-owned completion handle
    enqueued: float               # scheduler-clock admission time
    rows: int = field(init=False)

    def __post_init__(self) -> None:
        self.rows = int(len(self.x))


class AdmissionController:
    """CoDel-style load shedding on queue sojourn time.

    The controller watches one signal: the **sojourn** of the head of
    the queue — how long the oldest waiting request has been queued —
    observed each time a batch is formed (:meth:`observe`) and estimated
    live at each admission attempt (:meth:`admit`).  State machine:

    * **clear** — sojourns at or under ``target_delay``.  Everything is
      admitted.  The first sojourn above the target starts the
      ``interval`` grace timer (a transient burst that drains within one
      interval never sheds).
    * **shedding** — the sojourn stayed above target for a full
      interval: the backlog is *standing*, not a burst.  While the live
      sojourn estimate still exceeds the target, new arrivals are
      refused with ``retry_after = max(excess delay, interval)`` — the
      time the queue plausibly needs to drain back under target.  An
      arrival that finds the estimate back under target is admitted, and
      the next batch formed with its head under target closes the
      episode.

    Deterministic by construction (no randomness, injectable clock), so
    the chaos replays shed identically run to run.  Thread-safety: the
    batcher calls both methods under its own queue lock.
    """

    def __init__(self, target_delay_ms: float = 20.0,
                 interval_ms: float = 100.0):
        if target_delay_ms <= 0:
            raise ValueError(
                f"target_delay_ms must be positive, got {target_delay_ms}")
        if interval_ms <= 0:
            raise ValueError(
                f"interval_ms must be positive, got {interval_ms}")
        self.target = float(target_delay_ms) / 1000.0
        self.interval = float(interval_ms) / 1000.0
        self._first_above: Optional[float] = None
        self.shedding = False
        self.shed_total = 0
        self.episodes = 0

    def observe(self, sojourn: float, now: float) -> None:
        """Record the head-of-queue sojourn at batch formation time."""
        if sojourn <= self.target:
            self._first_above = None
            self.shedding = False
            return
        if self._first_above is None:
            self._first_above = now
        elif not self.shedding and now - self._first_above >= self.interval:
            self.shedding = True
            self.episodes += 1

    def admit(self, sojourn_estimate: float, now: float) -> Optional[float]:
        """``None`` to admit, else the ``retry_after`` hint for a shed."""
        if not self.shedding or sojourn_estimate <= self.target:
            return None
        self.shed_total += 1
        return max(sojourn_estimate - self.target, self.interval)


class MicroBatcher:
    """Coalesce queued requests into same-row-count stacked batches."""

    def __init__(self, process: Callable[[np.ndarray, List[PendingRequest]],
                                         None],
                 max_batch_rows: int = 128, max_wait_ms: float = 2.0,
                 queue_depth: int = 256,
                 admission: Optional[AdmissionController] = None,
                 clock: Callable[[], float] = time.monotonic):
        if max_batch_rows < 1:
            raise ValueError(
                f"max_batch_rows must be >= 1, got {max_batch_rows}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.process = process
        self.max_batch_rows = int(max_batch_rows)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.queue_depth = int(queue_depth)
        self.admission = admission
        self.clock = clock
        self._queue: List[PendingRequest] = []
        self._cond = tracked_condition("scheduler.cond")
        self._pump: Optional[threading.Thread] = None
        self._running = False
        self._closed = False
        self.batches_formed = 0
        self.requests_batched = 0
        self.requests_admitted = 0
        self.requests_shed = 0

    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray, ticket: Any) -> PendingRequest:
        """Admit one request.

        Raises :class:`~repro.serving.errors.Overloaded` when the
        admission controller is shedding,
        :class:`~repro.serving.errors.QueueFull` at queue capacity, and
        :class:`~repro.serving.errors.ServiceUnavailable` after
        :meth:`stop` closed the front door.
        """
        now = self.clock()
        pending = PendingRequest(x=x, ticket=ticket, enqueued=now)
        with self._cond:
            if self._closed:
                raise ServiceUnavailable(
                    "micro-batcher is stopped; no new requests admitted")
            sojourn = now - self._queue[0].enqueued if self._queue else 0.0
            if self.admission is not None:
                retry_after = self.admission.admit(sojourn, now)
                if retry_after is not None:
                    self.requests_shed += 1
                    raise Overloaded(
                        f"queue delay {sojourn * 1000:.1f}ms above the "
                        f"{self.admission.target * 1000:g}ms target",
                        retry_after=retry_after)
            if len(self._queue) >= self.queue_depth:
                self.requests_shed += 1
                raise QueueFull(
                    f"request queue at capacity ({self.queue_depth})",
                    retry_after=max(sojourn, self.max_wait) or None)
            self._queue.append(pending)
            self.requests_admitted += 1
            self._cond.notify()
        return pending

    def depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def head_enqueued(self) -> Optional[float]:
        """Admission time of the oldest queued request (``None``: empty).

        Virtual-time replay harnesses use this to know when the current
        batching window expires without reaching into the queue.
        """
        with self._cond:
            return self._queue[0].enqueued if self._queue else None

    # ------------------------------------------------------------------
    def _form_batch(self) -> List[PendingRequest]:
        """Pop the maximal same-row-count FIFO prefix (caller holds lock)."""
        if not self._queue:
            return []
        if self.admission is not None:
            now = self.clock()
            self.admission.observe(now - self._queue[0].enqueued, now)
        rows = self._queue[0].rows
        take = 0
        total = 0
        for pending in self._queue:
            if pending.rows != rows:
                break
            if take and total + pending.rows > self.max_batch_rows:
                break
            total += pending.rows
            take += 1
        batch = self._queue[:take]
        del self._queue[:take]
        # Counters bump here, not in _dispatch: this is the one site
        # that still holds the queue lock, so two pumps never interleave
        # a read-modify-write.
        if batch:
            self.batches_formed += 1
            self.requests_batched += len(batch)
        return batch

    def _dispatch(self, batch: List[PendingRequest]) -> None:
        if not batch:
            return
        # The queue lock must be released before process() runs — the
        # downstream transport/executor path takes its own locks, and a
        # slow batch must not stall submits.
        check_boundary("MicroBatcher.process")
        stacked = batch[0].x if len(batch) == 1 else \
            np.concatenate([pending.x for pending in batch], axis=0)
        self.process(stacked, batch)

    def pump_once(self) -> int:
        """Form and process one batch now; returns requests drained.

        Synchronous and clock-agnostic: ``max_wait_ms`` does not apply —
        whatever is queued right now is eligible.  The deterministic
        drive mode for tests and replay harnesses.
        """
        with self._cond:
            batch = self._form_batch()
        self._dispatch(batch)
        return len(batch)

    # ------------------------------------------------------------------
    def start(self) -> "MicroBatcher":
        """Launch the background pump (idempotent); real clock required."""
        with self._cond:
            if self._running:
                return self
            if self._closed:
                raise ServiceUnavailable(
                    "micro-batcher is stopped; cannot restart the pump")
            self._running = True
            self._pump = threading.Thread(target=self._pump_loop,
                                          name="repro-batcher", daemon=True)
            self._pump.start()
        return self

    def stop(self) -> None:
        """Close the front door, stop the pump, drain what got in.

        Ordering is the shutdown contract: ``_closed`` is published
        under the queue lock *before* the drain, so any submit that wins
        the race is in the queue when the drain loop runs (its ticket
        completes), and any submit that loses raises immediately —
        never a forever-pending ticket.
        """
        with self._cond:
            self._closed = True
            self._running = False
            pump, self._pump = self._pump, None
            self._cond.notify_all()
        if pump is not None:
            pump.join()
        while self.pump_once():
            pass

    def _pump_loop(self) -> None:
        while True:
            with self._cond:
                while self._running and not self._queue:
                    self._cond.wait()
                if not self._running:
                    return
                # Batching window: wait for company until the oldest
                # request ages past max_wait or the prefix fills up.
                while self._running:
                    age = self.clock() - self._queue[0].enqueued
                    prefix_rows = self._prefix_rows()
                    if age >= self.max_wait or \
                            prefix_rows >= self.max_batch_rows:
                        break
                    self._cond.wait(timeout=max(self.max_wait - age, 1e-4))
                    if not self._queue:
                        break
                batch = self._form_batch()
            self._dispatch(batch)

    def _prefix_rows(self) -> int:
        """Stacked rows the current same-size prefix would contribute."""
        if not self._queue:
            return 0
        rows = self._queue[0].rows
        total = 0
        for pending in self._queue:
            if pending.rows != rows:
                break
            total += pending.rows
        return total

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
