"""Deterministic fault injection for the serving layer.

The training side has :mod:`tests.faults.injection` (kill/corrupt a
member mid-fit); this is its serving twin, and it lives in the package —
not under ``tests/`` — because the ``repro serve-eval --inject`` CLI uses
the same harness to rehearse failures against a real saved ensemble.

Three injection families:

* **Archive faults** (:class:`CorruptArchive`) damage a saved ``.npz``
  *on disk* in precise, realistic ways — garbage bytes in one member's
  arrays (a torn write), a member's entries missing, a mandatory key
  gone, the whole file truncated — to exercise the resilient loader.
* **Runtime faults** wrap a live member's model:
  :class:`FlakyMember` fails chosen calls (raise or NaN output) to drive
  the circuit breaker; :class:`SlowMember` burns wall-clock per call
  (a manual clock in tests, a real sleep in the CLI) to drive deadlines.
* **Spec parsing** (:func:`parse_fault_spec` /
  :func:`apply_archive_faults` / :func:`apply_runtime_faults`) turns the
  CLI's compact ``kind:member[:key=value...]`` strings into applied
  faults.
* **Chaos faults** target the *concurrent* layers (PR 9):
  :class:`DyingMember` kills its executor task outright with
  :class:`InjectedThreadDeath` (a ``BaseException``, so it bypasses the
  member wrapper's fault conversion and exercises the executor's
  thread-death firewall); :class:`BurstySlowMember` is slow only inside
  scheduled clock windows (a member that degrades under load, not
  always); and :class:`ChaosSchedule` draws a whole seeded storm /
  stall / slow-burst / thread-death timeline for the replay harness
  (:mod:`repro.experiments.serve_chaos`) to execute on a
  :class:`ManualClock`.

:class:`ManualClock` is the deterministic time source the whole layer is
tested with — the service, breakers, and ``SlowMember`` all accept it.
"""

from __future__ import annotations

import pathlib
import time
import zipfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

_ARCHIVE_KINDS = ("corrupt", "drop", "drop-key", "truncate")
_RUNTIME_KINDS = ("flaky", "slow")


class ManualClock:
    """A monotonic clock that only moves when told to."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


class _WrappedModel:
    """Delegate everything (``eval``/``train``/``training``/...) inward."""

    def __init__(self, model):
        self.model = model

    def __getattr__(self, name):
        return getattr(self.model, name)


class FlakyMember(_WrappedModel):
    """A member that fails on a deterministic schedule of calls.

    Calls are counted from 0; the member fails on calls ``start``,
    ``start + every``, ``start + 2·every``, ...  ``mode="raise"``
    simulates a crash, ``mode="nan"`` a numerically-wedged member whose
    logits went non-finite (the output-screening path).
    """

    MODES = ("raise", "nan")

    def __init__(self, model, every: int = 1, start: int = 0,
                 mode: str = "raise"):
        super().__init__(model)
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}; choose {self.MODES}")
        self.every = int(every)
        self.start = int(start)
        self.mode = mode
        self.calls = 0
        self.faults_fired = 0

    def _should_fail(self) -> bool:
        offset = self.calls - self.start
        return offset >= 0 and offset % self.every == 0

    def __call__(self, x):
        failing = self._should_fail()
        self.calls += 1
        if failing and self.mode == "raise":
            self.faults_fired += 1
            raise RuntimeError(
                f"injected member crash (call {self.calls - 1})")
        out = self.model(x)
        if failing:
            self.faults_fired += 1
            out.data = np.full_like(np.asarray(out.data), np.nan)
        return out


class SlowMember(_WrappedModel):
    """A member that burns ``seconds`` of wall-clock per forward call.

    With a :class:`ManualClock` the delay is simulated (tests stay
    instant); without one it really sleeps (the CLI path).
    """

    def __init__(self, model, seconds: float,
                 clock: Optional[ManualClock] = None):
        super().__init__(model)
        self.seconds = float(seconds)
        self.clock = clock
        self.calls = 0

    def __call__(self, x):
        self.calls += 1
        if self.clock is not None:
            self.clock.advance(self.seconds)
        else:
            time.sleep(self.seconds)
        return self.model(x)


class InjectedThreadDeath(BaseException):
    """A member task dying abruptly — deliberately *not* an ``Exception``.

    :meth:`ServingMember.predict` converts every ``Exception`` into a
    :class:`MemberFault`; deriving from ``BaseException`` lets this one
    sail past that net, exactly like a crashed C extension or an
    interpreter-level error would, so the executor's own thread-death
    firewall is what gets exercised.
    """


class DyingMember(_WrappedModel):
    """A member whose task dies (not merely faults) on schedule.

    Two addressing modes, combinable: ``on_calls`` are 0-based
    forward-call indices (unit tests), ``windows`` are ``(start, end)``
    clock intervals (the chaos replay's death events — every call
    landing inside one dies).  A scheduled call raises
    :class:`InjectedThreadDeath` instead of answering.
    """

    def __init__(self, model, on_calls=(), windows=(), clock=None):
        super().__init__(model)
        self.on_calls = frozenset(int(c) for c in on_calls)
        self.windows = [(float(start), float(end))
                        for start, end in windows]
        self.clock = clock
        self.calls = 0
        self.deaths = 0

    def _in_window(self) -> bool:
        if not self.windows:
            return False
        now = self.clock() if self.clock is not None else time.monotonic()
        return any(start <= now < end for start, end in self.windows)

    def __call__(self, x):
        call = self.calls
        self.calls += 1
        if call in self.on_calls or self._in_window():
            self.deaths += 1
            raise InjectedThreadDeath(
                f"injected executor-task death (call {call})")
        return self.model(x)


class BurstySlowMember(_WrappedModel):
    """A member that is slow only inside scheduled clock windows.

    ``windows`` are ``(start, end)`` pairs on the injected clock's
    timeline; a forward call landing inside one burns ``seconds`` (clock
    advance with a :class:`ManualClock`, a real sleep otherwise).
    Outside every window the member behaves normally — the
    intermittently-degrading member that a constant
    :class:`SlowMember` cannot model.
    """

    def __init__(self, model, seconds: float,
                 windows: List[Tuple[float, float]],
                 clock: Optional[ManualClock] = None):
        super().__init__(model)
        self.seconds = float(seconds)
        self.windows = [(float(start), float(end))
                        for start, end in windows]
        self.clock = clock
        self.slow_calls = 0

    def _in_window(self, now: float) -> bool:
        return any(start <= now < end for start, end in self.windows)

    def __call__(self, x):
        now = self.clock() if self.clock is not None else time.monotonic()
        if self._in_window(now):
            self.slow_calls += 1
            if isinstance(self.clock, ManualClock):
                self.clock.advance(self.seconds)
            else:
                time.sleep(self.seconds)
        return self.model(x)


# ----------------------------------------------------------------------
# Seeded chaos schedules for the concurrent pipeline.
# ----------------------------------------------------------------------

@dataclass
class ChaosEvent:
    """One scheduled disturbance on the replay timeline."""

    kind: str                      # "storm" | "stall" | "slow" | "death"
    start: float                   # clock seconds
    duration: float
    #: storm: arrival-rate multiplier; slow: seconds per affected call.
    magnitude: float = 0.0
    #: slow / death: the targeted member's original index.
    member: Optional[int] = None

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class ChaosSchedule:
    """A seeded timeline of chaos events over a replay horizon.

    :meth:`draw` samples event starts, durations and targets from one
    ``Generator``, so a (seed, horizon, members) triple names the entire
    schedule — the chaos suite replays 100 of these and every one is
    reproducible bit-for-bit.

    Event kinds and what the replay harness does with them:

    * ``storm``  — multiply the Poisson arrival rate by ``magnitude``
      for the window (queue saturation: drives admission control);
    * ``stall``  — the pump does not run inside the window (requests
      accumulate; the sojourn signal spikes when pumping resumes);
    * ``slow``   — wrap ``member`` in :class:`BurstySlowMember` for the
      window (service-time inflation: drives brownout);
    * ``death``  — ``member``'s task dies on the first calls inside the
      window (exercises the executor's thread-death firewall and the
      breaker).
    """

    events: List[ChaosEvent] = field(default_factory=list)

    KINDS = ("storm", "stall", "slow", "death")

    @classmethod
    def draw(cls, rng: np.random.Generator, horizon: float,
             members: int, events: int = 4,
             kinds: Optional[List[str]] = None) -> "ChaosSchedule":
        """Sample ``events`` disturbances over ``[0, horizon)`` seconds."""
        kinds = list(kinds or cls.KINDS)
        drawn = []
        for _ in range(int(events)):
            kind = kinds[int(rng.integers(len(kinds)))]
            start = float(rng.uniform(0.0, horizon * 0.8))
            duration = float(rng.uniform(horizon * 0.05, horizon * 0.25))
            event = ChaosEvent(kind=kind, start=start, duration=duration)
            if kind == "storm":
                event.magnitude = float(rng.uniform(2.0, 6.0))
            elif kind == "slow":
                event.magnitude = float(rng.uniform(0.002, 0.02))
                event.member = int(rng.integers(members))
            elif kind == "death":
                event.member = int(rng.integers(members))
            drawn.append(event)
        drawn.sort(key=lambda event: event.start)
        return cls(events=drawn)

    def of_kind(self, kind: str) -> List[ChaosEvent]:
        return [event for event in self.events if event.kind == kind]

    def stalled(self, now: float) -> bool:
        """Is the pump stalled at clock time ``now``?"""
        return any(event.start <= now < event.end
                   for event in self.of_kind("stall"))

    def rate_multiplier(self, now: float) -> float:
        """Arrival-rate multiplier at clock time ``now`` (storms stack)."""
        factor = 1.0
        for event in self.of_kind("storm"):
            if event.start <= now < event.end:
                factor *= event.magnitude
        return factor


class CorruptArchive:
    """Damage a saved ``.npz`` archive in place, one failure mode at a time.

    ``.npz`` is a zip of ``<key>.npy`` entries; every mutator rewrites
    the zip so the damage is exactly scoped — the rest of the archive
    stays byte-for-byte readable, which is what lets ``strict=False``
    loading salvage the surviving members.
    """

    def __init__(self, path):
        self.path = pathlib.Path(path)

    # -- low-level rewrite ---------------------------------------------
    def _rewrite(self, mutate: Callable[[str, bytes], Optional[bytes]]) -> None:
        """Apply ``mutate(name, data) -> new data | None (drop)`` per entry."""
        with zipfile.ZipFile(self.path) as archive:
            entries = [(info.filename, archive.read(info.filename))
                       for info in archive.infolist()]
        with zipfile.ZipFile(self.path, "w") as archive:
            for name, data in entries:
                mutated = mutate(name, data)
                if mutated is not None:
                    archive.writestr(name, mutated)

    # -- failure modes --------------------------------------------------
    def corrupt_member(self, index: int) -> "CorruptArchive":
        """Torn write: member ``index``'s arrays become undecodable garbage."""
        prefix = f"model{index}/"
        self._rewrite(lambda name, data:
                      b"\x00not an npy\x00" if name.startswith(prefix)
                      else data)
        return self

    def drop_member(self, index: int) -> "CorruptArchive":
        """Member ``index``'s entries are missing entirely."""
        prefix = f"model{index}/"
        self._rewrite(lambda name, data:
                      None if name.startswith(prefix) else data)
        return self

    def drop_key(self, key: str) -> "CorruptArchive":
        """Remove a top-level entry, e.g. ``__alphas__``."""
        self._rewrite(lambda name, data:
                      None if name == f"{key}.npy" else data)
        return self

    def poison_member(self, index: int) -> "CorruptArchive":
        """Member ``index``'s first array decodes fine but holds NaNs."""
        prefix = f"model{index}/"
        state = {"hit": False}

        def mutate(name, data):
            if name.startswith(prefix) and not state["hit"]:
                state["hit"] = True
                header = np.lib.format  # round-trip through the npy codec
                import io

                buffer = io.BytesIO(data)
                array = header.read_array(buffer)
                array = np.full_like(np.asarray(array, dtype=np.float64),
                                     np.nan)
                out = io.BytesIO()
                header.write_array(out, array)
                return out.getvalue()
            return data

        self._rewrite(mutate)
        return self

    def truncate(self, keep_fraction: float = 0.5) -> "CorruptArchive":
        """Chop the file, simulating a non-atomic write that lost the tail."""
        data = self.path.read_bytes()
        self.path.write_bytes(data[:max(1, int(len(data) * keep_fraction))])
        return self


# ----------------------------------------------------------------------
# CLI fault-spec parsing: "corrupt:0,flaky:1:every=2,slow:2:seconds=0.2"
# ----------------------------------------------------------------------

def parse_fault_spec(spec: str) -> List[Dict]:
    """Parse a comma-separated injection spec into fault dicts.

    Each item is ``kind:member[:key=value...]``; kinds are
    ``corrupt``/``drop``/``drop-key``/``truncate`` (applied to the archive
    before loading) and ``flaky``/``slow`` (wrapped around live members).
    ``drop-key`` and ``truncate`` take a key/fraction instead of a member
    index.
    """
    faults = []
    for item in filter(None, (part.strip() for part in spec.split(","))):
        fields = item.split(":")
        kind = fields[0]
        if kind not in _ARCHIVE_KINDS + _RUNTIME_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} in {item!r}; choose one of "
                f"{_ARCHIVE_KINDS + _RUNTIME_KINDS}")
        fault: Dict = {"kind": kind, "params": {}}
        rest = fields[1:]
        if kind == "drop-key":
            if len(rest) != 1:
                raise ValueError(f"drop-key takes exactly a key: {item!r}")
            fault["key"] = rest[0]
            rest = []
        elif kind == "truncate":
            fault["params"]["keep_fraction"] = 0.5
        else:
            if not rest or "=" in rest[0]:
                raise ValueError(f"{kind} needs a member index: {item!r}")
            fault["member"] = int(rest[0])
            rest = rest[1:]
        for pair in rest:
            if "=" not in pair:
                raise ValueError(f"expected key=value, got {pair!r} in {item!r}")
            key, value = pair.split("=", 1)
            if key == "mode":  # string-valued ("nan" would parse as float)
                fault["params"][key] = value
                continue
            for cast in (int, float, str):
                try:
                    fault["params"][key] = cast(value)
                    break
                except ValueError:
                    continue
        faults.append(fault)
    return faults


def apply_archive_faults(path, faults: List[Dict]) -> List[str]:
    """Apply the archive-level faults from a parsed spec; returns a log."""
    applied = []
    archive = CorruptArchive(path)
    for fault in faults:
        kind = fault["kind"]
        if kind not in _ARCHIVE_KINDS:
            continue
        if kind == "corrupt":
            archive.corrupt_member(fault["member"])
            applied.append(f"corrupted member {fault['member']} arrays")
        elif kind == "drop":
            archive.drop_member(fault["member"])
            applied.append(f"dropped member {fault['member']} entries")
        elif kind == "drop-key":
            archive.drop_key(fault["key"])
            applied.append(f"dropped archive key {fault['key']}")
        elif kind == "truncate":
            archive.truncate(**fault["params"])
            applied.append("truncated archive")
    return applied


def apply_runtime_faults(service, faults: List[Dict],
                         clock: Optional[ManualClock] = None) -> List[str]:
    """Wrap live members of ``service`` per the parsed spec; returns a log.

    Members are addressed by *original archive index*; a fault aimed at a
    member that was dropped at load is reported, not an error (rehearsing
    compound failures should not require the member to have survived).
    """
    applied = []
    by_index = {member.index: member for member in service.members}
    for fault in faults:
        kind = fault["kind"]
        if kind not in _RUNTIME_KINDS:
            continue
        member = by_index.get(fault["member"])
        if member is None:
            applied.append(f"{kind}: member {fault['member']} not live "
                           "(dropped at load); skipped")
            continue
        if kind == "flaky":
            params = {key: int(value)
                      for key, value in fault["params"].items()
                      if key in ("every", "start")}
            mode = fault["params"].get("mode", "raise")
            member.model = FlakyMember(member.model, mode=mode
                                       if isinstance(mode, str) else "raise",
                                       **params)
            applied.append(f"member {fault['member']} made flaky "
                           f"({params or 'every call'})")
        elif kind == "slow":
            seconds = float(fault["params"].get("seconds", 0.05))
            member.model = SlowMember(member.model, seconds, clock=clock)
            applied.append(
                f"member {fault['member']} slowed by {seconds:g}s/call")
    return applied
