"""One served base model: prediction + output screening + breaker state.

A :class:`ServingMember` pairs a loaded model with its α weight, its
original archive index (reporting must name members by the index they had
at training time, not by their position after degraded loading), and a
:class:`~repro.serving.breaker.CircuitBreaker`.  Its :meth:`predict`
converts *every* way a member can misbehave on a valid request — raising,
emitting NaN/Inf probabilities, returning the wrong number of rows — into
a single :class:`~repro.serving.errors.MemberFault`, so the service's
aggregate loop has exactly one failure type to absorb and charge to the
breaker.
"""

from __future__ import annotations

import numpy as np

from repro.nn import predict_probs
from repro.serving.breaker import CircuitBreaker
from repro.serving.errors import MemberFault


class ServingMember:
    """A live ensemble member behind its circuit breaker."""

    def __init__(self, index: int, model, alpha: float,
                 breaker: CircuitBreaker):
        self.index = int(index)
        self.model = model
        self.alpha = float(alpha)
        self.breaker = breaker

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Softmax rows for ``x``, or :class:`MemberFault`.

        Success and failure are both recorded on the breaker here, so the
        caller never has to remember to charge it.
        """
        try:
            probs = predict_probs(self.model, x, batch_size=batch_size)
        except Exception as error:  # noqa: BLE001 — the whole point: any
            # member crash becomes a fault, never a dead request.
            reason = error.reason if isinstance(error, MemberFault) else \
                f"{type(error).__name__}: {error}"
            fault = MemberFault(reason, member_index=self.index)
            self.breaker.record_fault(reason)
            raise fault from error
        if probs.shape[0] != len(x):
            fault = MemberFault(
                f"returned {probs.shape[0]} rows for a batch of {len(x)}",
                member_index=self.index)
            self.breaker.record_fault(fault.reason)
            raise fault
        if not np.isfinite(probs).all():
            bad = int((~np.isfinite(probs)).sum())
            fault = MemberFault(
                f"produced {bad} non-finite probability value(s)",
                member_index=self.index)
            self.breaker.record_fault(fault.reason)
            raise fault
        self.breaker.record_success()
        return probs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ServingMember(index={self.index}, alpha={self.alpha}, "
                f"breaker={self.breaker.state})")
