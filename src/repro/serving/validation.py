"""Request screening: reject malformed inputs before any model runs.

An :class:`InputSpec` captures what one request batch must look like —
per-sample feature shape, dtype family, optional value range, optional
batch cap — and :meth:`InputSpec.validate` turns every violation into a
structured :class:`~repro.serving.errors.InvalidRequest`.  Screening is
cheap relative to a forward pass (one ``isfinite`` reduction over the
batch), and it is the only thing standing between a poisoned payload and
T members confidently softmaxing NaNs.

The spec is usually inferred from known-good data
(:meth:`InputSpec.from_example` on the training or test split), matching
the library's "topology is code, weights are data" contract: the service
learns its input contract from the same split the ensemble was fit on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.serving.errors import InvalidRequest


@dataclass(frozen=True)
class InputSpec:
    """The shape/dtype/range contract one request batch must satisfy.

    Attributes
    ----------
    feature_shape:
        Per-sample shape, without the batch axis — ``(3, 32, 32)`` for
        CIFAR-style images, ``(L,)`` for token-id sequences.
    kind:
        ``"f"`` for float features (validated finite, optionally ranged)
        or ``"i"`` for integer token ids (validated non-negative and,
        when ``max_value`` is set, within the vocabulary).
    min_value / max_value:
        Optional inclusive bounds on the values themselves.
    max_batch:
        Optional cap on rows per request (backpressure knob).
    """

    feature_shape: Tuple[int, ...]
    kind: str = "f"
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    max_batch: Optional[int] = None

    def __post_init__(self):
        if self.kind not in ("f", "i"):
            raise ValueError(f"kind must be 'f' or 'i', got {self.kind!r}")

    @classmethod
    def from_example(cls, x, max_batch: Optional[int] = None,
                     with_range: bool = False) -> "InputSpec":
        """Infer the contract from a known-good batch (e.g. the test split)."""
        x = np.asarray(x)
        if x.ndim < 2:
            raise ValueError("example batch must have a batch axis")
        kind = "i" if np.issubdtype(x.dtype, np.integer) else "f"
        min_value = max_value = None
        if kind == "i":
            # Token ids: anything outside the observed id range would index
            # past the embedding table.
            min_value, max_value = 0.0, float(x.max())
        elif with_range:
            min_value, max_value = float(x.min()), float(x.max())
        return cls(feature_shape=tuple(x.shape[1:]), kind=kind,
                   min_value=min_value, max_value=max_value,
                   max_batch=max_batch)

    # ------------------------------------------------------------------
    def validate(self, x) -> np.ndarray:
        """Return ``x`` as a validated array, or raise :class:`InvalidRequest`."""
        if x is None:
            raise InvalidRequest("request payload is empty", field="payload")
        try:
            x = np.asarray(x)
        except Exception as error:
            raise InvalidRequest(
                f"payload is not array-like: {error}", field="payload")
        if x.dtype == object:
            raise InvalidRequest("payload has object dtype (ragged or "
                                 "non-numeric rows)", field="dtype")
        expected_ndim = len(self.feature_shape) + 1
        if x.ndim != expected_ndim:
            raise InvalidRequest(
                f"expected a batch of rank-{expected_ndim} "
                f"(batch, {', '.join(map(str, self.feature_shape))}), "
                f"got shape {x.shape}", field="shape")
        if tuple(x.shape[1:]) != self.feature_shape:
            raise InvalidRequest(
                f"per-sample shape {tuple(x.shape[1:])} does not match the "
                f"served model's input {self.feature_shape}", field="shape")
        if x.shape[0] == 0:
            raise InvalidRequest("batch is empty", field="shape")
        if self.max_batch is not None and x.shape[0] > self.max_batch:
            raise InvalidRequest(
                f"batch of {x.shape[0]} exceeds the service cap of "
                f"{self.max_batch} rows", field="shape")
        if self.kind == "i":
            if not np.issubdtype(x.dtype, np.integer):
                raise InvalidRequest(
                    f"expected integer token ids, got dtype {x.dtype}",
                    field="dtype")
        else:
            if not (np.issubdtype(x.dtype, np.floating)
                    or np.issubdtype(x.dtype, np.integer)):
                raise InvalidRequest(
                    f"expected float features, got dtype {x.dtype}",
                    field="dtype")
            bad = ~np.isfinite(x)
            if bad.any():
                raise InvalidRequest(
                    f"payload contains {int(bad.sum())} non-finite "
                    "(NaN/Inf) value(s)", field="values")
        if self.min_value is not None and x.min() < self.min_value:
            raise InvalidRequest(
                f"value {x.min()} below the allowed minimum "
                f"{self.min_value}", field="values")
        if self.max_value is not None and x.max() > self.max_value:
            raise InvalidRequest(
                f"value {x.max()} above the allowed maximum "
                f"{self.max_value}", field="values")
        return x
