"""Brownout serving: map queue pressure to a healthiest-K member roster.

Admission control (:mod:`repro.serving.scheduler`) trades *requests* for
latency; brownout trades *accuracy* for latency — and for an α-weighted
ensemble that trade is principled, not a hack.  Eq. 16 renormalises the
vote over whatever members are present, so serving K < T members is just
the degraded-roster path PR 4 already proved bit-identical to
:meth:`Ensemble.predict_probs` over the same subset; and the ensemble
error decomposition ("Diversity and Generalization in Neural Network
Ensembles", PAPERS.md) says dropping the members that deviate most from
the consensus costs the least — exactly the members the PR 7 health
scores rank highest ("higher is sicker").

:class:`PressureController` is the policy half:

* :meth:`observe` feeds it the same head-of-queue sojourn signal the
  admission controller sees.  Pressure = sojourn / target.
* ``sustain`` consecutive observations at or above ``enter_pressure``
  raise the degrade level by one; ``sustain`` consecutive observations
  at or below ``exit_pressure`` lower it by one.  The gap between the
  two thresholds plus the sustain count is the hysteresis: a roster
  change costs cache warmth and answer continuity, so the controller
  never flaps on a single noisy batch.
* :meth:`roster_for` maps the level to the served roster: level 0 keeps
  all T members, the maximum level keeps ``min_members``, intermediate
  levels interpolate linearly.  Members are ranked by health score
  (lower = healthier; ties broken by roster position, so the selection
  is deterministic) and the chosen K are returned **in roster order** —
  the order :meth:`InferenceService.finish` needs for its aggregation
  to stay bit-identical to a fresh sub-ensemble.

Members whose circuit breaker currently quarantines them never count
toward K: quarantine already removed them from the vote, and "serve the
K healthiest" must mean K *servable* members — a member reinstated
mid-brownout re-enters the ranking but the roster still caps at K.

Deterministic by construction (no randomness, no wall clock of its
own); thread-safety: the transport calls ``observe``/``roster_for``
from the pump thread and ``snapshot`` from health probes, so the
level state is guarded by a lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.concurrency import tracked_lock
from repro.serving.members import ServingMember

__all__ = ["PressureConfig", "PressureController"]


@dataclass
class PressureConfig:
    """Knobs for :class:`PressureController`.

    ``target_delay_ms`` should match the admission controller's target:
    brownout engages on the way *to* the shedding threshold, shrinking
    service time so fewer requests need shedding at all.
    """

    target_delay_ms: float = 20.0
    levels: int = 2                # maximum degrade level
    min_members: int = 1           # roster floor at the maximum level
    enter_pressure: float = 1.0    # sojourn/target ratio to degrade
    exit_pressure: float = 0.4     # sojourn/target ratio to restore
    sustain: int = 3               # consecutive observations to move

    def __post_init__(self) -> None:
        if self.target_delay_ms <= 0:
            raise ValueError(f"target_delay_ms must be positive, "
                             f"got {self.target_delay_ms}")
        if self.levels < 1:
            raise ValueError(f"levels must be >= 1, got {self.levels}")
        if self.min_members < 1:
            raise ValueError(
                f"min_members must be >= 1, got {self.min_members}")
        if not 0 <= self.exit_pressure < self.enter_pressure:
            raise ValueError(
                f"need 0 <= exit_pressure < enter_pressure, got "
                f"{self.exit_pressure} / {self.enter_pressure}")
        if self.sustain < 1:
            raise ValueError(f"sustain must be >= 1, got {self.sustain}")


class PressureController:
    """Hysteretic queue-pressure → degrade-level state machine."""

    def __init__(self, config: PressureConfig = None):
        self.config = config or PressureConfig()
        self._lock = tracked_lock("pressure")
        self._level = 0
        self._above = 0            # consecutive observations >= enter
        self._below = 0            # consecutive observations <= exit
        self.last_pressure = 0.0
        self.level_changes = 0

    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    # ------------------------------------------------------------------
    def observe(self, sojourn: float) -> int:
        """Feed one head-of-queue sojourn; returns the (new) level."""
        config = self.config
        pressure = sojourn / (config.target_delay_ms / 1000.0)
        with self._lock:
            self.last_pressure = pressure
            if pressure >= config.enter_pressure:
                self._above += 1
                self._below = 0
                if self._above >= config.sustain and \
                        self._level < config.levels:
                    self._level += 1
                    self._above = 0
                    self.level_changes += 1
            elif pressure <= config.exit_pressure:
                self._below += 1
                self._above = 0
                if self._below >= config.sustain and self._level > 0:
                    self._level -= 1
                    self._below = 0
                    self.level_changes += 1
            else:
                # Hysteresis band: neither counter advances.
                self._above = 0
                self._below = 0
            return self._level

    # ------------------------------------------------------------------
    def keep_count(self, total: int) -> int:
        """How many members level ``self.level`` keeps out of ``total``."""
        with self._lock:
            level = self._level
        if level <= 0 or total <= self.config.min_members:
            return total
        floor = min(self.config.min_members, total)
        span = total - floor
        return total - round(level * span / self.config.levels)

    def roster_for(self, members: Sequence[ServingMember],
                   scores: Dict[int, float],
                   ) -> Tuple[List[ServingMember], int]:
        """The healthiest-K servable sub-roster for the current level.

        ``scores`` maps original member index → health score (higher is
        sicker; missing means healthy, score 0).  Quarantined members
        are excluded before K is applied.  Returns the selection in
        roster order plus the level it was computed at.
        """
        with self._lock:
            level = self._level
        if level <= 0:
            return list(members), 0
        servable = [(position, member)
                    for position, member in enumerate(members)
                    if not member.breaker.quarantined]
        keep = min(self.keep_count(len(members)), len(servable))
        ranked = sorted(servable,
                        key=lambda entry: (scores.get(entry[1].index, 0.0),
                                           entry[0]))
        chosen = sorted(ranked[:keep], key=lambda entry: entry[0])
        return [member for _, member in chosen], level

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Level + pressure for the health surface (one lock read)."""
        with self._lock:
            return {"level": self._level,
                    "last_pressure": self.last_pressure,
                    "level_changes": self.level_changes}
