"""The serving error taxonomy.

Every failure on the request path maps to exactly one branch of the
taxonomy, chosen by *whose fault it is and what the caller should do
next* — the distinction a fronting HTTP layer (or a retrying client)
needs to pick a status code and a retry policy:

* :class:`InvalidRequest` — the caller sent something malformed (bad
  shape, wrong dtype, NaN/Inf payload).  Retrying the same request can
  never succeed; the request is rejected before any model runs.
* :class:`MemberFault` — one base model failed on a valid request (raised,
  produced non-finite probabilities, returned the wrong shape).  The
  service absorbs these: the member is excluded from the α-weighted
  aggregate and its circuit breaker is charged.
* :class:`ServiceUnavailable` — the service as a whole cannot answer
  (below quorum at startup, every member quarantined, nothing finished
  before the deadline, shutting down).  Retrying *later* may succeed.

  * :class:`Overloaded` — the retryable sub-branch for *load* shedding:
    the request was refused because serving it now would blow the queue
    delay target, not because anything is broken.  It carries a
    computed ``retry_after`` hint (seconds) so clients back off by at
    least the time the queue needs to drain.
  * :class:`QueueFull` — the hard edge of the same condition: the
    bounded request queue is at capacity.  A full queue *is* an
    overload signal, so it subclasses :class:`Overloaded` (and hence
    :class:`ServiceUnavailable`) and carries the same ``retry_after``
    contract.

Status-code mapping for a fronting transport::

    InvalidRequest      -> 400 Bad Request        never retry
    Overloaded          -> 429 Too Many Requests  retry after `retry_after`
      QueueFull         -> 429 Too Many Requests  retry after `retry_after`
    ServiceUnavailable  -> 503 Service Unavailable retry with backoff
    MemberFault         -> (internal; absorbed into the aggregate, never
                            surfaces as a response on its own)

:class:`InvalidRequest` is defined in :mod:`repro.core.errors` — it is
raised as low as :meth:`repro.core.ensemble.Ensemble.predict_probs`, and
core importing from serving would invert the layering (RL001) — and
re-exported here so serving callers keep one import site for the whole
taxonomy.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import InvalidRequest


class ServingError(Exception):
    """Base of the serving taxonomy; carries a machine-readable code."""

    code = "serving-error"


class MemberFault(ServingError):
    """One base model failed on a valid request.

    Raised internally by the member wrapper and absorbed by the service's
    predict loop; it only escapes to the caller wrapped in the per-member
    skip report, never as an exception.
    """

    code = "member-fault"

    def __init__(self, reason: str, member_index: Optional[int] = None):
        super().__init__(reason)
        self.reason = reason
        self.member_index = member_index


class ServiceUnavailable(ServingError):
    """The service as a whole cannot answer right now."""

    code = "service-unavailable"

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class Overloaded(ServiceUnavailable):
    """Admission refused: serving this request now would blow the queue
    delay target (CoDel-style shedding at the front door).

    ``retry_after`` is the shedder's estimate, in seconds, of how long
    the caller should wait before the queue has drained back under its
    target — the value a fronting HTTP layer puts in a ``Retry-After``
    header and :class:`~repro.serving.client.RetryingClient` honours as
    a backoff floor.
    """

    code = "overloaded"

    def __init__(self, reason: str, retry_after: Optional[float] = None):
        super().__init__(reason)
        self.retry_after = retry_after


class QueueFull(Overloaded):
    """Admission refused: the bounded request queue is at capacity.

    The hard edge of overload — kept as its own class so operators can
    tell delay-target shedding (the controller working as designed) from
    queue exhaustion (the controller overwhelmed or disabled), but a
    subclass of :class:`Overloaded` so every retrying caller handles
    both identically.
    """

    code = "queue-full"
