"""The serving error taxonomy.

Every failure on the request path maps to exactly one of three classes,
chosen by *whose fault it is* — the distinction a fronting HTTP layer (or
a retrying client) needs to pick a status code and a retry policy:

* :class:`InvalidRequest` — the caller sent something malformed (bad
  shape, wrong dtype, NaN/Inf payload).  Retrying the same request can
  never succeed; the request is rejected before any model runs.
* :class:`MemberFault` — one base model failed on a valid request (raised,
  produced non-finite probabilities, returned the wrong shape).  The
  service absorbs these: the member is excluded from the α-weighted
  aggregate and its circuit breaker is charged.
* :class:`ServiceUnavailable` — the service as a whole cannot answer
  (below quorum at startup, every member quarantined, nothing finished
  before the deadline).  Retrying *later* may succeed.

:class:`InvalidRequest` is defined in :mod:`repro.core.errors` — it is
raised as low as :meth:`repro.core.ensemble.Ensemble.predict_probs`, and
core importing from serving would invert the layering (RL001) — and
re-exported here so serving callers keep one import site for the whole
taxonomy.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import InvalidRequest


class ServingError(Exception):
    """Base of the serving taxonomy; carries a machine-readable code."""

    code = "serving-error"


class MemberFault(ServingError):
    """One base model failed on a valid request.

    Raised internally by the member wrapper and absorbed by the service's
    predict loop; it only escapes to the caller wrapped in the per-member
    skip report, never as an exception.
    """

    code = "member-fault"

    def __init__(self, reason: str, member_index: Optional[int] = None):
        super().__init__(reason)
        self.reason = reason
        self.member_index = member_index


class ServiceUnavailable(ServingError):
    """The service as a whole cannot answer right now."""

    code = "service-unavailable"

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason
