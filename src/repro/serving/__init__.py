"""Fault-tolerant inference serving for saved ensembles.

The α-weighted vote (paper Eq. 16) renormalises over whatever members are
present, so an ensemble degrades member-by-member instead of all at once.
This package turns that mathematical property into a production serving
contract around :class:`InferenceService`:

* resilient archive loading with a minimum-member quorum
  (:meth:`InferenceService.from_archive`, backed by
  ``load_ensemble(strict=False)``);
* request validation (:class:`InputSpec` → :class:`InvalidRequest`),
  per-request deadlines with partial α-weighted answers, and per-member
  circuit breakers (:class:`CircuitBreaker`);
* health/readiness snapshots (:class:`ServiceHealth`) and a deterministic
  fault harness (:mod:`repro.serving.faults`) shared by the test suite
  and the ``repro serve-eval --inject`` CLI.

The concurrent request path lives in sub-layers stacked *above* this
package (imported directly, never from here, to keep the layer graph
acyclic): :mod:`repro.serving.scheduler` (bounded queue + micro-batcher
+ CoDel-style admission control), :mod:`repro.serving.executor`
(members on a thread pool), :mod:`repro.serving.transport`
(:class:`ServingPipeline`, the async ``submit/poll/result`` front
door), :mod:`repro.serving.pressure` (brownout: healthiest-K serving
under queue pressure) and :mod:`repro.serving.client`
(:class:`RetryingClient`: backoff + hedging).  The drift machinery
(:mod:`repro.serving.monitor` / :mod:`repro.serving.repair`) sits beside
them the same way.  The overload branch of the error taxonomy
(:class:`Overloaded`, :class:`QueueFull` — both retryable
:class:`ServiceUnavailable` subclasses carrying ``retry_after``) *is*
re-exported here: errors are plain-serving vocabulary.

See ``docs/architecture.md`` ("Serving and graceful degradation", "The
concurrent pipeline") for the error taxonomy, the quorum/breaker state
machine and the pipeline's thread-safety contract.
"""

from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving.errors import (
    InvalidRequest,
    MemberFault,
    Overloaded,
    QueueFull,
    ServiceUnavailable,
    ServingError,
)
from repro.serving.members import ServingMember
from repro.serving.service import (
    InferenceService,
    ServedPrediction,
    ServiceConfig,
    ServiceHealth,
)
from repro.serving.validation import InputSpec

__all__ = [
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "InferenceService",
    "InputSpec",
    "InvalidRequest",
    "MemberFault",
    "Overloaded",
    "QueueFull",
    "ServedPrediction",
    "ServiceConfig",
    "ServiceHealth",
    "ServiceUnavailable",
    "ServingError",
    "ServingMember",
]
