"""Persisting fitted ensembles to disk.

An ensemble is stored as a single ``.npz`` archive holding every member's
``state_dict`` (parameters *and* BatchNorm running statistics), the α
weights, and a tag identifying the architecture.  Loading rebuilds the
members from a :class:`~repro.models.factory.ModelFactory`, so the
architecture hyperparameters live in code, not in the archive — the same
contract as the rest of the library (weights are data, topology is code).

Writes are atomic *and durable*: the archive is written to a sibling
temporary file, fsynced, moved into place with :func:`os.replace`, and
the directory entry is fsynced (best-effort), so neither an interrupted
save nor a crash right after it can leave a truncated or missing archive.
The same payload layout (and the same atomic-write path) backs the
per-round training checkpoints in :mod:`repro.core.checkpointing` — there
is exactly one member-weights format in the library.

Loading has two modes.  **Strict** (the default) raises on the first
problem: archive-level damage (unreadable zip, missing α vector,
member-count/α-length mismatch) surfaces as :class:`CheckpointError`
naming the offending key, architecture/version mismatches keep raising
``ValueError``.  **Non-strict** (``strict=False``) restores every member
it can: a member whose arrays are corrupt, missing, mis-shaped, or
non-finite is *dropped* and recorded in the optional :class:`LoadReport`,
and the surviving members keep their α weights (the ensemble average
normalises by ``Σ α``, so dropping a member implicitly renormalises the
vote).  This is the degraded-load path the serving layer
(:mod:`repro.serving`) builds its quorum decision on.

Format history
--------------
* **v1** — members + alphas, no architecture tag.
* **v2** — adds ``__arch_tag__`` (the member class name), validated on
  load.  v1 archives still load, with a warning instead of validation.
"""

from __future__ import annotations

import os
import pathlib
import re
import warnings
import zipfile
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.ensemble import Ensemble
from repro.models.factory import ModelFactory

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

PathLike = Union[str, pathlib.Path]

#: Exceptions a damaged archive entry can raise while being decoded.
_READ_ERRORS = (KeyError, ValueError, OSError, EOFError,
                zipfile.BadZipFile, zlib.error)


class CheckpointError(RuntimeError):
    """A saved archive/checkpoint is missing, incomplete, or corrupt.

    Home of the error since the serving PR (it is raised by the
    serialization layer itself, not just by checkpoint directories);
    :mod:`repro.core.checkpointing` re-exports it, so both import paths
    keep working.
    """


@dataclass
class DroppedMember:
    """One member a non-strict load had to discard, and why."""

    index: int
    alpha: float
    reason: str


@dataclass
class LoadReport:
    """What a (possibly degraded) ensemble load actually restored."""

    requested: int = 0                      # members the archive declares
    loaded_indices: List[int] = field(default_factory=list)
    dropped: List[DroppedMember] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.dropped)

    @property
    def alpha_retained(self) -> float:
        """Fraction of the archive's total α mass that survived the load."""
        lost = sum(drop.alpha for drop in self.dropped)
        kept = self._kept_alpha
        total = kept + lost
        return 1.0 if total <= 0 else kept / total

    # populated by restore_ensemble; survivors' α values in index order.
    _kept_alpha: float = 0.0


def _npz_path(path: PathLike) -> pathlib.Path:
    """The path ``np.savez`` would actually write (it appends ``.npz``)."""
    path = pathlib.Path(path)
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    return path


def _fsync_directory(directory: pathlib.Path) -> None:
    """Best-effort fsync of a directory entry after a rename.

    ``os.replace`` makes the swap atomic, but only a directory fsync makes
    it *durable* — without it a crash can roll the rename back and leave
    no archive at all.  Some filesystems (and non-POSIX platforms) refuse
    to open directories; that costs durability, not atomicity, so errors
    are swallowed.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_savez(path: PathLike, payload: Dict[str, np.ndarray]) -> pathlib.Path:
    """Write an ``.npz`` archive atomically and durably; returns the path.

    The payload goes to a sibling temporary file first, is fsynced, and is
    moved into place with ``os.replace``; the parent directory is then
    fsynced (best-effort), so readers only ever see a complete archive and
    a crash immediately after the save cannot lose the rename.  Writing
    through a file object also sidesteps ``np.savez``'s automatic ``.npz``
    suffixing, which would otherwise break the rename.
    """
    path = _npz_path(path)
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)
    return path


def ensemble_payload(ensemble: Ensemble) -> Dict[str, np.ndarray]:
    """The archive entries describing ``ensemble`` (members, alphas, tag)."""
    if not len(ensemble):
        raise ValueError("refusing to save an empty ensemble")
    payload = {
        "__format_version__": np.array(_FORMAT_VERSION),
        "__num_models__": np.array(len(ensemble)),
        "__alphas__": np.asarray(ensemble.alphas),
        "__arch_tag__": np.array(type(ensemble.models[0]).__name__),
    }
    for index, model in enumerate(ensemble.models):
        for name, value in model.state_dict().items():
            payload[f"model{index}/{name}"] = value
    return payload


def _required_entry(archive, key: str) -> np.ndarray:
    """Read a mandatory archive key, or raise a clean :class:`CheckpointError`."""
    try:
        return archive[key]
    except KeyError:
        raise CheckpointError(
            f"archive is missing required key '{key}'") from None


def _member_state(archive, index: int) -> Dict[str, np.ndarray]:
    """Decode one member's arrays; any damage raises with the key named."""
    prefix = f"model{index}/"
    state = {}
    for key in archive.files:
        if not key.startswith(prefix):
            continue
        try:
            value = archive[key]
        except _READ_ERRORS as error:
            raise CheckpointError(
                f"cannot decode array '{key}': {error}") from error
        if not isinstance(value, np.ndarray):
            # NpzFile hands back raw bytes for an entry whose npy header
            # is gone — the signature of a torn write.
            raise CheckpointError(
                f"cannot decode array '{key}': not a valid npy entry")
        if np.issubdtype(value.dtype, np.floating) and \
                not np.isfinite(value).all():
            raise CheckpointError(f"array '{key}' contains non-finite values")
        state[key[len(prefix):]] = value
    if not state:
        raise CheckpointError(f"no arrays stored under '{prefix}*'")
    return state


def restore_ensemble(archive, factory: ModelFactory, strict: bool = True,
                     report: Optional[LoadReport] = None) -> Ensemble:
    """Rebuild an ensemble from an open ``.npz`` archive.

    Shared by :func:`load_ensemble` and the checkpoint loader; validates
    the format version and the architecture tag before touching weights.

    With ``strict=False``, members whose arrays are corrupt, missing,
    mis-shaped, or non-finite are skipped instead of fatal; the survivors
    keep their α values (Eq. 16 renormalises by ``Σ α``) and every drop is
    recorded in ``report``.  Archive-level damage — an unreadable α
    vector, a member-count/α-length mismatch, or zero restorable members —
    is unrecoverable in either mode and raises :class:`CheckpointError`.
    """
    version = int(_required_entry(archive, "__format_version__"))
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported ensemble format version {version}")
    probe = factory.build(rng=0)
    if "__arch_tag__" in archive.files:
        tag = str(archive["__arch_tag__"].item())
        built = type(probe).__name__
        if tag != built:
            raise ValueError(
                f"architecture mismatch: archive was saved from '{tag}' "
                f"but the factory builds '{built}'")
    elif version == 1:
        warnings.warn(
            "ensemble archive predates architecture tags (format v1); "
            "skipping architecture validation", stacklevel=3)
    else:
        raise ValueError("archive is missing the architecture tag")

    count = int(_required_entry(archive, "__num_models__"))
    alphas = np.asarray(_required_entry(archive, "__alphas__")).reshape(-1)
    if len(alphas) != count:
        raise CheckpointError(
            f"member-count mismatch: '__num_models__' declares {count} "
            f"member(s) but '__alphas__' has {len(alphas)} entr"
            f"{'y' if len(alphas) == 1 else 'ies'}")
    stored = {int(match.group(1))
              for match in (re.match(r"model(\d+)/", key)
                            for key in archive.files) if match}
    extra = sorted(index for index in stored if index >= count)
    if extra and strict:
        raise CheckpointError(
            f"member-count mismatch: '__num_models__' declares {count} "
            f"member(s) but the archive holds extra key(s) under "
            f"'model{extra[0]}/'")

    if report is None:
        report = LoadReport()
    report.requested = count

    ensemble = Ensemble()
    for index in range(count):
        alpha = float(alphas[index])
        try:
            if not np.isfinite(alpha) or alpha <= 0:
                raise CheckpointError(
                    f"alpha[{index}] = {alpha} is not a positive finite weight")
            state = _member_state(archive, index)
            # A fresh model per member: a failed partial load must never
            # leak stale parameters/buffers into the next member's build.
            model = probe if not ensemble.models and index == 0 else \
                factory.build(rng=0)
            try:
                model.load_state_dict(state)
            except KeyError as error:
                raise CheckpointError(
                    f"missing key in state dict: {error.args[0]}") from error
            except ValueError as error:
                if strict:
                    # A parameter-shape mismatch keeps its historical
                    # ValueError contract (same class as the arch-tag
                    # check — the factory builds the wrong topology).
                    raise ValueError(f"member {index}: {error}") from error
                raise CheckpointError(str(error)) from error
        except CheckpointError as error:
            if strict:
                raise CheckpointError(f"member {index}: {error}") from error
            report.dropped.append(DroppedMember(index, alpha, str(error)))
            continue
        model.eval()
        ensemble.add(model, alpha)
        report.loaded_indices.append(index)
        report._kept_alpha += alpha
    if not len(ensemble):
        raise CheckpointError(
            f"no members could be restored (all {count} dropped: "
            f"{report.dropped[0].reason})")
    return ensemble


def save_ensemble(ensemble: Ensemble, path: PathLike) -> None:
    """Serialise ``ensemble`` to ``path`` (a ``.npz`` archive), atomically."""
    atomic_savez(path, ensemble_payload(ensemble))


def load_ensemble(path: PathLike, factory: ModelFactory, strict: bool = True,
                  report: Optional[LoadReport] = None) -> Ensemble:
    """Rebuild an ensemble saved by :func:`save_ensemble`.

    ``factory`` must construct the same architecture the ensemble was
    trained with; an architecture-tag or parameter-shape mismatch raises
    ``ValueError``.  An archive that cannot be opened at all (missing
    file, truncated/torn zip) raises :class:`CheckpointError` naming the
    path.  ``strict=False`` degrades over per-member damage instead of
    raising — see :func:`restore_ensemble`.
    """
    path = _npz_path(path)
    try:
        archive = np.load(path)
    except FileNotFoundError:
        raise CheckpointError(f"no ensemble archive at {path}") from None
    except _READ_ERRORS as error:
        raise CheckpointError(
            f"cannot read ensemble archive {path}: {error}") from error
    with archive:
        return restore_ensemble(archive, factory, strict=strict, report=report)
