"""Persisting fitted ensembles to disk.

An ensemble is stored as a single ``.npz`` archive holding every member's
``state_dict`` (parameters *and* BatchNorm running statistics), the α
weights, and a tag identifying the architecture.  Loading rebuilds the
members from a :class:`~repro.models.factory.ModelFactory`, so the
architecture hyperparameters live in code, not in the archive — the same
contract as the rest of the library (weights are data, topology is code).
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.core.ensemble import Ensemble
from repro.models.factory import ModelFactory

_FORMAT_VERSION = 1


def save_ensemble(ensemble: Ensemble, path: Union[str, pathlib.Path]) -> None:
    """Serialise ``ensemble`` to ``path`` (a ``.npz`` archive)."""
    if not len(ensemble):
        raise ValueError("refusing to save an empty ensemble")
    payload = {
        "__format_version__": np.array(_FORMAT_VERSION),
        "__num_models__": np.array(len(ensemble)),
        "__alphas__": np.asarray(ensemble.alphas),
    }
    for index, model in enumerate(ensemble.models):
        for name, value in model.state_dict().items():
            payload[f"model{index}/{name}"] = value
    np.savez(path, **payload)


def load_ensemble(path: Union[str, pathlib.Path],
                  factory: ModelFactory) -> Ensemble:
    """Rebuild an ensemble saved by :func:`save_ensemble`.

    ``factory`` must construct the same architecture the ensemble was
    trained with; a parameter-shape mismatch raises ``ValueError``.
    """
    with np.load(path) as archive:
        version = int(archive["__format_version__"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported ensemble format version {version}")
        count = int(archive["__num_models__"])
        alphas = archive["__alphas__"]
        ensemble = Ensemble()
        for index in range(count):
            prefix = f"model{index}/"
            state = {key[len(prefix):]: archive[key]
                     for key in archive.files if key.startswith(prefix)}
            model = factory.build(rng=0)
            model.load_state_dict(state)
            model.eval()
            ensemble.add(model, float(alphas[index]))
    return ensemble
