"""Persisting fitted ensembles to disk.

An ensemble is stored as a single ``.npz`` archive holding every member's
``state_dict`` (parameters *and* BatchNorm running statistics), the α
weights, and a tag identifying the architecture.  Loading rebuilds the
members from a :class:`~repro.models.factory.ModelFactory`, so the
architecture hyperparameters live in code, not in the archive — the same
contract as the rest of the library (weights are data, topology is code).

Writes are atomic: the archive is written to a sibling temporary file and
moved into place with :func:`os.replace`, so an interrupted save can never
leave a truncated ``.npz`` behind.  The same payload layout (and the same
atomic-write path) backs the per-round training checkpoints in
:mod:`repro.core.checkpointing` — there is exactly one member-weights
format in the library.

Format history
--------------
* **v1** — members + alphas, no architecture tag.
* **v2** — adds ``__arch_tag__`` (the member class name), validated on
  load.  v1 archives still load, with a warning instead of validation.
"""

from __future__ import annotations

import os
import pathlib
import warnings
from typing import Dict, Union

import numpy as np

from repro.core.ensemble import Ensemble
from repro.models.factory import ModelFactory

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

PathLike = Union[str, pathlib.Path]


def _npz_path(path: PathLike) -> pathlib.Path:
    """The path ``np.savez`` would actually write (it appends ``.npz``)."""
    path = pathlib.Path(path)
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    return path


def atomic_savez(path: PathLike, payload: Dict[str, np.ndarray]) -> pathlib.Path:
    """Write an ``.npz`` archive atomically; returns the final path.

    The payload goes to a sibling temporary file first and is moved into
    place with ``os.replace``, so readers only ever see a complete archive.
    Writing through a file object also sidesteps ``np.savez``'s automatic
    ``.npz`` suffixing, which would otherwise break the rename.
    """
    path = _npz_path(path)
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def ensemble_payload(ensemble: Ensemble) -> Dict[str, np.ndarray]:
    """The archive entries describing ``ensemble`` (members, alphas, tag)."""
    if not len(ensemble):
        raise ValueError("refusing to save an empty ensemble")
    payload = {
        "__format_version__": np.array(_FORMAT_VERSION),
        "__num_models__": np.array(len(ensemble)),
        "__alphas__": np.asarray(ensemble.alphas),
        "__arch_tag__": np.array(type(ensemble.models[0]).__name__),
    }
    for index, model in enumerate(ensemble.models):
        for name, value in model.state_dict().items():
            payload[f"model{index}/{name}"] = value
    return payload


def restore_ensemble(archive, factory: ModelFactory) -> Ensemble:
    """Rebuild an ensemble from an open ``.npz`` archive.

    Shared by :func:`load_ensemble` and the checkpoint loader; validates
    the format version and the architecture tag before touching weights.
    """
    version = int(archive["__format_version__"])
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported ensemble format version {version}")
    probe = factory.build(rng=0)
    if "__arch_tag__" in archive.files:
        tag = str(archive["__arch_tag__"].item())
        built = type(probe).__name__
        if tag != built:
            raise ValueError(
                f"architecture mismatch: archive was saved from '{tag}' "
                f"but the factory builds '{built}'")
    elif version == 1:
        warnings.warn(
            "ensemble archive predates architecture tags (format v1); "
            "skipping architecture validation", stacklevel=3)
    else:
        raise ValueError("archive is missing the architecture tag")
    count = int(archive["__num_models__"])
    alphas = archive["__alphas__"]
    ensemble = Ensemble()
    for index in range(count):
        prefix = f"model{index}/"
        state = {key[len(prefix):]: archive[key]
                 for key in archive.files if key.startswith(prefix)}
        model = probe if index == 0 else factory.build(rng=0)
        model.load_state_dict(state)
        model.eval()
        ensemble.add(model, float(alphas[index]))
    return ensemble


def save_ensemble(ensemble: Ensemble, path: PathLike) -> None:
    """Serialise ``ensemble`` to ``path`` (a ``.npz`` archive), atomically."""
    atomic_savez(path, ensemble_payload(ensemble))


def load_ensemble(path: PathLike, factory: ModelFactory) -> Ensemble:
    """Rebuild an ensemble saved by :func:`save_ensemble`.

    ``factory`` must construct the same architecture the ensemble was
    trained with; an architecture-tag or parameter-shape mismatch raises
    ``ValueError``.
    """
    with np.load(_npz_path(path)) as archive:
        return restore_ensemble(archive, factory)
